#include "evaluate.hpp"

#include "rpslyzer/aspath/engine.hpp"
#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/net/martians.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::verify::internal {

aspath::RegexMatch InterpretedCorpus::match_as_path(const ir::FilterAsPath& filter,
                                                    std::span<const Asn> path,
                                                    Asn peer) const {
  aspath::MatchEnv env{path, peer, &index};
  aspath::RegexMatch result = aspath::match_nfa(filter.regex, env);
  if (result == aspath::RegexMatch::kUnsupported) {
    result = aspath::match_backtrack(filter.regex, env);
  }
  return result;
}

bool InterpretedCorpus::as_path_skipped(const ir::FilterAsPath& filter) const {
  return ir::uses_skipped_constructs(filter.regex);
}

namespace {

using util::overloaded;

void append(std::vector<ReportItem>& dst, const std::vector<ReportItem>& src) {
  for (const auto& item : src) {
    bool dup = false;
    for (const auto& existing : dst) {
      if (existing == item) {
        dup = true;
        break;
      }
    }
    if (!dup) dst.push_back(item);
  }
}

// ---------------------------------------------------------------------------
// Peerings: {match, no-match, unrecorded}
// ---------------------------------------------------------------------------

enum class PeeringEvalClass : std::uint8_t { kMatch, kNoMatch, kUnrecorded };

struct PeeringEval {
  PeeringEvalClass cls = PeeringEvalClass::kNoMatch;
  std::vector<ReportItem> items;
};

template <typename Corpus>
PeeringEval eval_as_expr(const ir::AsExpr& expr, const EvalContextT<Corpus>& ctx) {
  return std::visit(
      overloaded{
          [&](const ir::AsExprAsn& a) -> PeeringEval {
            if (a.asn == ctx.peer) return {PeeringEvalClass::kMatch, {}};
            return {PeeringEvalClass::kNoMatch, {{Reason::kMatchRemoteAsNum, a.asn, {}}}};
          },
          [&](const ir::AsExprSet& s) -> PeeringEval {
            const auto* flat = ctx.corpus.flattened(s.name);
            if (flat == nullptr) {
              return {PeeringEvalClass::kUnrecorded, {{Reason::kUnrecordedAsSet, 0, s.name}}};
            }
            if (flat->contains_any || flat->contains(ctx.peer)) {
              return {PeeringEvalClass::kMatch, {}};
            }
            return {PeeringEvalClass::kNoMatch, {{Reason::kMatchRemoteAsSet, 0, s.name}}};
          },
          [&](const ir::AsExprAny&) -> PeeringEval { return {PeeringEvalClass::kMatch, {}}; },
          [&](const ir::AsExprAnd& n) -> PeeringEval {
            PeeringEval l = eval_as_expr(*n.left, ctx);
            PeeringEval r = eval_as_expr(*n.right, ctx);
            PeeringEval out;
            if (l.cls == PeeringEvalClass::kNoMatch || r.cls == PeeringEvalClass::kNoMatch) {
              out.cls = PeeringEvalClass::kNoMatch;
            } else if (l.cls == PeeringEvalClass::kUnrecorded ||
                       r.cls == PeeringEvalClass::kUnrecorded) {
              out.cls = PeeringEvalClass::kUnrecorded;
            } else {
              out.cls = PeeringEvalClass::kMatch;
            }
            append(out.items, l.items);
            append(out.items, r.items);
            return out;
          },
          [&](const ir::AsExprOr& n) -> PeeringEval {
            PeeringEval l = eval_as_expr(*n.left, ctx);
            if (l.cls == PeeringEvalClass::kMatch) return l;
            PeeringEval r = eval_as_expr(*n.right, ctx);
            if (r.cls == PeeringEvalClass::kMatch) return r;
            PeeringEval out;
            out.cls = (l.cls == PeeringEvalClass::kUnrecorded ||
                       r.cls == PeeringEvalClass::kUnrecorded)
                          ? PeeringEvalClass::kUnrecorded
                          : PeeringEvalClass::kNoMatch;
            append(out.items, l.items);
            append(out.items, r.items);
            return out;
          },
          [&](const ir::AsExprExcept& n) -> PeeringEval {
            PeeringEval l = eval_as_expr(*n.left, ctx);
            PeeringEval r = eval_as_expr(*n.right, ctx);
            // left AND NOT right.
            if (l.cls == PeeringEvalClass::kNoMatch) return l;
            if (r.cls == PeeringEvalClass::kMatch) {
              PeeringEval out{PeeringEvalClass::kNoMatch, {}};
              append(out.items, l.items);
              return out;
            }
            if (l.cls == PeeringEvalClass::kUnrecorded ||
                r.cls == PeeringEvalClass::kUnrecorded) {
              PeeringEval out{PeeringEvalClass::kUnrecorded, {}};
              append(out.items, l.items);
              append(out.items, r.items);
              return out;
            }
            return {PeeringEvalClass::kMatch, {}};
          },
      },
      expr.node);
}

template <typename Corpus>
PeeringEval eval_peering(const ir::Peering& peering, const EvalContextT<Corpus>& ctx,
                         int depth = 0);

template <typename Corpus>
PeeringEval eval_peering_set(std::string_view name, const EvalContextT<Corpus>& ctx,
                             int depth) {
  // Peering-sets may (pathologically) reference peering-sets; bound the
  // recursion like the set-flattening cycle guards elsewhere.
  if (depth > 8) {
    return {PeeringEvalClass::kNoMatch, {{Reason::kMatchRemotePeeringSet, 0, std::string(name)}}};
  }
  const ir::PeeringSet* set = ctx.corpus.peering_set(name);
  if (set == nullptr) {
    return {PeeringEvalClass::kUnrecorded,
            {{Reason::kUnrecordedPeeringSet, 0, std::string(name)}}};
  }
  PeeringEval out{PeeringEvalClass::kNoMatch, {}};
  bool unrecorded = false;
  for (const auto* list : {&set->peerings, &set->mp_peerings}) {
    for (const auto& p : *list) {
      PeeringEval sub = eval_peering(p, ctx, depth + 1);
      if (sub.cls == PeeringEvalClass::kMatch) return sub;
      if (sub.cls == PeeringEvalClass::kUnrecorded) unrecorded = true;
      append(out.items, sub.items);
    }
  }
  if (unrecorded) {
    out.cls = PeeringEvalClass::kUnrecorded;
  } else if (out.items.empty()) {
    out.items.push_back({Reason::kMatchRemotePeeringSet, 0, std::string(name)});
  }
  return out;
}

template <typename Corpus>
PeeringEval eval_peering(const ir::Peering& peering, const EvalContextT<Corpus>& ctx,
                         int depth) {
  return std::visit(
      overloaded{
          [&](const ir::PeeringSpec& spec) { return eval_as_expr(spec.as_expr, ctx); },
          [&](const ir::PeeringSetRef& ref) {
            return eval_peering_set(ref.name, ctx, depth);
          },
      },
      peering.node);
}

// ---------------------------------------------------------------------------
// Filters: {match, no-match, unrecorded, skip}
// ---------------------------------------------------------------------------

enum class FilterEvalClass : std::uint8_t { kMatch, kNoMatch, kUnrecorded, kSkip };

struct FilterEval {
  FilterEvalClass cls = FilterEvalClass::kNoMatch;
  std::vector<ReportItem> items;
};

FilterEval from_lookup(irr::Lookup lookup, ReportItem on_fail, ReportItem on_unknown) {
  switch (lookup) {
    case irr::Lookup::kMatch:
      return {FilterEvalClass::kMatch, {}};
    case irr::Lookup::kNoMatch:
      return {FilterEvalClass::kNoMatch, {std::move(on_fail)}};
    case irr::Lookup::kUnknown:
      return {FilterEvalClass::kUnrecorded, {std::move(on_unknown)}};
  }
  return {FilterEvalClass::kNoMatch, {}};
}

/// `positive` tracks boolean polarity: failed-term report items are only
/// recorded in positive positions, where they are relaxation candidates.
/// `depth` bounds filter-set reference chains (which may cycle in the wild).
template <typename Corpus>
FilterEval eval_filter(const ir::Filter& filter, const EvalContextT<Corpus>& ctx,
                       bool positive, int depth = 0) {
  return std::visit(
      overloaded{
          [&](const ir::FilterAny&) -> FilterEval { return {FilterEvalClass::kMatch, {}}; },
          [&](const ir::FilterPeerAs&) -> FilterEval {
            // PeerAS stands for the remote AS's number (RFC 2622 §5.6):
            // routes whose prefix has a matching route object with that
            // origin. Report failures as MatchFilterAsNum(peer) so the
            // import-customer relaxation sees them.
            return from_lookup(ctx.corpus.origin_matches(ctx.peer, net::RangeOp::none(),
                                                         ctx.prefix),
                               {Reason::kMatchFilterAsNum, ctx.peer, {}},
                               {Reason::kUnrecordedZeroRouteAs, ctx.peer, {}});
          },
          [&](const ir::FilterFltrMartian&) -> FilterEval {
            return {net::is_martian(ctx.prefix) ? FilterEvalClass::kMatch
                                                : FilterEvalClass::kNoMatch,
                    {}};
          },
          [&](const ir::FilterAsNum& f) -> FilterEval {
            FilterEval out = from_lookup(ctx.corpus.origin_matches(f.asn, f.op, ctx.prefix),
                                         {Reason::kMatchFilterAsNum, f.asn, {}},
                                         {Reason::kUnrecordedZeroRouteAs, f.asn, {}});
            if (!positive) out.items.clear();
            return out;
          },
          [&](const ir::FilterAsSet& f) -> FilterEval {
            FilterEval out = from_lookup(
                ctx.corpus.as_set_originates(f.name, f.op, ctx.prefix),
                {Reason::kMatchFilterAsSet, 0, f.name},
                ctx.corpus.is_known(f.name)
                    ? ReportItem{Reason::kUnrecordedZeroRouteAs, 0, f.name}
                    : ReportItem{Reason::kUnrecordedAsSet, 0, f.name});
            if (!positive) out.items.clear();
            return out;
          },
          [&](const ir::FilterRouteSet& f) -> FilterEval {
            return from_lookup(ctx.corpus.route_set_matches(f.name, f.op, ctx.prefix),
                               {Reason::kMatchFilterRouteSet, 0, f.name},
                               {Reason::kUnrecordedRouteSet, 0, f.name});
          },
          [&](const ir::FilterFilterSet& f) -> FilterEval {
            if (depth > 16) {
              // A filter-set reference cycle can never be resolved.
              return {FilterEvalClass::kSkip, {{Reason::kSkipUnparsedFilter, 0, f.name}}};
            }
            const ir::FilterSet* set = ctx.corpus.filter_set(f.name);
            if (set == nullptr) {
              return {FilterEvalClass::kUnrecorded, {{Reason::kUnrecordedFilterSet, 0, f.name}}};
            }
            // Prefer the family-appropriate filter; fall back to the other.
            const bool v6 = !ctx.prefix.is_v4();
            const ir::Filter* chosen = nullptr;
            if (v6 && set->has_mp_filter) {
              chosen = &set->mp_filter;
            } else if (set->has_filter) {
              chosen = &set->filter;
            } else if (set->has_mp_filter) {
              chosen = &set->mp_filter;
            }
            if (chosen == nullptr) {
              return {FilterEvalClass::kUnrecorded, {{Reason::kUnrecordedFilterSet, 0, f.name}}};
            }
            return eval_filter(*chosen, ctx, positive, depth + 1);
          },
          [&](const ir::FilterPrefixes& f) -> FilterEval {
            if (!f.op.is_none() && ctx.options.paper_faithful_skips) {
              // "We also do not handle two rules containing inline prefix
              // sets followed by range operators" (Appendix B).
              return {FilterEvalClass::kSkip, {{Reason::kSkipPrefixSetOp, 0, {}}}};
            }
            const bool hit = f.op.is_none() ? f.prefixes.matches(ctx.prefix)
                                            : f.prefixes.matches_with(f.op, ctx.prefix);
            if (hit) return {FilterEvalClass::kMatch, {}};
            FilterEval out{FilterEvalClass::kNoMatch, {}};
            if (positive) out.items.push_back({Reason::kMatchFilterPrefixes, 0, {}});
            return out;
          },
          [&](const ir::FilterAsPath& f) -> FilterEval {
            if (ctx.options.paper_faithful_skips && ctx.corpus.as_path_skipped(f)) {
              return {FilterEvalClass::kSkip, {{Reason::kSkipRegexConstruct, 0, {}}}};
            }
            switch (ctx.corpus.match_as_path(f, ctx.path, ctx.peer)) {
              case aspath::RegexMatch::kMatch:
                return {FilterEvalClass::kMatch, {}};
              case aspath::RegexMatch::kNoMatch: {
                FilterEval out{FilterEvalClass::kNoMatch, {}};
                if (positive) out.items.push_back({Reason::kMatchFilterAsPath, 0, {}});
                return out;
              }
              case aspath::RegexMatch::kUnsupported:
                return {FilterEvalClass::kSkip, {{Reason::kSkipRegexConstruct, 0, {}}}};
            }
            return {FilterEvalClass::kSkip, {}};
          },
          [&](const ir::FilterCommunity&) -> FilterEval {
            // Communities may be stripped in flight and are not visible in
            // table dumps; the paper conservatively ignores such rules.
            return {FilterEvalClass::kSkip, {{Reason::kSkipCommunityFilter, 0, {}}}};
          },
          [&](const ir::FilterAnd& f) -> FilterEval {
            FilterEval l = eval_filter(*f.left, ctx, positive, depth);
            FilterEval r = eval_filter(*f.right, ctx, positive, depth);
            FilterEval out;
            if (l.cls == FilterEvalClass::kNoMatch || r.cls == FilterEvalClass::kNoMatch) {
              out.cls = FilterEvalClass::kNoMatch;
            } else if (l.cls == FilterEvalClass::kSkip || r.cls == FilterEvalClass::kSkip) {
              out.cls = FilterEvalClass::kSkip;
            } else if (l.cls == FilterEvalClass::kUnrecorded ||
                       r.cls == FilterEvalClass::kUnrecorded) {
              out.cls = FilterEvalClass::kUnrecorded;
            } else {
              out.cls = FilterEvalClass::kMatch;
            }
            if (out.cls != FilterEvalClass::kMatch) {
              append(out.items, l.items);
              append(out.items, r.items);
            }
            return out;
          },
          [&](const ir::FilterOr& f) -> FilterEval {
            FilterEval l = eval_filter(*f.left, ctx, positive, depth);
            if (l.cls == FilterEvalClass::kMatch) return l;
            FilterEval r = eval_filter(*f.right, ctx, positive, depth);
            if (r.cls == FilterEvalClass::kMatch) return r;
            FilterEval out;
            if (l.cls == FilterEvalClass::kSkip || r.cls == FilterEvalClass::kSkip) {
              out.cls = FilterEvalClass::kSkip;
            } else if (l.cls == FilterEvalClass::kUnrecorded ||
                       r.cls == FilterEvalClass::kUnrecorded) {
              out.cls = FilterEvalClass::kUnrecorded;
            } else {
              out.cls = FilterEvalClass::kNoMatch;
            }
            append(out.items, l.items);
            append(out.items, r.items);
            return out;
          },
          [&](const ir::FilterNot& f) -> FilterEval {
            FilterEval inner = eval_filter(*f.inner, ctx, !positive, depth);
            FilterEval out;
            switch (inner.cls) {
              case FilterEvalClass::kMatch:
                out.cls = FilterEvalClass::kNoMatch;
                break;
              case FilterEvalClass::kNoMatch:
                out.cls = FilterEvalClass::kMatch;
                break;
              default:
                out.cls = inner.cls;
                append(out.items, inner.items);
            }
            return out;
          },
          [&](const ir::FilterUnknown&) -> FilterEval {
            return {FilterEvalClass::kSkip, {{Reason::kSkipUnparsedFilter, 0, {}}}};
          },
      },
      filter.node);
}

// ---------------------------------------------------------------------------
// Entries (rules, possibly structured)
// ---------------------------------------------------------------------------

template <typename Corpus>
RuleOutcome eval_factor(const ir::PolicyFactor& factor, const EvalContextT<Corpus>& ctx) {
  // (1) Any of the factor's peerings must cover the remote AS.
  PeeringEval best_peering{PeeringEvalClass::kNoMatch, {}};
  for (const auto& pa : factor.peerings) {
    PeeringEval p = eval_peering(pa.peering, ctx);
    if (p.cls == PeeringEvalClass::kMatch) {
      best_peering = std::move(p);
      break;
    }
    if (p.cls == PeeringEvalClass::kUnrecorded &&
        best_peering.cls != PeeringEvalClass::kUnrecorded) {
      best_peering.cls = PeeringEvalClass::kUnrecorded;
    }
    append(best_peering.items, p.items);
  }
  if (best_peering.cls == PeeringEvalClass::kUnrecorded) {
    return {EvalClass::kUnrecorded, std::move(best_peering.items)};
  }
  if (best_peering.cls == PeeringEvalClass::kNoMatch) {
    return {EvalClass::kNoMatchPeering, std::move(best_peering.items)};
  }

  // (2) The filter must cover <P, A>.
  FilterEval f = eval_filter(factor.filter, ctx, /*positive=*/true);
  switch (f.cls) {
    case FilterEvalClass::kMatch:
      return {EvalClass::kMatch, {}};
    case FilterEvalClass::kSkip:
      return {EvalClass::kSkip, std::move(f.items)};
    case FilterEvalClass::kUnrecorded:
      return {EvalClass::kUnrecorded, std::move(f.items)};
    case FilterEvalClass::kNoMatch: {
      std::vector<ReportItem> items = std::move(f.items);
      items.push_back({Reason::kMatchFilter, 0, {}});
      return {EvalClass::kNoMatchFilter, std::move(items)};
    }
  }
  return {EvalClass::kNoMatchFilter, {}};
}

template <typename Corpus>
RuleOutcome eval_entry(const ir::Entry& entry, bool mp, const EvalContextT<Corpus>& ctx) {
  if (!entry.covers_unicast(ctx.prefix.family(), mp)) {
    return {EvalClass::kNotApplicable, {}};
  }
  return std::visit(
      overloaded{
          [&](const ir::EntryTerm& term) -> RuleOutcome {
            RuleOutcome best{EvalClass::kNotApplicable, {}};
            for (const auto& factor : term.factors) {
              best = combine_best(std::move(best), eval_factor(factor, ctx));
              if (best.cls == EvalClass::kMatch) break;
            }
            return best;
          },
          [&](const ir::EntryExcept& e) -> RuleOutcome {
            // Exceptions take precedence: a route matching the RHS uses the
            // RHS policy; an undetermined RHS leaves the whole rule
            // undetermined; otherwise the LHS applies.
            RuleOutcome rhs = eval_entry(*e.right, mp, ctx);
            if (rhs.cls == EvalClass::kMatch || rhs.cls == EvalClass::kSkip ||
                rhs.cls == EvalClass::kUnrecorded) {
              return rhs;
            }
            return eval_entry(*e.left, mp, ctx);
          },
          [&](const ir::EntryRefine& e) -> RuleOutcome {
            // A refinement matches only when both sides match; a definite
            // non-match on either side decides, then skip/unrecorded.
            RuleOutcome l = eval_entry(*e.left, mp, ctx);
            RuleOutcome r = eval_entry(*e.right, mp, ctx);
            auto rank = [](EvalClass c) {
              switch (c) {
                case EvalClass::kNotApplicable:
                  return 0;
                case EvalClass::kNoMatchPeering:
                  return 1;
                case EvalClass::kNoMatchFilter:
                  return 2;
                case EvalClass::kSkip:
                  return 3;
                case EvalClass::kUnrecorded:
                  return 4;
                case EvalClass::kMatch:
                  return 5;
              }
              return 0;
            };
            RuleOutcome& weaker = rank(l.cls) <= rank(r.cls) ? l : r;
            RuleOutcome& stronger = rank(l.cls) <= rank(r.cls) ? r : l;
            if (weaker.cls == EvalClass::kMatch) return weaker;  // both match
            append(weaker.items, stronger.items);
            return weaker;
          },
      },
      entry.node);
}

}  // namespace

RuleOutcome combine_best(RuleOutcome a, RuleOutcome b) {
  auto rank = [](EvalClass c) {
    switch (c) {
      case EvalClass::kMatch:
        return 0;
      case EvalClass::kSkip:
        return 1;
      case EvalClass::kUnrecorded:
        return 2;
      case EvalClass::kNoMatchFilter:
        return 3;
      case EvalClass::kNoMatchPeering:
        return 4;
      case EvalClass::kNotApplicable:
        return 5;
    }
    return 5;
  };
  RuleOutcome& best = rank(a.cls) <= rank(b.cls) ? a : b;
  RuleOutcome& rest = rank(a.cls) <= rank(b.cls) ? b : a;
  // Mismatch explanations accumulate across rules (Appendix C shows every
  // rule's MatchRemoteAsNum); determined statuses keep their own items.
  if (best.cls == EvalClass::kNoMatchFilter || best.cls == EvalClass::kNoMatchPeering) {
    if (rest.cls == EvalClass::kNoMatchFilter || rest.cls == EvalClass::kNoMatchPeering) {
      append(best.items, rest.items);
    }
  }
  return std::move(best);
}

template <typename Corpus>
RuleOutcome evaluate_rule(const ir::Rule& rule, const EvalContextT<Corpus>& ctx) {
  return eval_entry(rule.entry, rule.mp, ctx);
}

template RuleOutcome evaluate_rule<InterpretedCorpus>(
    const ir::Rule&, const EvalContextT<InterpretedCorpus>&);
template RuleOutcome evaluate_rule<compile::CompiledPolicySnapshot>(
    const ir::Rule&, const EvalContextT<compile::CompiledPolicySnapshot>&);

}  // namespace rpslyzer::verify::internal
