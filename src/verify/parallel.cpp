#include "rpslyzer/verify/parallel.hpp"

#include <atomic>
#include <thread>

#include "rpslyzer/obs/trace.hpp"

namespace rpslyzer::verify {

std::vector<std::vector<HopCheck>> verify_routes_parallel(
    const irr::Index& index, const relations::AsRelations& relations,
    const std::vector<bgp::Route>& routes, VerifyOptions options, unsigned threads) {
  obs::Span verify_span("verify.routes");
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::vector<HopCheck>> results(routes.size());
  if (routes.empty()) return results;
  if (threads == 1 || routes.size() < 2 * threads) {
    obs::Span batch_span("verify.batch");
    Verifier verifier(index, relations, options);
    for (std::size_t i = 0; i < routes.size(); ++i) {
      results[i] = verifier.verify_route(routes[i]);
    }
    return results;
  }

  // Make all as-set flattening queries pure reads before sharing the index.
  index.prewarm();
  // Tier-1 computation caches lazily inside AsRelations; force it now.
  relations.tier1();

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    // Verifier-level caches (customer cones, only-provider bits) are
    // per-thread; they deduplicate quickly across a shard.
    Verifier verifier(index, relations, options);
    constexpr std::size_t kBatch = 64;
    while (true) {
      const std::size_t begin = next.fetch_add(kBatch);
      if (begin >= routes.size()) break;
      const std::size_t end = std::min(begin + kBatch, routes.size());
      obs::Span batch_span("verify.batch");
      for (std::size_t i = begin; i < end; ++i) {
        results[i] = verifier.verify_route(routes[i]);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return results;
}

}  // namespace rpslyzer::verify
