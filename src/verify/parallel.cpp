#include "rpslyzer/verify/parallel.hpp"

#include <atomic>
#include <thread>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/obs/trace.hpp"

namespace rpslyzer::verify {

namespace {

/// Shard `routes` across `threads` workers with a bounded claim loop and
/// write results through `verifier_for_thread(t)`.
template <typename VerifierFor>
void run_pool(const std::vector<bgp::Route>& routes,
              std::vector<std::vector<HopCheck>>& results, unsigned threads,
              const VerifierFor& verifier_for_thread) {
  std::atomic<std::size_t> next{0};
  auto worker = [&](unsigned t) {
    const Verifier& verifier = verifier_for_thread(t);
    constexpr std::size_t kBatch = 64;
    while (true) {
      // Claim [begin, end) with a CAS bounded at routes.size(): a bare
      // fetch_add would keep incrementing the counter past the end on
      // every spin of every thread (overflow risk on small inputs with
      // many threads).
      std::size_t begin = next.load(std::memory_order_relaxed);
      std::size_t end = 0;
      do {
        if (begin >= routes.size()) return;
        end = std::min(begin + kBatch, routes.size());
      } while (!next.compare_exchange_weak(begin, end, std::memory_order_relaxed));
      obs::Span batch_span("verify.batch");
      for (std::size_t i = begin; i < end; ++i) {
        results[i] = verifier.verify_route(routes[i]);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& thread : pool) thread.join();
}

std::vector<std::vector<HopCheck>> verify_interpreted(
    const irr::Index& index, const relations::AsRelations& relations,
    const std::vector<bgp::Route>& routes, VerifyOptions options, unsigned threads) {
  obs::Span verify_span("verify.routes");
  std::vector<std::vector<HopCheck>> results(routes.size());
  if (routes.empty()) return results;
  if (threads == 1 || routes.size() < 2 * threads) {
    obs::Span batch_span("verify.batch");
    Verifier verifier(index, relations, options);
    for (std::size_t i = 0; i < routes.size(); ++i) {
      results[i] = verifier.verify_route(routes[i]);
    }
    return results;
  }

  // Make all as-set flattening queries pure reads before sharing the index.
  index.prewarm();
  // Tier-1 computation caches lazily inside AsRelations; force it now.
  relations.tier1();

  // Verifier-level caches (customer cones, only-provider bits) are
  // per-thread; they deduplicate quickly across a shard.
  std::vector<Verifier> verifiers;
  verifiers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) verifiers.emplace_back(index, relations, options);
  run_pool(routes, results, threads,
           [&](unsigned t) -> const Verifier& { return verifiers[t]; });
  return results;
}

}  // namespace

std::vector<std::vector<HopCheck>> verify_routes_parallel(
    std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot,
    const std::vector<bgp::Route>& routes, VerifyOptions options, unsigned threads) {
  obs::Span verify_span("verify.routes");
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::vector<HopCheck>> results(routes.size());
  if (routes.empty()) return results;
  // One immutable Verifier for everyone; no per-thread state exists.
  Verifier verifier(std::move(snapshot), options);
  if (threads == 1 || routes.size() < 2 * threads) {
    obs::Span batch_span("verify.batch");
    for (std::size_t i = 0; i < routes.size(); ++i) {
      results[i] = verifier.verify_route(routes[i]);
    }
    return results;
  }
  run_pool(routes, results, threads,
           [&](unsigned) -> const Verifier& { return verifier; });
  return results;
}

std::vector<std::vector<HopCheck>> verify_routes_parallel(
    const irr::Index& index, const relations::AsRelations& relations,
    const std::vector<bgp::Route>& routes, VerifyOptions options, unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (options.use_snapshot) {
    // Build a snapshot over non-owning aliases: the caller guarantees index
    // and relations outlive this call, and the snapshot dies with it.
    auto snapshot = compile::CompiledPolicySnapshot::build(
        std::shared_ptr<const irr::Index>(std::shared_ptr<void>(), &index),
        std::shared_ptr<const relations::AsRelations>(std::shared_ptr<void>(),
                                                      &relations));
    return verify_routes_parallel(std::move(snapshot), routes, options, threads);
  }
  return verify_interpreted(index, relations, routes, options, threads);
}

}  // namespace rpslyzer::verify
