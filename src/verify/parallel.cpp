#include "rpslyzer/verify/parallel.hpp"

#include <atomic>
#include <thread>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/obs/trace.hpp"

namespace rpslyzer::verify {

namespace {

/// One claimed batch of results, staged worker-locally: the verdicts for
/// routes [begin_index, begin_index + checks.size()).
struct ResultChunk {
  std::size_t begin_index = 0;
  std::vector<std::vector<HopCheck>> checks;
};

/// The shared claim counter on its own cache line: neighbouring hot data
/// (the workers' chunk vectors live in an array indexed by thread) must not
/// false-share with the one word every worker CASes.
struct alignas(64) ClaimCounter {
  std::atomic<std::size_t> next{0};
  char pad[64 - sizeof(std::atomic<std::size_t>)];
};

/// Shard `routes` across `threads` workers with a bounded claim loop and
/// write results through `verifier_for_thread(t)`. Workers never touch the
/// shared `results` vector: each stages its batches in worker-local chunks
/// (no false sharing on adjacent vector headers while verifying) and the
/// main thread splices them into place after the join — moves of already-
/// built vectors, no verdict is copied.
template <typename VerifierFor>
void run_pool(const std::vector<bgp::Route>& routes,
              std::vector<std::vector<HopCheck>>& results, unsigned threads,
              const VerifierFor& verifier_for_thread) {
  ClaimCounter claim;
  std::vector<std::vector<ResultChunk>> worker_chunks(threads);
  auto worker = [&](unsigned t) {
    const Verifier& verifier = verifier_for_thread(t);
    std::vector<ResultChunk>& local = worker_chunks[t];
    constexpr std::size_t kBatch = 64;
    while (true) {
      // Claim [begin, end) with a CAS bounded at routes.size(): a bare
      // fetch_add would keep incrementing the counter past the end on
      // every spin of every thread (overflow risk on small inputs with
      // many threads).
      std::size_t begin = claim.next.load(std::memory_order_relaxed);
      std::size_t end = 0;
      do {
        if (begin >= routes.size()) return;
        end = std::min(begin + kBatch, routes.size());
      } while (!claim.next.compare_exchange_weak(begin, end, std::memory_order_relaxed));
      obs::Span batch_span("verify.batch");
      ResultChunk chunk;
      chunk.begin_index = begin;
      chunk.checks.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        chunk.checks.push_back(verifier.verify_route(routes[i]));
      }
      local.push_back(std::move(chunk));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& thread : pool) thread.join();
  for (std::vector<ResultChunk>& local : worker_chunks) {
    for (ResultChunk& chunk : local) {
      for (std::size_t i = 0; i < chunk.checks.size(); ++i) {
        results[chunk.begin_index + i] = std::move(chunk.checks[i]);
      }
    }
  }
}

std::vector<std::vector<HopCheck>> verify_interpreted(
    const irr::Index& index, const relations::AsRelations& relations,
    const std::vector<bgp::Route>& routes, VerifyOptions options, unsigned threads) {
  obs::Span verify_span("verify.routes");
  std::vector<std::vector<HopCheck>> results(routes.size());
  if (routes.empty()) return results;
  if (threads == 1 || routes.size() < 2 * threads) {
    obs::Span batch_span("verify.batch");
    Verifier verifier(index, relations, options);
    for (std::size_t i = 0; i < routes.size(); ++i) {
      results[i] = verifier.verify_route(routes[i]);
    }
    return results;
  }

  // Make all as-set flattening queries pure reads before sharing the index.
  index.prewarm();
  // Tier-1 computation caches lazily inside AsRelations; force it now.
  relations.tier1();

  // Verifier-level caches (customer cones, only-provider bits) are
  // per-thread; they deduplicate quickly across a shard.
  std::vector<Verifier> verifiers;
  verifiers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) verifiers.emplace_back(index, relations, options);
  run_pool(routes, results, threads,
           [&](unsigned t) -> const Verifier& { return verifiers[t]; });
  return results;
}

}  // namespace

std::vector<std::vector<HopCheck>> verify_routes_parallel(
    std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot,
    const std::vector<bgp::Route>& routes, VerifyOptions options, unsigned threads) {
  obs::Span verify_span("verify.routes");
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::vector<HopCheck>> results(routes.size());
  if (routes.empty()) return results;
  // One immutable Verifier for everyone; no per-thread state exists.
  Verifier verifier(std::move(snapshot), options);
  if (threads == 1 || routes.size() < 2 * threads) {
    obs::Span batch_span("verify.batch");
    for (std::size_t i = 0; i < routes.size(); ++i) {
      results[i] = verifier.verify_route(routes[i]);
    }
    return results;
  }
  run_pool(routes, results, threads,
           [&](unsigned) -> const Verifier& { return verifier; });
  return results;
}

std::vector<std::vector<HopCheck>> verify_routes_parallel(
    const irr::Index& index, const relations::AsRelations& relations,
    const std::vector<bgp::Route>& routes, VerifyOptions options, unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (options.use_snapshot) {
    // Build a snapshot over non-owning aliases: the caller guarantees index
    // and relations outlive this call, and the snapshot dies with it.
    auto snapshot = compile::CompiledPolicySnapshot::build(
        std::shared_ptr<const irr::Index>(std::shared_ptr<void>(), &index),
        std::shared_ptr<const relations::AsRelations>(std::shared_ptr<void>(),
                                                      &relations));
    return verify_routes_parallel(std::move(snapshot), routes, options, threads);
  }
  return verify_interpreted(index, relations, routes, options, threads);
}

}  // namespace rpslyzer::verify
