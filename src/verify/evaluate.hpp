#pragma once
// Internal rule evaluation for the verifier: tri/four-state evaluation of
// peerings, filters, and (structured) policy entries against one route.
// Not installed; the public surface is verifier.hpp.

#include <span>

#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/verify/status.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer::verify::internal {

/// How far one rule got toward matching, ordered by §5 priority for
/// best-rule selection (earlier enumerator = better).
enum class EvalClass : std::uint8_t {
  kMatch,
  kSkip,            // an unhandleable construct prevented a verdict
  kUnrecorded,      // missing referenced objects prevented a verdict
  kNoMatchFilter,   // peering matched, filter did not
  kNoMatchPeering,  // peering did not cover the remote AS
  kNotApplicable,   // wrong address family
};

struct RuleOutcome {
  EvalClass cls = EvalClass::kNotApplicable;
  std::vector<ReportItem> items;
};

/// Context shared by all evaluations of one check.
struct EvalContext {
  const irr::Index& index;
  const VerifyOptions& options;
  Asn self = 0;                     // the AS whose rule is evaluated
  Asn peer = 0;                     // the remote AS of the session
  net::Prefix prefix;               // the route's prefix P
  std::span<const Asn> path;        // announced AS path (peer side first)
  Asn origin = 0;                   // last element of the full path
};

/// Evaluate one rule (a full import/export attribute) against the context.
RuleOutcome evaluate_rule(const ir::Rule& rule, const EvalContext& ctx);

/// Pick the better of two outcomes under §5 ordering, merging items when
/// both are mismatches (all rules' mismatch explanations are reported).
RuleOutcome combine_best(RuleOutcome a, RuleOutcome b);

}  // namespace rpslyzer::verify::internal
