#pragma once
// Internal rule evaluation for the verifier: tri/four-state evaluation of
// peerings, filters, and (structured) policy entries against one route.
// Not installed; the public surface is verifier.hpp.
//
// Evaluation is templated over a Corpus — the oracle that answers set,
// route-object, and AS-path questions. Two corpora exist:
//
//  * InterpretedCorpus: a thin adapter over irr::Index. Lookups walk the
//    index's lazily-memoized structures and recompile AS-path NFAs per
//    call.
//  * compile::CompiledPolicySnapshot: everything pre-flattened and
//    pre-lowered at build time; all queries are pure reads.
//
// Both instantiations share this one source of truth for §5 semantics, so
// the two paths cannot drift; tests/compile_snapshot_test.cpp additionally
// asserts verdict-for-verdict equality on a synthesized corpus.

#include <span>

#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/verify/status.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer::compile {
class CompiledPolicySnapshot;
}  // namespace rpslyzer::compile

namespace rpslyzer::verify::internal {

/// How far one rule got toward matching, ordered by §5 priority for
/// best-rule selection (earlier enumerator = better).
enum class EvalClass : std::uint8_t {
  kMatch,
  kSkip,            // an unhandleable construct prevented a verdict
  kUnrecorded,      // missing referenced objects prevented a verdict
  kNoMatchFilter,   // peering matched, filter did not
  kNoMatchPeering,  // peering did not cover the remote AS
  kNotApplicable,   // wrong address family
};

struct RuleOutcome {
  EvalClass cls = EvalClass::kNotApplicable;
  std::vector<ReportItem> items;
};

/// The interpreted corpus: evaluation directly against the IRR index, kept
/// behind VerifyOptions::use_snapshot=false as the reference implementation.
struct InterpretedCorpus {
  const irr::Index& index;

  auto flattened(std::string_view name) const { return index.flattened(name); }
  auto peering_set(std::string_view name) const { return index.peering_set(name); }
  auto filter_set(std::string_view name) const { return index.filter_set(name); }
  bool is_known(std::string_view name) const { return index.is_known(name); }
  irr::Lookup origin_matches(ir::Asn asn, const net::RangeOp& op,
                             const net::Prefix& p) const {
    return index.origin_matches(asn, op, p);
  }
  irr::Lookup as_set_originates(std::string_view name, const net::RangeOp& op,
                                const net::Prefix& p) const {
    return index.as_set_originates(name, op, p);
  }
  irr::Lookup route_set_matches(std::string_view name, const net::RangeOp& op,
                                const net::Prefix& p) const {
    return index.route_set_matches(name, op, p);
  }
  aspath::RegexMatch match_as_path(const ir::FilterAsPath& filter,
                                   std::span<const Asn> path, Asn peer) const;
  bool as_path_skipped(const ir::FilterAsPath& filter) const;
};

/// Context shared by all evaluations of one check.
template <typename Corpus>
struct EvalContextT {
  const Corpus& corpus;
  const VerifyOptions& options;
  Asn self = 0;               // the AS whose rule is evaluated
  Asn peer = 0;               // the remote AS of the session
  net::Prefix prefix;         // the route's prefix P
  std::span<const Asn> path;  // announced AS path (peer side first)
  Asn origin = 0;             // last element of the full path
};

using EvalContext = EvalContextT<InterpretedCorpus>;

/// Evaluate one rule (a full import/export attribute) against the context.
template <typename Corpus>
RuleOutcome evaluate_rule(const ir::Rule& rule, const EvalContextT<Corpus>& ctx);

extern template RuleOutcome evaluate_rule<InterpretedCorpus>(
    const ir::Rule&, const EvalContextT<InterpretedCorpus>&);
extern template RuleOutcome evaluate_rule<compile::CompiledPolicySnapshot>(
    const ir::Rule&, const EvalContextT<compile::CompiledPolicySnapshot>&);

/// Pick the better of two outcomes under §5 ordering, merging items when
/// both are mismatches (all rules' mismatch explanations are reported).
RuleOutcome combine_best(RuleOutcome a, RuleOutcome b);

}  // namespace rpslyzer::verify::internal
