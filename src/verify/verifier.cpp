#include "rpslyzer/verify/verifier.hpp"

#include <algorithm>

#include "evaluate.hpp"
#include "rpslyzer/compile/snapshot.hpp"

namespace rpslyzer::verify {

namespace {

using internal::EvalClass;
using internal::RuleOutcome;

}  // namespace

Verifier::Verifier(const irr::Index& index, const relations::AsRelations& relations,
                   VerifyOptions options)
    : index_(&index), relations_(&relations), options_(options) {}

Verifier::Verifier(std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot,
                   VerifyOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {}

const relations::AsRelations& Verifier::rels() const {
  return snapshot_ != nullptr ? snapshot_->relations() : *relations_;
}

bool Verifier::contains_origin(const std::string& as_set, Asn origin) const {
  return snapshot_ != nullptr ? snapshot_->contains(as_set, origin)
                              : index_->contains(as_set, origin);
}

bool Verifier::only_provider_policies(Asn asn) const {
  if (snapshot_ != nullptr) {
    const compile::CompiledAutNum* can = snapshot_->compiled_aut_num(asn);
    return can != nullptr && can->only_provider;
  }
  if (auto it = only_provider_cache_.find(asn); it != only_provider_cache_.end()) {
    return it->second;
  }
  const bool result = compile::only_provider_policies(*index_, *relations_, asn);
  only_provider_cache_.emplace(asn, result);
  return result;
}

bool Verifier::relax_export_self(Asn self, const net::Prefix& prefix) const {
  // Appendix C semantics: "announce <self>" is relaxed to also cover route
  // objects originated by the AS's customer cone.
  if (snapshot_ != nullptr) {
    const compile::CompiledAutNum* can = snapshot_->compiled_aut_num(self);
    if (can == nullptr) return false;  // check() guarantees an aut-num exists
    std::span<const Asn> exact = snapshot_->exact_origins(prefix);
    const auto& cone = can->customer_cone;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < exact.size() && j < cone.size()) {
      if (exact[i] == cone[j]) return true;
      if (exact[i] < cone[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  }
  auto it = cone_cache_.find(self);
  if (it == cone_cache_.end()) {
    it = cone_cache_.emplace(self, relations_->customer_cone(self)).first;
  }
  for (Asn member : it->second) {
    if (index_->origin_matches(member, net::RangeOp::none(), prefix) ==
        irr::Lookup::kMatch) {
      return true;
    }
  }
  return false;
}

CheckResult Verifier::classify(RuleOutcome best, Asn self, Asn peer, bool is_import,
                               const bgp::Route& route) const {
  switch (best.cls) {
    case EvalClass::kMatch:
      return {Status::kVerified, {}};
    case EvalClass::kSkip:
      return {Status::kSkip, std::move(best.items)};
    case EvalClass::kUnrecorded:
      return {Status::kUnrecorded, std::move(best.items)};
    default:
      break;
  }

  // §5.1.1 relaxed filters, in paper order, applicable when some rule's
  // peering matched but its filter did not.
  if (options_.relaxations && best.cls == EvalClass::kNoMatchFilter) {
    const Asn origin = route.origin();
    bool has_self_filter = false;
    bool has_peer_filter = false;
    bool has_origin_filter = false;
    for (const auto& item : best.items) {
      if (item.reason == Reason::kMatchFilterAsNum) {
        has_self_filter = has_self_filter || item.asn == self;
        has_peer_filter = has_peer_filter || item.asn == peer;
        has_origin_filter = has_origin_filter || item.asn == origin;
      } else if (item.reason == Reason::kMatchFilterAsSet) {
        has_origin_filter = has_origin_filter || contains_origin(item.name, origin);
      }
    }
    // Export Self: a transit AS announcing "its own" routes almost always
    // means its routes and its customers' (validated by operators, App. E).
    if (!is_import && has_self_filter && relax_export_self(self, route.prefix)) {
      best.items.push_back({Reason::kRelaxedExportSelf, 0, {}});
      return {Status::kRelaxed, std::move(best.items)};
    }
    // Import Customer: "from C accept C" (or accept PeerAS) by C's provider
    // means "accept anything C sends".
    if (is_import && has_peer_filter && rels().is_provider_of(self, peer)) {
      best.items.push_back({Reason::kRelaxedImportCustomer, 0, {}});
      return {Status::kRelaxed, std::move(best.items)};
    }
    // Missing routes: the filter names the AS-path's origin (or a set
    // containing it) — the route object is simply not maintained.
    if (has_origin_filter) {
      best.items.push_back({Reason::kRelaxedMissingRoutes, 0, {}});
      return {Status::kRelaxed, std::move(best.items)};
    }
  }

  // §5.1.2 safelisted relationships, in paper order.
  if (options_.safelists) {
    const relations::Relationship to_peer = rels().between(self, peer);
    // Only Provider Policies: ASes that maintain rules solely for their
    // providers (who may require them); imports from anyone that is not a
    // provider pass. Appendix C distinguishes known customers from other
    // non-provider remotes in the report items.
    if (is_import && to_peer != relations::Relationship::kCustomer &&
        only_provider_policies(self)) {
      best.items.push_back({to_peer == relations::Relationship::kProvider
                                ? Reason::kSpecCustomerOnlyProviderPolicies
                                : Reason::kSpecOtherOnlyProviderPolicies,
                            0,
                            {}});
      return {Status::kSafelisted, std::move(best.items)};
    }
    // Tier-1 Peering: Tier-1s exchange routes by definition.
    if (rels().is_tier1(self) && rels().is_tier1(peer)) {
      best.items.push_back({Reason::kSpecTier1Pair, 0, {}});
      return {Status::kSafelisted, std::move(best.items)};
    }
    // Uphill: customers rely on providers to reach the Internet; providers
    // import customer routes.
    const bool uphill = is_import ? to_peer == relations::Relationship::kProvider
                                  : to_peer == relations::Relationship::kCustomer;
    if (uphill) {
      best.items.push_back({Reason::kSpecUphill, 0, {}});
      return {Status::kSafelisted, std::move(best.items)};
    }
  }

  return {Status::kUnverified, std::move(best.items)};
}

CheckResult Verifier::check(Asn self, Asn peer, bool is_import, const bgp::Route& route,
                            std::span<const Asn> announced_path) const {
  if (snapshot_ != nullptr) {
    // Unrecorded (1): no aut-num object for the AS under check.
    const compile::CompiledAutNum* can = snapshot_->compiled_aut_num(self);
    if (can == nullptr) {
      return {Status::kUnrecorded, {{Reason::kUnrecordedAutNum, self, {}}}};
    }
    // Unrecorded (2): zero rules for the direction being checked.
    const auto& crules = is_import ? can->imports : can->exports;
    if (crules.empty()) {
      return {Status::kUnrecorded, {{Reason::kUnrecordedNoRules, self, {}}}};
    }

    internal::EvalContextT<compile::CompiledPolicySnapshot> ctx{
        *snapshot_, options_, self, peer, route.prefix, announced_path, route.origin()};

    RuleOutcome best{EvalClass::kNotApplicable, {}};
    for (const auto& crule : crules) {
      RuleOutcome out;
      const bool covers = route.prefix.is_v4() ? crule.covers_v4 : crule.covers_v6;
      if (!covers) {
        out.cls = EvalClass::kNotApplicable;
      } else if (crule.simple &&
                 !std::binary_search(crule.peers.begin(), crule.peers.end(), peer)) {
        // Fast reject: every peering is a plain ASN and none names the
        // peer, so no factor's filter is ever evaluated. Reproduces the
        // interpreted per-factor NoMatchPeering merge exactly.
        if (crule.no_factors) {
          out.cls = EvalClass::kNotApplicable;
        } else {
          out.cls = EvalClass::kNoMatchPeering;
          out.items.reserve(crule.no_match_asns.size());
          for (Asn a : crule.no_match_asns) {
            out.items.push_back({Reason::kMatchRemoteAsNum, a, {}});
          }
        }
      } else {
        out = internal::evaluate_rule(*crule.rule, ctx);
      }
      best = internal::combine_best(std::move(best), std::move(out));
      if (best.cls == EvalClass::kMatch) break;
    }
    return classify(std::move(best), self, peer, is_import, route);
  }

  // Unrecorded (1): no aut-num object for the AS under check.
  const ir::AutNum* an = index_->aut_num(self);
  if (an == nullptr) {
    return {Status::kUnrecorded, {{Reason::kUnrecordedAutNum, self, {}}}};
  }
  // Unrecorded (2): zero rules for the direction being checked.
  const auto& rules = is_import ? an->imports : an->exports;
  if (rules.empty()) {
    return {Status::kUnrecorded, {{Reason::kUnrecordedNoRules, self, {}}}};
  }

  internal::InterpretedCorpus corpus{*index_};
  internal::EvalContext ctx{corpus,         options_,       self, peer,
                            route.prefix,   announced_path, route.origin()};

  RuleOutcome best{EvalClass::kNotApplicable, {}};
  for (const auto& rule : rules) {
    best = internal::combine_best(std::move(best), internal::evaluate_rule(rule, ctx));
    if (best.cls == EvalClass::kMatch) break;
  }
  return classify(std::move(best), self, peer, is_import, route);
}

CheckResult Verifier::check_export(Asn from, Asn to, const bgp::Route& route,
                                   std::span<const Asn> announced_path) const {
  return check(from, to, /*is_import=*/false, route, announced_path);
}

CheckResult Verifier::check_import(Asn to, Asn from, const bgp::Route& route,
                                   std::span<const Asn> announced_path) const {
  return check(to, from, /*is_import=*/true, route, announced_path);
}

std::vector<HopCheck> Verifier::verify_route(const bgp::Route& route) const {
  std::vector<HopCheck> hops;
  if (route.path.size() < 2) return hops;
  // Walk from the origin toward the collector: pair (X = path[i+1] exports,
  // Y = path[i] imports); the path X announces is path[i+1..].
  for (std::size_t i = route.path.size() - 1; i-- > 0;) {
    const Asn exporter = route.path[i + 1];
    const Asn importer = route.path[i];
    std::span<const Asn> announced(route.path.data() + i + 1, route.path.size() - i - 1);
    HopCheck hop;
    hop.from = exporter;
    hop.to = importer;
    hop.export_result = check_export(exporter, importer, route, announced);
    hop.import_result = check_import(importer, exporter, route, announced);
    hops.push_back(std::move(hop));
  }
  return hops;
}

std::string Verifier::report(const bgp::Route& route) const {
  std::string out;
  for (const HopCheck& hop : verify_route(route)) out += to_report_lines(hop);
  return out;
}

}  // namespace rpslyzer::verify
