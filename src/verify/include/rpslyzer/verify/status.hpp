#pragma once
// Verification statuses and report items (§5 and Appendix C).
//
// Each import/export check classifies into one of six statuses, applied in
// order: Verified ≻ Skip ≻ Unrecorded ≻ Relaxed ≻ Safelisted ≻ Unverified
// — "if there are multiple matches, the best rule with the earliest
// matching check is considered".

#include <cstdint>
#include <string>
#include <vector>

namespace rpslyzer::verify {

using Asn = std::uint32_t;

enum class Status : std::uint8_t {
  kVerified,    // a strict match
  kSkip,        // only unhandleable rules could have matched
  kUnrecorded,  // RPSL objects/rules missing from the IRRs
  kRelaxed,     // matched under a relaxed filter (§5.1.1)
  kSafelisted,  // explained by a safelisted relationship (§5.1.2)
  kUnverified,  // a mismatch
};

const char* to_string(Status s) noexcept;

/// Machine-readable explanation items, mirroring the report printout of
/// Appendix C (MatchRemoteAsNum, UnrecordedAsSet, SpecUphill, ...).
enum class Reason : std::uint8_t {
  // Mismatch explanations (Unverified / context for special cases).
  kMatchRemoteAsNum,    // a rule's peering names a different remote ASN
  kMatchRemoteAsSet,    // a rule's peering as-set lacks the remote AS
  kMatchRemotePeeringSet,  // a peering-set's peerings lack the remote AS
  kMatchFilter,         // peering matched, filter did not (generic)
  kMatchFilterAsNum,    // ... the filter was this ASN
  kMatchFilterAsSet,    // ... the filter was this as-set
  kMatchFilterRouteSet,
  kMatchFilterPrefixes,
  kMatchFilterAsPath,
  // Unrecorded reasons (Figure 5's categories).
  kUnrecordedAutNum,
  kUnrecordedNoRules,      // zero import (export) rules for the direction
  kUnrecordedAsSet,
  kUnrecordedRouteSet,
  kUnrecordedPeeringSet,
  kUnrecordedFilterSet,
  kUnrecordedZeroRouteAs,  // filter references an AS with no route objects
  // Relaxed filters (§5.1.1).
  kRelaxedExportSelf,
  kRelaxedImportCustomer,
  kRelaxedMissingRoutes,
  // Safelisted relationships (§5.1.2). The only-provider-policies case has
  // two flavors in the Appendix C reports: the remote is a known customer
  // (SpecCustomerOnlyProviderPolicies) or anything else that is not a
  // provider (SpecOtherOnlyProviderPolicies).
  kSpecCustomerOnlyProviderPolicies,
  kSpecOtherOnlyProviderPolicies,
  kSpecTier1Pair,
  kSpecUphill,
  // Skip reasons (Appendix B limitations).
  kSkipRegexConstruct,   // ASN range / same-pattern operator in a regex
  kSkipCommunityFilter,  // community(...) in a filter
  kSkipPrefixSetOp,      // inline prefix set followed by a range operator
  kSkipUnparsedFilter,   // filter text the parser could not interpret
};

const char* to_string(Reason r) noexcept;

struct ReportItem {
  Reason reason;
  Asn asn = 0;       // remote/filter ASN when applicable
  std::string name;  // set name when applicable

  friend bool operator==(const ReportItem&, const ReportItem&) = default;
};

/// Render "MatchRemoteAsNum(58552)" / "UnrecordedAsSet(\"AS1299:...\")".
std::string to_string(const ReportItem& item);

/// The outcome of checking one import or export at one AS for one route.
struct CheckResult {
  Status status = Status::kUnverified;
  std::vector<ReportItem> items;
};

/// One AS-pair hop of a route: `from` exported, `to` imported.
struct HopCheck {
  Asn from = 0;
  Asn to = 0;
  CheckResult export_result;
  CheckResult import_result;
};

/// Render one hop like Appendix C ("OkImport { from: .., to: .. }",
/// "MehExport { from, to, items: [...] }", "BadImport", "UnrecExport").
std::string to_report_lines(const HopCheck& hop);

}  // namespace rpslyzer::verify
