#pragma once
// Multi-threaded route verification. The paper verifies 779M routes on a
// dual-64-core machine (§5); checks are independent per route, so the
// engine parallelizes by sharding routes across threads. The shared Index
// must be prewarmed (irr::Index::prewarm) so as-set flattening is a pure
// read; each worker gets its own Verifier (its caches are cheap).

#include <vector>

#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer::verify {

/// Verify `routes[i]` for every i, in order; results[i] matches what a
/// serial Verifier::verify_route(routes[i]) returns. `threads` = 0 uses
/// the hardware concurrency.
std::vector<std::vector<HopCheck>> verify_routes_parallel(
    const irr::Index& index, const relations::AsRelations& relations,
    const std::vector<bgp::Route>& routes, VerifyOptions options = {},
    unsigned threads = 0);

}  // namespace rpslyzer::verify
