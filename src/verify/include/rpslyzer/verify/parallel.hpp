#pragma once
// Multi-threaded route verification. The paper verifies 779M routes on a
// dual-64-core machine (§5); checks are independent per route, so the
// engine parallelizes by sharding routes across threads.
//
// With VerifyOptions::use_snapshot (the default), the index/relations
// overload compiles a CompiledPolicySnapshot once and all workers share a
// single const Verifier — no prewarm dance, no per-thread caches. With
// use_snapshot=false, the shared Index is prewarmed so as-set flattening
// is a pure read and each worker gets its own interpreted Verifier.

#include <memory>
#include <vector>

#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer::verify {

/// Verify `routes[i]` for every i, in order; results[i] matches what a
/// serial Verifier::verify_route(routes[i]) returns. `threads` = 0 uses
/// the hardware concurrency.
std::vector<std::vector<HopCheck>> verify_routes_parallel(
    const irr::Index& index, const relations::AsRelations& relations,
    const std::vector<bgp::Route>& routes, VerifyOptions options = {},
    unsigned threads = 0);

/// Same, against an already-built snapshot (one shared const Verifier).
std::vector<std::vector<HopCheck>> verify_routes_parallel(
    std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot,
    const std::vector<bgp::Route>& routes, VerifyOptions options = {},
    unsigned threads = 0);

}  // namespace rpslyzer::verify
