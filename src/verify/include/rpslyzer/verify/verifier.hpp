#pragma once
// The route verification engine (§5).
//
// For each route <P, A> and each AS pair <Y, X> where Y imports the route
// X exported, RPSLyzer checks X's export rules and Y's import rules: a
// strict match requires (1) the remote AS to match the rule's peering and
// (2) the prefix and AS-path to match the rule's filter, with the rule
// covering P's address family. Non-matches classify into the §5 status
// lattice, with the §5.1.1 relaxed filters and §5.1.2 safelisted
// relationships applied in the paper's order.
//
// Two backends produce identical verdicts:
//
//  * snapshot (default): evaluation against an immutable
//    compile::CompiledPolicySnapshot. The Verifier holds no mutable state,
//    so one const instance is safely shared across threads.
//  * interpreted: direct evaluation against irr::Index +
//    relations::AsRelations with per-Verifier memo caches. Kept behind
//    VerifyOptions::use_snapshot=false for one release as the reference.

#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "rpslyzer/bgp/route.hpp"
#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/relations/relations.hpp"
#include "rpslyzer/verify/status.hpp"

namespace rpslyzer::compile {
class CompiledPolicySnapshot;
}  // namespace rpslyzer::compile

namespace rpslyzer::verify {

namespace internal {
struct RuleOutcome;
}  // namespace internal

struct VerifyOptions {
  /// Apply the §5.1.1 relaxed-filter checks (export self, import customer,
  /// missing routes). Off = strict RFC semantics.
  bool relaxations = true;
  /// Apply the §5.1.2 safelists (only-provider-policies, Tier-1 pairs,
  /// uphill customer→provider propagation).
  bool safelists = true;
  /// Mirror the paper's skip list (Appendix B): AS-path regexes with ASN
  /// ranges or same-pattern operators, community filters, and inline
  /// prefix sets with range operators are Skipped. When false, constructs
  /// our engines can evaluate are evaluated instead (community filters
  /// remain skipped — communities are unobservable in collector dumps).
  bool paper_faithful_skips = true;
  /// Verify against a compiled policy snapshot instead of interpreting the
  /// index directly. Consulted by the entry points that can choose a
  /// backend (Rpslyzer::verifier, verify_routes_parallel); a Verifier
  /// constructed from an explicit backend ignores it.
  bool use_snapshot = true;
};

class Verifier {
 public:
  /// Interpreted backend: evaluate directly against the index.
  Verifier(const irr::Index& index, const relations::AsRelations& relations,
           VerifyOptions options = {});

  /// Snapshot backend: evaluate against a compiled policy snapshot. The
  /// Verifier is then immutable and safely shared across threads.
  explicit Verifier(std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot,
                    VerifyOptions options = {});

  /// Check AS `from`'s export of `route` toward `to`. `announced_path` is
  /// the AS path as announced by `from` (from..origin, BGP order).
  CheckResult check_export(Asn from, Asn to, const bgp::Route& route,
                           std::span<const Asn> announced_path) const;

  /// Check AS `to`'s import of `route` from `from`.
  CheckResult check_import(Asn to, Asn from, const bgp::Route& route,
                           std::span<const Asn> announced_path) const;

  /// Verify every AS pair of the route, origin side first (Appendix C
  /// report order). Prepends must already be stripped (bgp::parse_* does).
  std::vector<HopCheck> verify_route(const bgp::Route& route) const;

  /// Appendix-C style multi-line report for one route.
  std::string report(const bgp::Route& route) const;

  const VerifyOptions& options() const noexcept { return options_; }

  /// The snapshot backing this verifier, or nullptr when interpreted.
  const compile::CompiledPolicySnapshot* snapshot() const noexcept {
    return snapshot_.get();
  }

  /// Does this AS only specify rules for its providers (§5.1.2)? Exposed
  /// for the report module (Figure 6's breakdown).
  bool only_provider_policies(Asn asn) const;

 private:
  CheckResult check(Asn self, Asn peer, bool is_import, const bgp::Route& route,
                    std::span<const Asn> announced_path) const;

  /// Shared tail of check(): §5 status from the best rule outcome, then the
  /// §5.1.1 relaxations and §5.1.2 safelists in paper order. Backend
  /// differences are confined to the small dispatch helpers below.
  CheckResult classify(internal::RuleOutcome best, Asn self, Asn peer, bool is_import,
                       const bgp::Route& route) const;

  bool relax_export_self(Asn self, const net::Prefix& prefix) const;
  bool contains_origin(const std::string& as_set, Asn origin) const;
  const relations::AsRelations& rels() const;

  // Interpreted backend (null in snapshot mode):
  const irr::Index* index_ = nullptr;
  const relations::AsRelations* relations_ = nullptr;
  // Snapshot backend (null in interpreted mode):
  std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot_;

  VerifyOptions options_;

  // Interpreted-only memo caches; the snapshot path never touches them
  // (the snapshot precomputes both at build time).
  mutable std::unordered_map<Asn, bool> only_provider_cache_;
  // Customer cones are only materialized for the export-self relaxation.
  mutable std::unordered_map<Asn, std::vector<relations::Asn>> cone_cache_;
};

}  // namespace rpslyzer::verify
