#include "rpslyzer/verify/status.hpp"

namespace rpslyzer::verify {

const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::kVerified:
      return "verified";
    case Status::kSkip:
      return "skip";
    case Status::kUnrecorded:
      return "unrecorded";
    case Status::kRelaxed:
      return "relaxed";
    case Status::kSafelisted:
      return "safelisted";
    case Status::kUnverified:
      return "unverified";
  }
  return "unknown";
}

const char* to_string(Reason r) noexcept {
  switch (r) {
    case Reason::kMatchRemoteAsNum:
      return "MatchRemoteAsNum";
    case Reason::kMatchRemoteAsSet:
      return "MatchRemoteAsSet";
    case Reason::kMatchRemotePeeringSet:
      return "MatchRemotePeeringSet";
    case Reason::kMatchFilter:
      return "MatchFilter";
    case Reason::kMatchFilterAsNum:
      return "MatchFilterAsNum";
    case Reason::kMatchFilterAsSet:
      return "MatchFilterAsSet";
    case Reason::kMatchFilterRouteSet:
      return "MatchFilterRouteSet";
    case Reason::kMatchFilterPrefixes:
      return "MatchFilterPrefixes";
    case Reason::kMatchFilterAsPath:
      return "MatchFilterAsPath";
    case Reason::kUnrecordedAutNum:
      return "UnrecordedAutNum";
    case Reason::kUnrecordedNoRules:
      return "UnrecordedNoRules";
    case Reason::kUnrecordedAsSet:
      return "UnrecordedAsSet";
    case Reason::kUnrecordedRouteSet:
      return "UnrecordedRouteSet";
    case Reason::kUnrecordedPeeringSet:
      return "UnrecordedPeeringSet";
    case Reason::kUnrecordedFilterSet:
      return "UnrecordedFilterSet";
    case Reason::kUnrecordedZeroRouteAs:
      return "UnrecordedZeroRouteAs";
    case Reason::kRelaxedExportSelf:
      return "RelaxedExportSelf";
    case Reason::kRelaxedImportCustomer:
      return "RelaxedImportCustomer";
    case Reason::kRelaxedMissingRoutes:
      return "RelaxedMissingRoutes";
    case Reason::kSpecCustomerOnlyProviderPolicies:
      return "SpecCustomerOnlyProviderPolicies";
    case Reason::kSpecOtherOnlyProviderPolicies:
      return "SpecOtherOnlyProviderPolicies";
    case Reason::kSpecTier1Pair:
      return "SpecTier1Pair";
    case Reason::kSpecUphill:
      return "SpecUphill";
    case Reason::kSkipRegexConstruct:
      return "SkipRegexConstruct";
    case Reason::kSkipCommunityFilter:
      return "SkipCommunityFilter";
    case Reason::kSkipPrefixSetOp:
      return "SkipPrefixSetOp";
    case Reason::kSkipUnparsedFilter:
      return "SkipUnparsedFilter";
  }
  return "Unknown";
}

std::string to_string(const ReportItem& item) {
  std::string out = to_string(item.reason);
  if (item.asn != 0 && !item.name.empty()) {
    out += "(" + std::to_string(item.asn) + ", \"" + item.name + "\")";
  } else if (item.asn != 0) {
    out += "(" + std::to_string(item.asn) + ")";
  } else if (!item.name.empty()) {
    out += "(\"" + item.name + "\")";
  }
  return out;
}

namespace {

std::string check_line(const CheckResult& check, bool is_import, Asn from, Asn to) {
  const char* grade = nullptr;
  switch (check.status) {
    case Status::kVerified:
      grade = "Ok";
      break;
    case Status::kSkip:
      grade = "Skip";
      break;
    case Status::kUnrecorded:
      grade = "Unrec";
      break;
    case Status::kRelaxed:
    case Status::kSafelisted:
      grade = "Meh";
      break;
    case Status::kUnverified:
      grade = "Bad";
      break;
  }
  std::string out = std::string(grade) + (is_import ? "Import" : "Export") +
                    " { from: " + std::to_string(from) + ", to: " + std::to_string(to);
  if (!check.items.empty()) {
    out += ", items: [";
    bool first = true;
    for (const auto& item : check.items) {
      if (!first) out += ", ";
      first = false;
      out += to_string(item);
    }
    out += "]";
  }
  out += " }";
  return out;
}

}  // namespace

std::string to_report_lines(const HopCheck& hop) {
  return check_line(hop.export_result, false, hop.from, hop.to) + "\n" +
         check_line(hop.import_result, true, hop.from, hop.to) + "\n";
}

}  // namespace rpslyzer::verify
