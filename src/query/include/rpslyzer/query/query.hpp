#pragma once
// IRRd-style query evaluation over the RPSLyzer index.
//
// IRRd (the de-facto IRR server software, [45] in the paper) answers
// terse "!" queries that tools like bgpq4 use to build router filters.
// Implementing the query surface on top of our index both demonstrates the
// IR's utility for "the development of new tools that analyze the RPSL"
// (§1) and provides the substrate bgpq4-style filter generation needs.
//
// Supported queries (IRRd 4 syntax):
//   !gAS<asn>        IPv4 prefixes originated by the AS (route objects)
//   !6AS<asn>        IPv6 prefixes originated by the AS (route6 objects)
//   !iAS-SET         direct members of an as-set or route-set
//   !iAS-SET,1       recursively flattened members
//   !aAS-SET         IPv4+IPv6 prefixes of every flattened member
//   !a4AS-SET / !a6AS-SET   family-restricted variant
//   !o<asn>          (extension) rule summary for an aut-num
//
// Responses follow the IRRd framing: "A<len>\n<data>\nC\n" on success with
// data, "C\n" for success without data, "D\n" for "key not found", and
// "F <error>\n" for malformed queries.

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/irr/index.hpp"

namespace rpslyzer::query {

/// Evaluates queries against one corpus. Stateless between calls.
class QueryEngine {
 public:
  explicit QueryEngine(const irr::Index& index) : index_(index) {}

  /// Evaluate against a compiled snapshot: set flattening reads the
  /// snapshot's immutable tables instead of the index's lazy memo, so the
  /// engine is safely shared across server workers without prewarming.
  explicit QueryEngine(const compile::CompiledPolicySnapshot& snapshot)
      : index_(snapshot.index()), snapshot_(&snapshot) {}

  /// Evaluate one query line (with or without the leading '!').
  /// Returns the full framed response, newline-terminated.
  std::string evaluate(std::string_view line) const;

 private:
  std::string origin_prefixes(std::string_view arg, bool v6) const;
  std::string set_members(std::string_view arg) const;
  std::string set_prefixes(std::string_view arg) const;
  std::string aut_num_summary(std::string_view arg) const;

  /// Flattened member ASNs of an as-set (sorted unique), or nullopt when
  /// the set is undefined. Dispatches snapshot vs. index backend; a span
  /// because the snapshot backend may be mmap-backed.
  std::optional<std::span<const ir::Asn>> flat_asns(std::string_view name) const;

  const irr::Index& index_;
  const compile::CompiledPolicySnapshot* snapshot_ = nullptr;
};

/// Wrap payload text in IRRd response framing ("A<len>\n...\nC\n").
std::string frame_response(std::string_view payload);

}  // namespace rpslyzer::query
