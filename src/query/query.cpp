#include "rpslyzer/query/query.hpp"

#include <algorithm>

#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::query {

namespace {

using util::iequals;
using util::trim;

std::string not_found() { return "D\n"; }
std::string empty_success() { return "C\n"; }
std::string error(std::string_view why) { return "F " + std::string(why) + "\n"; }

/// Per-op evaluation counters. The op alphabet is compiled in (bounded
/// cardinality); handles resolve once and recording is a relaxed fetch_add.
struct OpCounters {
  obs::Counter& g;
  obs::Counter& v6;
  obs::Counter& i;
  obs::Counter& a;
  obs::Counter& o;
  obs::Counter& other;

  static obs::Counter& make(const char* op) {
    return obs::MetricsRegistry::global().counter(
        "rpslyzer_query_evaluations_total", "Query-engine evaluations by operation",
        {{"op", op}});
  }
  static OpCounters& get() {
    static OpCounters* counters = new OpCounters{make("g"), make("6"), make("i"),
                                                 make("a"), make("o"), make("other")};
    return *counters;
  }
};

/// Join a list with single spaces (IRRd's data format).
template <typename Range, typename Render>
std::string join(const Range& range, Render render) {
  std::string out;
  for (const auto& element : range) {
    if (!out.empty()) out.push_back(' ');
    out += render(element);
  }
  return out;
}

}  // namespace

std::optional<std::span<const ir::Asn>> QueryEngine::flat_asns(std::string_view name) const {
  if (snapshot_ != nullptr) {
    const compile::CompiledAsSet* flat = snapshot_->flattened(name);
    if (flat == nullptr) return std::nullopt;
    return flat->asns;
  }
  const irr::FlattenedAsSet* flat = index_.flattened(name);
  if (flat == nullptr) return std::nullopt;
  return std::span<const ir::Asn>(flat->asns);
}

std::string frame_response(std::string_view payload) {
  if (payload.empty()) return empty_success();
  // IRRd counts the payload bytes including the trailing newline.
  std::string data = std::string(payload);
  if (data.back() != '\n') data.push_back('\n');
  return "A" + std::to_string(data.size()) + "\n" + data + "C\n";
}

std::string QueryEngine::origin_prefixes(std::string_view arg, bool v6) const {
  auto asn = ir::parse_as_ref(trim(arg));
  if (!asn) return error("expected an AS number");
  std::span<const net::Prefix> prefixes = index_.origins_of(*asn);
  std::vector<std::string> matching;
  for (const auto& prefix : prefixes) {
    if (prefix.is_v4() != v6) matching.push_back(prefix.to_string());
  }
  if (matching.empty()) {
    // Distinguish "AS unknown to the registry" from "no prefixes of this
    // family": IRRd returns D for keys with no data at all.
    return prefixes.empty() ? not_found() : empty_success();
  }
  return frame_response(join(matching, [](const std::string& s) { return s; }));
}

std::string QueryEngine::set_members(std::string_view arg) const {
  arg = trim(arg);
  bool recursive = false;
  if (arg.size() >= 2 && arg.substr(arg.size() - 2) == ",1") {
    recursive = true;
    arg = arg.substr(0, arg.size() - 2);
  }

  if (const ir::AsSet* set = index_.as_set(arg)) {
    if (recursive) {
      const auto asns = flat_asns(arg);
      if (!asns) return not_found();
      return frame_response(
          join(*asns, [](ir::Asn asn) { return "AS" + std::to_string(asn); }));
    }
    std::vector<std::string> members;
    for (const auto& member : set->members) {
      switch (member.kind) {
        case ir::AsSetMember::Kind::kAsn:
          members.push_back("AS" + std::to_string(member.asn));
          break;
        case ir::AsSetMember::Kind::kSet:
          members.push_back(ir::to_string(member.name));
          break;
        case ir::AsSetMember::Kind::kAny:
          members.push_back("ANY");
          break;
      }
    }
    return members.empty() ? empty_success()
                           : frame_response(join(members, [](const std::string& s) {
                               return s;
                             }));
  }

  if (const ir::RouteSet* set = index_.route_set(arg)) {
    std::vector<std::string> members;
    for (const auto* list : {&set->members, &set->mp_members}) {
      for (const auto& member : *list) {
        switch (member.kind) {
          case ir::RouteSetMember::Kind::kPrefix:
            members.push_back(member.prefix.to_string());
            break;
          case ir::RouteSetMember::Kind::kRouteSet:
          case ir::RouteSetMember::Kind::kAsSet:
            members.push_back(ir::to_string(member.name) + member.op.to_string());
            break;
          case ir::RouteSetMember::Kind::kAsn:
            members.push_back("AS" + std::to_string(member.asn) + member.op.to_string());
            break;
          case ir::RouteSetMember::Kind::kAny:
            members.push_back("RS-ANY");
            break;
        }
      }
    }
    return members.empty() ? empty_success()
                           : frame_response(join(members, [](const std::string& s) {
                               return s;
                             }));
  }
  return not_found();
}

std::string QueryEngine::set_prefixes(std::string_view arg) const {
  arg = trim(arg);
  bool want_v4 = true;
  bool want_v6 = true;
  if (!arg.empty() && arg.front() == '4') {
    want_v6 = false;
    arg = trim(arg.substr(1));
  } else if (!arg.empty() && arg.front() == '6') {
    want_v4 = false;
    arg = trim(arg.substr(1));
  }
  const auto flat = flat_asns(arg);
  if (!flat) {
    // A bare ASN is also accepted (an as-set of one).
    if (auto asn = ir::parse_as_ref(arg)) {
      std::span<const net::Prefix> prefixes = index_.origins_of(*asn);
      if (prefixes.empty()) return not_found();
      std::vector<std::string> out;
      for (const auto& prefix : prefixes) {
        if ((prefix.is_v4() && want_v4) || (!prefix.is_v4() && want_v6)) {
          out.push_back(prefix.to_string());
        }
      }
      return out.empty() ? empty_success()
                         : frame_response(join(out, [](const std::string& s) { return s; }));
    }
    return not_found();
  }
  std::vector<std::string> out;
  for (ir::Asn asn : *flat) {
    for (const auto& prefix : index_.origins_of(asn)) {
      if ((prefix.is_v4() && want_v4) || (!prefix.is_v4() && want_v6)) {
        out.push_back(prefix.to_string());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out.empty() ? empty_success()
                     : frame_response(join(out, [](const std::string& s) { return s; }));
}

std::string QueryEngine::aut_num_summary(std::string_view arg) const {
  auto asn = ir::parse_as_ref(trim(arg));
  if (!asn) return error("expected an AS number");
  const ir::AutNum* an = index_.aut_num(*asn);
  if (an == nullptr) return not_found();
  std::string payload = "aut-num AS" + std::to_string(*asn) + " source " + ir::to_string(an->source) +
                        " imports " + std::to_string(an->imports.size()) + " exports " +
                        std::to_string(an->exports.size());
  return frame_response(payload);
}

std::string QueryEngine::evaluate(std::string_view line) const {
  line = trim(line);
  if (!line.empty() && line.front() == '!') line.remove_prefix(1);
  if (line.empty()) return error("empty query");
  const char op = line.front();
  std::string_view arg = line.substr(1);
  OpCounters& ops = OpCounters::get();
  switch (op) {
    case 'g':
      ops.g.inc();
      return origin_prefixes(arg, /*v6=*/false);
    case '6':
      ops.v6.inc();
      return origin_prefixes(arg, /*v6=*/true);
    case 'i':
      ops.i.inc();
      return set_members(arg);
    case 'a':
      ops.a.inc();
      return set_prefixes(arg);
    case 'o':
      ops.o.inc();
      return aut_num_summary(arg);
    default:
      ops.other.inc();
      return error("unsupported query");
  }
}

}  // namespace rpslyzer::query
