#pragma once
// Policy ASTs: peerings, actions, filters, and import/export rules.
//
// This is the heart of the intermediate representation the paper describes
// in §3: every import/export attribute is decomposed into an interpretable
// tree that the verifier evaluates and that can be exported to JSON.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rpslyzer/ir/aspath_regex.hpp"
#include "rpslyzer/net/prefix_set.hpp"
#include "rpslyzer/util/box.hpp"

namespace rpslyzer::ir {

// ---------------------------------------------------------------------------
// Address family (RFC 4012 afi specifiers: "afi ipv4.unicast", "afi any").
// ---------------------------------------------------------------------------

struct Afi {
  enum class Ip : std::uint8_t { kAny, kIpv4, kIpv6 };
  enum class Cast : std::uint8_t { kAny, kUnicast, kMulticast };

  Ip ip = Ip::kAny;
  Cast cast = Cast::kAny;

  static constexpr Afi any() noexcept { return {}; }
  static constexpr Afi ipv4_unicast() noexcept { return {Ip::kIpv4, Cast::kUnicast}; }
  static constexpr Afi ipv6_unicast() noexcept { return {Ip::kIpv6, Cast::kUnicast}; }

  /// Does a unicast route in family `f` fall under this afi?
  bool covers_unicast(net::Family f) const noexcept {
    if (cast == Cast::kMulticast) return false;
    switch (ip) {
      case Ip::kAny:
        return true;
      case Ip::kIpv4:
        return f == net::Family::kIpv4;
      case Ip::kIpv6:
        return f == net::Family::kIpv6;
    }
    return false;
  }

  std::string to_string() const;
  friend bool operator==(const Afi&, const Afi&) = default;
};

// ---------------------------------------------------------------------------
// AS expressions (the <peering> grammar's operand: ASN, as-set, AS-ANY,
// parenthesized AND/OR/EXCEPT combinations).
// ---------------------------------------------------------------------------

struct AsExpr;
using AsExprBox = util::Box<AsExpr>;

struct AsExprAsn {
  Asn asn = 0;
  friend bool operator==(const AsExprAsn&, const AsExprAsn&) = default;
};
struct AsExprSet {
  std::string name;  // as-set name, possibly hierarchical (AS1:AS-FOO)
  friend bool operator==(const AsExprSet&, const AsExprSet&) = default;
};
struct AsExprAny {  // AS-ANY / ANY
  friend bool operator==(const AsExprAny&, const AsExprAny&) = default;
};
struct AsExprAnd {
  AsExprBox left, right;
  friend bool operator==(const AsExprAnd&, const AsExprAnd&) = default;
};
struct AsExprOr {
  AsExprBox left, right;
  friend bool operator==(const AsExprOr&, const AsExprOr&) = default;
};
struct AsExprExcept {
  AsExprBox left, right;
  friend bool operator==(const AsExprExcept&, const AsExprExcept&) = default;
};

struct AsExpr {
  std::variant<AsExprAsn, AsExprSet, AsExprAny, AsExprAnd, AsExprOr, AsExprExcept> node;
  friend bool operator==(const AsExpr&, const AsExpr&) = default;
};

std::string to_string(const AsExpr& e);

// ---------------------------------------------------------------------------
// Peerings.
// ---------------------------------------------------------------------------

/// <peering> ::= <as-expression> [<mp-router-expr-1>] [at <mp-router-expr-2>]
///             | <peering-set-name>
/// Router expressions identify concrete BGP sessions; route verification
/// against AS-level BGP paths cannot see routers, so we keep them as parsed
/// text for export/inspection but do not constrain matching on them (same
/// choice the paper makes implicitly by verifying AS pairs).
struct PeeringSpec {
  AsExpr as_expr;
  std::string remote_router;  // textual router expression, may be empty
  std::string local_router;   // after "at", may be empty
  friend bool operator==(const PeeringSpec&, const PeeringSpec&) = default;
};

struct PeeringSetRef {
  std::string name;  // prng-... set name
  friend bool operator==(const PeeringSetRef&, const PeeringSetRef&) = default;
};

struct Peering {
  std::variant<PeeringSpec, PeeringSetRef> node;
  friend bool operator==(const Peering&, const Peering&) = default;
};

std::string to_string(const Peering& p);

// ---------------------------------------------------------------------------
// Actions ("action pref=200; community .= {64628:20};").
// ---------------------------------------------------------------------------

/// One action statement. We keep actions structured enough to answer the
/// paper's characterization questions (which attribute, which operator)
/// without interpreting arithmetic — verification never needs action
/// semantics, only filters and peerings.
struct Action {
  enum class Kind : std::uint8_t {
    kAssign,      // attr <op> value, e.g. pref = 200, community .= {...}
    kMethodCall,  // attr.method(args), e.g. community.delete(a, b)
  };
  Kind kind = Kind::kAssign;
  std::string attribute;  // "pref", "med", "community", "aspath", ...
  std::string op;         // "=", ".=", "+=", ... (kAssign only)
  std::string method;     // "append", "delete", ... (kMethodCall only)
  std::string value;      // raw right-hand side or argument list text

  friend bool operator==(const Action&, const Action&) = default;
};

std::string to_string(const Action& a);

// ---------------------------------------------------------------------------
// Filters.
// ---------------------------------------------------------------------------

struct Filter;
using FilterBox = util::Box<Filter>;

struct FilterAny {  // ANY
  friend bool operator==(const FilterAny&, const FilterAny&) = default;
};
struct FilterPeerAs {  // PeerAS: prefixes originated by the session neighbor
  friend bool operator==(const FilterPeerAs&, const FilterPeerAs&) = default;
};
struct FilterFltrMartian {  // fltr-martian built-in
  friend bool operator==(const FilterFltrMartian&, const FilterFltrMartian&) = default;
};
struct FilterAsNum {  // AS64500^+ : prefixes of route objects with that origin
  Asn asn = 0;
  net::RangeOp op;
  friend bool operator==(const FilterAsNum&, const FilterAsNum&) = default;
};
struct FilterAsSet {  // AS-FOO^- : prefixes originated by members
  std::string name;
  net::RangeOp op;
  friend bool operator==(const FilterAsSet&, const FilterAsSet&) = default;
};
struct FilterRouteSet {  // RS-BAR^+ (range op on a set is the non-standard
  std::string name;      // syntax the paper supports, Appendix B)
  net::RangeOp op;
  friend bool operator==(const FilterRouteSet&, const FilterRouteSet&) = default;
};
struct FilterFilterSet {  // fltr-... reference
  std::string name;
  friend bool operator==(const FilterFilterSet&, const FilterFilterSet&) = default;
};
struct FilterPrefixes {  // { 1.2.3.0/24^+, ... } with optional set-level op
  net::PrefixSet prefixes;
  net::RangeOp op;  // operator applied to the whole set (rare; paper skips)
  friend bool operator==(const FilterPrefixes&, const FilterPrefixes&) = default;
};
struct FilterAsPath {  // <^AS1 .* AS2$>
  AsPathRegex regex;
  friend bool operator==(const FilterAsPath&, const FilterAsPath&) = default;
};
struct FilterCommunity {  // community(65535:666) / community.contains(...)
  std::string method;     // empty for community(...), else method name
  std::vector<std::string> args;
  friend bool operator==(const FilterCommunity&, const FilterCommunity&) = default;
};
struct FilterAnd {
  FilterBox left, right;
  friend bool operator==(const FilterAnd&, const FilterAnd&) = default;
};
struct FilterOr {
  FilterBox left, right;
  friend bool operator==(const FilterOr&, const FilterOr&) = default;
};
struct FilterNot {
  FilterBox inner;
  friend bool operator==(const FilterNot&, const FilterNot&) = default;
};
struct FilterUnknown {  // unparseable text; recorded, evaluated as Skip
  std::string text;
  friend bool operator==(const FilterUnknown&, const FilterUnknown&) = default;
};

struct Filter {
  std::variant<FilterAny, FilterPeerAs, FilterFltrMartian, FilterAsNum, FilterAsSet,
               FilterRouteSet, FilterFilterSet, FilterPrefixes, FilterAsPath, FilterCommunity,
               FilterAnd, FilterOr, FilterNot, FilterUnknown>
      node;
  friend bool operator==(const Filter&, const Filter&) = default;
};

std::string to_string(const Filter& f);

// ---------------------------------------------------------------------------
// Rules (import/export attributes) and Structured Policy (RFC 2622 §6.6).
// ---------------------------------------------------------------------------

struct PeeringAction {
  Peering peering;
  std::vector<Action> actions;
  friend bool operator==(const PeeringAction&, const PeeringAction&) = default;
};

/// An import/export *factor* (RFC 2622 §6): one or more "from/to <peering>
/// [action ...]" clauses sharing a single accept/announce filter.
struct PolicyFactor {
  std::vector<PeeringAction> peerings;
  Filter filter;
  friend bool operator==(const PolicyFactor&, const PolicyFactor&) = default;
};

struct Entry;
using EntryBox = util::Box<Entry>;

/// An import/export *term*: a single factor, or a brace-enclosed sequence of
/// factors `{ factor; factor; ... }`.
struct EntryTerm {
  std::vector<PolicyFactor> factors;
  friend bool operator==(const EntryTerm&, const EntryTerm&) = default;
};

/// Structured Policy combinators (RFC 2622 §6.6). Right-recursive per the
/// RFC grammar: <term> EXCEPT <expression>. Both operands carry their own
/// afi lists (RFC 4012 puts an afi list before each block).
struct EntryRefine {
  EntryBox left, right;
  friend bool operator==(const EntryRefine&, const EntryRefine&) = default;
};
struct EntryExcept {
  EntryBox left, right;
  friend bool operator==(const EntryExcept&, const EntryExcept&) = default;
};

struct Entry {
  /// afi specifiers preceding this term ("afi ipv4.unicast, ipv6.unicast").
  /// Empty = unspecified: plain import/export means IPv4 unicast, the mp-
  /// variants default to any (RFC 4012).
  std::vector<Afi> afis;
  std::variant<EntryTerm, EntryRefine, EntryExcept> node;

  /// Does any afi of this entry cover a unicast route in family `f`?
  /// `mp` tells how to interpret an empty afi list.
  bool covers_unicast(net::Family f, bool mp) const noexcept {
    if (afis.empty()) return mp || f == net::Family::kIpv4;
    for (const auto& afi : afis) {
      if (afi.covers_unicast(f)) return true;
    }
    return false;
  }

  friend bool operator==(const Entry&, const Entry&) = default;
};

std::string to_string(const Entry& e, bool is_import);

/// One import/export (or mp-import/mp-export) attribute of an aut-num.
struct Rule {
  enum class Direction : std::uint8_t { kImport, kExport };
  Direction direction = Direction::kImport;
  bool mp = false;        // declared with the multiprotocol attribute name
  std::string protocol;   // "protocol <p>" qualifier, if present
  std::string into;       // "into <p>" qualifier, if present
  Entry entry;            // the (possibly structured) policy expression
  std::string text;       // original attribute value, for reports

  bool is_import() const noexcept { return direction == Direction::kImport; }
  friend bool operator==(const Rule& a, const Rule& b) {
    return a.direction == b.direction && a.mp == b.mp && a.protocol == b.protocol &&
           a.into == b.into && a.entry == b.entry;
  }
};

std::string to_string(const Rule& r);

}  // namespace rpslyzer::ir
