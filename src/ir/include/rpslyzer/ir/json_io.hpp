#pragma once
// JSON (de)serialization of the intermediate representation.
//
// The paper's tool "can export [the IR] to JSON files for integration with
// other tools that leverage RPSL information" (§3). The format here is a
// stable, self-describing schema; `from_json` round-trips everything
// `to_json` emits (property-tested).

#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/json/json.hpp"

namespace rpslyzer::ir {

json::Value to_json(const Afi& v);
json::Value to_json(const AsExpr& v);
json::Value to_json(const Peering& v);
json::Value to_json(const Action& v);
json::Value to_json(const AsPathRegexNode& v);
json::Value to_json(const AsPathRegex& v);
json::Value to_json(const Filter& v);
json::Value to_json(const Entry& v);
json::Value to_json(const Rule& v);
json::Value to_json(const AutNum& v);
json::Value to_json(const AsSet& v);
json::Value to_json(const RouteSet& v);
json::Value to_json(const PeeringSet& v);
json::Value to_json(const FilterSet& v);
json::Value to_json(const RouteObject& v);
json::Value to_json(const Ir& v);

Afi afi_from_json(const json::Value& v);
AsExpr as_expr_from_json(const json::Value& v);
Peering peering_from_json(const json::Value& v);
Action action_from_json(const json::Value& v);
AsPathRegex aspath_regex_from_json(const json::Value& v);
Filter filter_from_json(const json::Value& v);
Entry entry_from_json(const json::Value& v);
Rule rule_from_json(const json::Value& v);
AutNum aut_num_from_json(const json::Value& v);
AsSet as_set_from_json(const json::Value& v);
RouteSet route_set_from_json(const json::Value& v);
PeeringSet peering_set_from_json(const json::Value& v);
FilterSet filter_set_from_json(const json::Value& v);
RouteObject route_object_from_json(const json::Value& v);
Ir ir_from_json(const json::Value& v);

}  // namespace rpslyzer::ir
