#pragma once
// AST for RPSL AS-path regular expressions (RFC 2622 §5.6 "Filters" /
// POSIX-style AS regexps such as <^AS13911 AS6327+$>).
//
// Tokens range over ASNs, AS-sets, the wildcard '.', the dynamic PeerAS
// keyword, ASN ranges, and character-class style sets `[AS1 AS2-AS5 AS-FOO]`
// with optional complement `[^...]`. Unary postfix operators are *, +, ?,
// {m}, {m,n}, {m,} and their "same pattern" tilde variants (~*, ~+, ...).
// The tilde variants require every repetition to match the *same* token,
// which the paper lists among the constructs it skips (Appendix B); we parse
// them and let the engine decide whether to evaluate or skip.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rpslyzer/util/box.hpp"

namespace rpslyzer::ir {

using Asn = std::uint32_t;

/// One atom inside a character-class set.
struct ReSetItem {
  enum class Kind : std::uint8_t { kAsn, kAsnRange, kAsSet, kPeerAs };
  Kind kind = Kind::kAsn;
  Asn asn = 0;          // kAsn; kAsnRange lower bound
  Asn asn_hi = 0;       // kAsnRange upper bound
  std::string as_set;   // kAsSet

  friend bool operator==(const ReSetItem&, const ReSetItem&) = default;
};

/// A single AS-matching token.
struct ReToken {
  enum class Kind : std::uint8_t {
    kAsn,      // AS64500
    kAsSet,    // AS-FOO (matches any member)
    kAny,      // .
    kPeerAs,   // PeerAS (bound to the neighbor at evaluation time)
    kSet,      // [ ... ] possibly complemented
  };
  Kind kind = Kind::kAny;
  Asn asn = 0;
  std::string as_set;
  bool complemented = false;        // kSet: [^ ... ]
  std::vector<ReSetItem> items;     // kSet members

  friend bool operator==(const ReToken&, const ReToken&) = default;
};

struct AsPathRegexNode;
using AsPathRegexBox = util::Box<AsPathRegexNode>;

/// Postfix repetition operator.
struct ReRepeat {
  std::uint32_t min = 0;
  std::optional<std::uint32_t> max;  // nullopt = unbounded
  bool same_pattern = false;         // tilde variant (~*, ~+, ~{m,n})

  friend bool operator==(const ReRepeat&, const ReRepeat&) = default;
};

/// Regex AST node.
struct ReEmpty {
  friend bool operator==(const ReEmpty&, const ReEmpty&) = default;
};
struct ReTokenNode {
  ReToken token;
  friend bool operator==(const ReTokenNode&, const ReTokenNode&) = default;
};
struct ReBeginAnchor {
  friend bool operator==(const ReBeginAnchor&, const ReBeginAnchor&) = default;
};
struct ReEndAnchor {
  friend bool operator==(const ReEndAnchor&, const ReEndAnchor&) = default;
};
struct ReConcat {
  std::vector<AsPathRegexBox> parts;
  friend bool operator==(const ReConcat&, const ReConcat&) = default;
};
struct ReAlt {
  std::vector<AsPathRegexBox> options;
  friend bool operator==(const ReAlt&, const ReAlt&) = default;
};
struct ReRepeatNode {
  AsPathRegexBox inner;
  ReRepeat repeat;
  friend bool operator==(const ReRepeatNode&, const ReRepeatNode&) = default;
};

struct AsPathRegexNode {
  std::variant<ReEmpty, ReTokenNode, ReBeginAnchor, ReEndAnchor, ReConcat, ReAlt, ReRepeatNode>
      node;
  friend bool operator==(const AsPathRegexNode&, const AsPathRegexNode&) = default;
};

/// A full AS-path regex as written in a filter (`<...>`), keeping the source
/// text for diagnostics and reports.
struct AsPathRegex {
  AsPathRegexBox root;
  std::string text;

  friend bool operator==(const AsPathRegex& a, const AsPathRegex& b) {
    return a.root == b.root;  // text is cosmetic
  }
};

/// True if the regex uses constructs the paper's tool skips (ASN ranges or
/// same-pattern repetition), so the verifier can classify the rule as Skip.
bool uses_skipped_constructs(const AsPathRegex& regex);

/// Render the AST back to (normalized) regex text.
std::string to_string(const AsPathRegexNode& node);
std::string to_string(const AsPathRegex& regex);

}  // namespace rpslyzer::ir
