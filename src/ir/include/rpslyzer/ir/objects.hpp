#pragma once
// RPSL object classes RPSLyzer models (§3): aut-num, as-set, route-set,
// peering-set, filter-set, and route/route6, plus the Ir container that
// aggregates a parsed corpus.

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "rpslyzer/ir/policy.hpp"
#include "rpslyzer/net/prefix_set.hpp"
#include "rpslyzer/util/interner.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::ir {

/// High-churn IR name fields (set names, maintainer references, sources)
/// are interned into the process-wide exact-mode symbol table instead of
/// carrying their own std::string: the same spelling always maps to the
/// same u32, so object copies, merges and equality checks stop touching
/// string bytes entirely. Exact ids preserve byte-level `operator==`
/// semantics; case-insensitive comparison goes through `canon`.
using Symbol = util::Symbol;

/// The process-wide table backing ir::Symbol.
inline util::SymbolTable& symbols() { return util::global_symbols(); }

/// Intern a spelling (idempotent, thread-safe).
inline Symbol sym(std::string_view s) { return symbols().intern(s); }

/// The interned spelling; valid for the process lifetime.
inline std::string_view sym_view(Symbol s) noexcept { return symbols().view(s); }

/// Owning copy of the spelling — the escape hatch that keeps JSON, wire
/// codecs and reports byte-identical to the std::string era.
inline std::string to_string(Symbol s) { return std::string(sym_view(s)); }

/// Case-insensitive symbol equality (RPSL names, RFC 2622 §2).
inline bool sym_iequals(Symbol a, Symbol b) noexcept {
  return symbols().canon(a) == symbols().canon(b);
}

/// Intern every element of a string list (parser helper).
inline std::vector<Symbol> sym_all(const std::vector<std::string>& v) {
  std::vector<Symbol> out;
  out.reserve(v.size());
  for (const auto& s : v) out.push_back(sym(s));
  return out;
}

/// aut-num: an AS's policies. `imports`/`exports` hold every (mp-)import/
/// (mp-)export attribute in declaration order, which matters for reports.
struct AutNum {
  Asn asn = 0;
  Symbol as_name;                    // as-name attribute
  std::vector<Rule> imports;
  std::vector<Rule> exports;
  std::vector<Symbol> member_of;     // as-sets joined via mbrs-by-ref
  std::vector<Symbol> mnt_by;
  Symbol source;                     // IRR this definition was taken from

  friend bool operator==(const AutNum&, const AutNum&) = default;
};

/// One member of an as-set: a plain ASN, another set's name, or the
/// (erroneous but observed, §4) keyword ANY.
struct AsSetMember {
  enum class Kind : std::uint8_t { kAsn, kSet, kAny };
  Kind kind = Kind::kAsn;
  Asn asn = 0;
  Symbol name;

  static AsSetMember of_asn(Asn a) { return {Kind::kAsn, a, {}}; }
  static AsSetMember of_set(Symbol n) { return {Kind::kSet, 0, n}; }
  static AsSetMember any() { return {Kind::kAny, 0, {}}; }

  friend bool operator==(const AsSetMember&, const AsSetMember&) = default;
};

struct AsSet {
  Symbol name;
  std::vector<AsSetMember> members;
  std::vector<Symbol> mbrs_by_ref;  // maintainer names, or "ANY"
  std::vector<Symbol> mnt_by;
  Symbol source;

  friend bool operator==(const AsSet&, const AsSet&) = default;
};

/// One member of a route-set: an address prefix (with optional range op), or
/// a reference to a route-set / as-set / ASN, optionally with a range
/// operator applied to the whole referenced set, or RS-ANY/AS-ANY.
struct RouteSetMember {
  enum class Kind : std::uint8_t { kPrefix, kRouteSet, kAsSet, kAsn, kAny };
  Kind kind = Kind::kPrefix;
  net::PrefixRange prefix;  // kPrefix
  Symbol name;              // kRouteSet / kAsSet
  Asn asn = 0;              // kAsn
  net::RangeOp op;          // operator on the reference (kRouteSet/kAsSet/kAsn)

  friend bool operator==(const RouteSetMember&, const RouteSetMember&) = default;
};

struct RouteSet {
  Symbol name;
  std::vector<RouteSetMember> members;      // from members:
  std::vector<RouteSetMember> mp_members;   // from mp-members: (IPv6)
  std::vector<Symbol> mbrs_by_ref;
  std::vector<Symbol> mnt_by;
  Symbol source;

  friend bool operator==(const RouteSet&, const RouteSet&) = default;
};

struct PeeringSet {
  Symbol name;
  std::vector<Peering> peerings;     // peering: attributes
  std::vector<Peering> mp_peerings;  // mp-peering: attributes
  Symbol source;

  friend bool operator==(const PeeringSet&, const PeeringSet&) = default;
};

struct FilterSet {
  Symbol name;
  Filter filter;      // filter: attribute
  Filter mp_filter;   // mp-filter: attribute (FilterUnknown{} when absent)
  bool has_filter = false;
  bool has_mp_filter = false;
  Symbol source;

  friend bool operator==(const FilterSet&, const FilterSet&) = default;
};

/// route / route6: a prefix-origin registration.
struct RouteObject {
  net::Prefix prefix;
  Asn origin = 0;
  std::vector<Symbol> member_of;  // route-sets joined via mbrs-by-ref
  std::vector<Symbol> mnt_by;
  Symbol source;

  friend bool operator==(const RouteObject&, const RouteObject&) = default;
};

/// Case-insensitive name → object map (RPSL names are case-insensitive).
template <typename T>
using NameMap = std::map<std::string, T, util::ILess>;

/// The intermediate representation of a full corpus: every routing-related
/// object from one or more IRRs after merge. Mirrors the Rust `Ir` struct
/// the paper exports (§3, footnote 2).
struct Ir {
  std::map<Asn, AutNum> aut_nums;
  NameMap<AsSet> as_sets;
  NameMap<RouteSet> route_sets;
  NameMap<PeeringSet> peering_sets;
  NameMap<FilterSet> filter_sets;
  std::vector<RouteObject> routes;

  std::size_t object_count() const noexcept {
    return aut_nums.size() + as_sets.size() + route_sets.size() + peering_sets.size() +
           filter_sets.size() + routes.size();
  }

  friend bool operator==(const Ir&, const Ir&) = default;
};

/// RFC 2622 set-name validity: an as-set name is a colon-separated sequence
/// of components, at least one of which must start with "AS-"; the others
/// may be plain AS numbers (hierarchical names, e.g. "AS1:AS-CUSTOMERS").
bool valid_as_set_name(std::string_view name);

/// Same for route-sets with the "RS-" prefix.
bool valid_route_set_name(std::string_view name);

/// peering-set names use "PRNG-", filter-set names use "FLTR-".
bool valid_peering_set_name(std::string_view name);
bool valid_filter_set_name(std::string_view name);

/// Parse "AS1234" (case-insensitive) into an ASN.
std::optional<Asn> parse_as_ref(std::string_view text) noexcept;

}  // namespace rpslyzer::ir
