#include "rpslyzer/ir/json_io.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::ir {

namespace {

using json::Array;
using json::JsonError;
using json::Object;
using json::Value;
using util::overloaded;

Value strings_to_json(const std::vector<std::string>& v) {
  Array a;
  a.reserve(v.size());
  for (const auto& s : v) a.emplace_back(s);
  return Value(std::move(a));
}

std::vector<std::string> strings_from_json(const Value& v) {
  std::vector<std::string> out;
  for (const auto& e : v.as_array()) out.push_back(e.as_string());
  return out;
}

/// Symbol lists serialize exactly like the std::string lists they replaced:
/// the exact interned spelling, in order.
Value symbols_to_json(const std::vector<Symbol>& v) {
  Array a;
  a.reserve(v.size());
  for (const Symbol s : v) a.emplace_back(std::string(sym_view(s)));
  return Value(std::move(a));
}

std::vector<Symbol> symbols_from_json(const Value& v) {
  std::vector<Symbol> out;
  for (const auto& e : v.as_array()) out.push_back(sym(e.as_string()));
  return out;
}

Value range_op_to_json(const net::RangeOp& op) {
  // Compact text encoding: "", "-", "+", "n", "n-m".
  switch (op.kind) {
    case net::RangeOp::Kind::kNone:
      return Value("");
    case net::RangeOp::Kind::kMinus:
      return Value("-");
    case net::RangeOp::Kind::kPlus:
      return Value("+");
    case net::RangeOp::Kind::kExact:
      return Value(std::to_string(op.n));
    case net::RangeOp::Kind::kRange:
      return Value(std::to_string(op.n) + "-" + std::to_string(op.m));
  }
  return Value("");
}

net::RangeOp range_op_from_json(const Value& v) {
  const std::string& s = v.as_string();
  if (s.empty()) return net::RangeOp::none();
  auto parsed = net::RangeOp::parse(s);
  if (!parsed) throw JsonError("bad range op: " + s);
  return *parsed;
}

Value prefix_range_to_json(const net::PrefixRange& r) {
  Object o;
  o["prefix"] = Value(r.prefix.to_string());
  o["op"] = range_op_to_json(r.op);
  return Value(std::move(o));
}

net::PrefixRange prefix_range_from_json(const Value& v) {
  auto prefix = net::Prefix::parse(v.at("prefix").as_string());
  if (!prefix) throw JsonError("bad prefix: " + v.at("prefix").as_string());
  return net::PrefixRange{*prefix, range_op_from_json(v.at("op"))};
}

Value tagged(std::string_view type) {
  Object o;
  o["type"] = Value(type);
  return Value(std::move(o));
}

}  // namespace

// ---------------------------------------------------------------------------
// Afi
// ---------------------------------------------------------------------------

json::Value to_json(const Afi& v) { return Value(v.to_string()); }

Afi afi_from_json(const Value& v) {
  const std::string& s = v.as_string();
  Afi afi;
  auto dot = s.find('.');
  std::string_view ip = dot == std::string::npos ? std::string_view(s)
                                                 : std::string_view(s).substr(0, dot);
  if (util::iequals(ip, "any")) {
    afi.ip = Afi::Ip::kAny;
  } else if (util::iequals(ip, "ipv4")) {
    afi.ip = Afi::Ip::kIpv4;
  } else if (util::iequals(ip, "ipv6")) {
    afi.ip = Afi::Ip::kIpv6;
  } else {
    throw JsonError("bad afi: " + s);
  }
  if (dot != std::string::npos) {
    std::string_view cast = std::string_view(s).substr(dot + 1);
    if (util::iequals(cast, "unicast")) {
      afi.cast = Afi::Cast::kUnicast;
    } else if (util::iequals(cast, "multicast")) {
      afi.cast = Afi::Cast::kMulticast;
    } else if (util::iequals(cast, "any")) {
      afi.cast = Afi::Cast::kAny;
    } else {
      throw JsonError("bad afi cast: " + s);
    }
  }
  return afi;
}

// ---------------------------------------------------------------------------
// AsExpr / Peering
// ---------------------------------------------------------------------------

json::Value to_json(const AsExpr& v) {
  return std::visit(
      overloaded{
          [](const AsExprAsn& a) {
            Value o = tagged("asn");
            o["asn"] = Value(std::uint64_t{a.asn});
            return o;
          },
          [](const AsExprSet& s) {
            Value o = tagged("as-set");
            o["name"] = Value(s.name);
            return o;
          },
          [](const AsExprAny&) { return tagged("any"); },
          [](const AsExprAnd& n) {
            Value o = tagged("and");
            o["left"] = to_json(*n.left);
            o["right"] = to_json(*n.right);
            return o;
          },
          [](const AsExprOr& n) {
            Value o = tagged("or");
            o["left"] = to_json(*n.left);
            o["right"] = to_json(*n.right);
            return o;
          },
          [](const AsExprExcept& n) {
            Value o = tagged("except");
            o["left"] = to_json(*n.left);
            o["right"] = to_json(*n.right);
            return o;
          },
      },
      v.node);
}

AsExpr as_expr_from_json(const Value& v) {
  const std::string& type = v.at("type").as_string();
  if (type == "asn") return {AsExprAsn{static_cast<Asn>(v.at("asn").as_int())}};
  if (type == "as-set") return {AsExprSet{v.at("name").as_string()}};
  if (type == "any") return {AsExprAny{}};
  if (type == "and")
    return {AsExprAnd{as_expr_from_json(v.at("left")), as_expr_from_json(v.at("right"))}};
  if (type == "or")
    return {AsExprOr{as_expr_from_json(v.at("left")), as_expr_from_json(v.at("right"))}};
  if (type == "except")
    return {AsExprExcept{as_expr_from_json(v.at("left")), as_expr_from_json(v.at("right"))}};
  throw JsonError("bad as-expr type: " + type);
}

json::Value to_json(const Peering& v) {
  return std::visit(overloaded{
                        [](const PeeringSpec& s) {
                          Value o = tagged("spec");
                          o["as-expr"] = to_json(s.as_expr);
                          if (!s.remote_router.empty()) o["remote-router"] = Value(s.remote_router);
                          if (!s.local_router.empty()) o["local-router"] = Value(s.local_router);
                          return o;
                        },
                        [](const PeeringSetRef& r) {
                          Value o = tagged("peering-set");
                          o["name"] = Value(r.name);
                          return o;
                        },
                    },
                    v.node);
}

Peering peering_from_json(const Value& v) {
  const std::string& type = v.at("type").as_string();
  if (type == "spec") {
    PeeringSpec s;
    s.as_expr = as_expr_from_json(v.at("as-expr"));
    if (const auto* r = v.find("remote-router")) s.remote_router = r->as_string();
    if (const auto* l = v.find("local-router")) s.local_router = l->as_string();
    return {std::move(s)};
  }
  if (type == "peering-set") return {PeeringSetRef{v.at("name").as_string()}};
  throw JsonError("bad peering type: " + type);
}

json::Value to_json(const Action& v) {
  Object o;
  o["kind"] = Value(v.kind == Action::Kind::kAssign ? "assign" : "call");
  o["attribute"] = Value(v.attribute);
  if (v.kind == Action::Kind::kAssign) {
    o["op"] = Value(v.op);
  } else {
    o["method"] = Value(v.method);
  }
  o["value"] = Value(v.value);
  return Value(std::move(o));
}

Action action_from_json(const Value& v) {
  Action a;
  const std::string& kind = v.at("kind").as_string();
  a.kind = kind == "assign" ? Action::Kind::kAssign : Action::Kind::kMethodCall;
  a.attribute = v.at("attribute").as_string();
  if (const auto* op = v.find("op")) a.op = op->as_string();
  if (const auto* m = v.find("method")) a.method = m->as_string();
  a.value = v.at("value").as_string();
  return a;
}

// ---------------------------------------------------------------------------
// AS-path regex
// ---------------------------------------------------------------------------

namespace {

Value set_item_to_json(const ReSetItem& item) {
  Object o;
  switch (item.kind) {
    case ReSetItem::Kind::kAsn:
      o["type"] = Value("asn");
      o["asn"] = Value(std::uint64_t{item.asn});
      break;
    case ReSetItem::Kind::kAsnRange:
      o["type"] = Value("asn-range");
      o["lo"] = Value(std::uint64_t{item.asn});
      o["hi"] = Value(std::uint64_t{item.asn_hi});
      break;
    case ReSetItem::Kind::kAsSet:
      o["type"] = Value("as-set");
      o["name"] = Value(item.as_set);
      break;
    case ReSetItem::Kind::kPeerAs:
      o["type"] = Value("peeras");
      break;
  }
  return Value(std::move(o));
}

ReSetItem set_item_from_json(const Value& v) {
  const std::string& type = v.at("type").as_string();
  ReSetItem item;
  if (type == "asn") {
    item.kind = ReSetItem::Kind::kAsn;
    item.asn = static_cast<Asn>(v.at("asn").as_int());
  } else if (type == "asn-range") {
    item.kind = ReSetItem::Kind::kAsnRange;
    item.asn = static_cast<Asn>(v.at("lo").as_int());
    item.asn_hi = static_cast<Asn>(v.at("hi").as_int());
  } else if (type == "as-set") {
    item.kind = ReSetItem::Kind::kAsSet;
    item.as_set = v.at("name").as_string();
  } else if (type == "peeras") {
    item.kind = ReSetItem::Kind::kPeerAs;
  } else {
    throw JsonError("bad regex set item: " + type);
  }
  return item;
}

Value re_token_to_json(const ReToken& t) {
  Object o;
  switch (t.kind) {
    case ReToken::Kind::kAsn:
      o["type"] = Value("asn");
      o["asn"] = Value(std::uint64_t{t.asn});
      break;
    case ReToken::Kind::kAsSet:
      o["type"] = Value("as-set");
      o["name"] = Value(t.as_set);
      break;
    case ReToken::Kind::kAny:
      o["type"] = Value("any");
      break;
    case ReToken::Kind::kPeerAs:
      o["type"] = Value("peeras");
      break;
    case ReToken::Kind::kSet: {
      o["type"] = Value("set");
      o["complemented"] = Value(t.complemented);
      Array items;
      for (const auto& item : t.items) items.push_back(set_item_to_json(item));
      o["items"] = Value(std::move(items));
      break;
    }
  }
  return Value(std::move(o));
}

ReToken re_token_from_json(const Value& v) {
  const std::string& type = v.at("type").as_string();
  ReToken t;
  if (type == "asn") {
    t.kind = ReToken::Kind::kAsn;
    t.asn = static_cast<Asn>(v.at("asn").as_int());
  } else if (type == "as-set") {
    t.kind = ReToken::Kind::kAsSet;
    t.as_set = v.at("name").as_string();
  } else if (type == "any") {
    t.kind = ReToken::Kind::kAny;
  } else if (type == "peeras") {
    t.kind = ReToken::Kind::kPeerAs;
  } else if (type == "set") {
    t.kind = ReToken::Kind::kSet;
    t.complemented = v.at("complemented").as_bool();
    for (const auto& item : v.at("items").as_array()) t.items.push_back(set_item_from_json(item));
  } else {
    throw JsonError("bad regex token: " + type);
  }
  return t;
}

AsPathRegexNode re_node_from_json(const Value& v);

}  // namespace

json::Value to_json(const AsPathRegexNode& v) {
  return std::visit(
      overloaded{
          [](const ReEmpty&) { return tagged("empty"); },
          [](const ReBeginAnchor&) { return tagged("begin"); },
          [](const ReEndAnchor&) { return tagged("end"); },
          [](const ReTokenNode& t) {
            Value o = tagged("token");
            o["token"] = re_token_to_json(t.token);
            return o;
          },
          [](const ReConcat& c) {
            Value o = tagged("concat");
            Array parts;
            for (const auto& p : c.parts) parts.push_back(to_json(*p));
            o["parts"] = Value(std::move(parts));
            return o;
          },
          [](const ReAlt& a) {
            Value o = tagged("alt");
            Array options;
            for (const auto& p : a.options) options.push_back(to_json(*p));
            o["options"] = Value(std::move(options));
            return o;
          },
          [](const ReRepeatNode& r) {
            Value o = tagged("repeat");
            o["inner"] = to_json(*r.inner);
            o["min"] = Value(std::uint64_t{r.repeat.min});
            if (r.repeat.max) o["max"] = Value(std::uint64_t{*r.repeat.max});
            o["same-pattern"] = Value(r.repeat.same_pattern);
            return o;
          },
      },
      v.node);
}

namespace {

AsPathRegexNode re_node_from_json(const Value& v) {
  const std::string& type = v.at("type").as_string();
  if (type == "empty") return {ReEmpty{}};
  if (type == "begin") return {ReBeginAnchor{}};
  if (type == "end") return {ReEndAnchor{}};
  if (type == "token") return {ReTokenNode{re_token_from_json(v.at("token"))}};
  if (type == "concat") {
    ReConcat c;
    for (const auto& p : v.at("parts").as_array()) c.parts.emplace_back(re_node_from_json(p));
    return {std::move(c)};
  }
  if (type == "alt") {
    ReAlt a;
    for (const auto& p : v.at("options").as_array()) a.options.emplace_back(re_node_from_json(p));
    return {std::move(a)};
  }
  if (type == "repeat") {
    ReRepeatNode r;
    *r.inner = re_node_from_json(v.at("inner"));
    r.repeat.min = static_cast<std::uint32_t>(v.at("min").as_int());
    if (const auto* max = v.find("max")) r.repeat.max = static_cast<std::uint32_t>(max->as_int());
    r.repeat.same_pattern = v.at("same-pattern").as_bool();
    return {std::move(r)};
  }
  throw JsonError("bad regex node: " + type);
}

}  // namespace

json::Value to_json(const AsPathRegex& v) {
  Object o;
  o["root"] = to_json(*v.root);
  o["text"] = Value(v.text);
  return Value(std::move(o));
}

AsPathRegex aspath_regex_from_json(const Value& v) {
  AsPathRegex r;
  *r.root = re_node_from_json(v.at("root"));
  r.text = v.at("text").as_string();
  return r;
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

json::Value to_json(const Filter& v) {
  return std::visit(
      overloaded{
          [](const FilterAny&) { return tagged("any"); },
          [](const FilterPeerAs&) { return tagged("peeras"); },
          [](const FilterFltrMartian&) { return tagged("fltr-martian"); },
          [](const FilterAsNum& n) {
            Value o = tagged("asn");
            o["asn"] = Value(std::uint64_t{n.asn});
            o["op"] = range_op_to_json(n.op);
            return o;
          },
          [](const FilterAsSet& s) {
            Value o = tagged("as-set");
            o["name"] = Value(s.name);
            o["op"] = range_op_to_json(s.op);
            return o;
          },
          [](const FilterRouteSet& s) {
            Value o = tagged("route-set");
            o["name"] = Value(s.name);
            o["op"] = range_op_to_json(s.op);
            return o;
          },
          [](const FilterFilterSet& s) {
            Value o = tagged("filter-set");
            o["name"] = Value(s.name);
            return o;
          },
          [](const FilterPrefixes& p) {
            Value o = tagged("prefixes");
            Array ranges;
            for (const auto& r : p.prefixes.ranges()) ranges.push_back(prefix_range_to_json(r));
            o["ranges"] = Value(std::move(ranges));
            o["op"] = range_op_to_json(p.op);
            return o;
          },
          [](const FilterAsPath& p) {
            Value o = tagged("as-path");
            o["regex"] = to_json(p.regex);
            return o;
          },
          [](const FilterCommunity& c) {
            Value o = tagged("community");
            o["method"] = Value(c.method);
            o["args"] = strings_to_json(c.args);
            return o;
          },
          [](const FilterAnd& n) {
            Value o = tagged("and");
            o["left"] = to_json(*n.left);
            o["right"] = to_json(*n.right);
            return o;
          },
          [](const FilterOr& n) {
            Value o = tagged("or");
            o["left"] = to_json(*n.left);
            o["right"] = to_json(*n.right);
            return o;
          },
          [](const FilterNot& n) {
            Value o = tagged("not");
            o["inner"] = to_json(*n.inner);
            return o;
          },
          [](const FilterUnknown& u) {
            Value o = tagged("unknown");
            o["text"] = Value(u.text);
            return o;
          },
      },
      v.node);
}

Filter filter_from_json(const Value& v) {
  const std::string& type = v.at("type").as_string();
  if (type == "any") return {FilterAny{}};
  if (type == "peeras") return {FilterPeerAs{}};
  if (type == "fltr-martian") return {FilterFltrMartian{}};
  if (type == "asn")
    return {FilterAsNum{static_cast<Asn>(v.at("asn").as_int()), range_op_from_json(v.at("op"))}};
  if (type == "as-set")
    return {FilterAsSet{v.at("name").as_string(), range_op_from_json(v.at("op"))}};
  if (type == "route-set")
    return {FilterRouteSet{v.at("name").as_string(), range_op_from_json(v.at("op"))}};
  if (type == "filter-set") return {FilterFilterSet{v.at("name").as_string()}};
  if (type == "prefixes") {
    net::PrefixSet set;
    for (const auto& r : v.at("ranges").as_array()) set.add(prefix_range_from_json(r));
    return {FilterPrefixes{std::move(set), range_op_from_json(v.at("op"))}};
  }
  if (type == "as-path") return {FilterAsPath{aspath_regex_from_json(v.at("regex"))}};
  if (type == "community")
    return {FilterCommunity{v.at("method").as_string(), strings_from_json(v.at("args"))}};
  if (type == "and")
    return {FilterAnd{filter_from_json(v.at("left")), filter_from_json(v.at("right"))}};
  if (type == "or")
    return {FilterOr{filter_from_json(v.at("left")), filter_from_json(v.at("right"))}};
  if (type == "not") return {FilterNot{filter_from_json(v.at("inner"))}};
  if (type == "unknown") return {FilterUnknown{v.at("text").as_string()}};
  throw JsonError("bad filter type: " + type);
}

// ---------------------------------------------------------------------------
// Entry / Rule
// ---------------------------------------------------------------------------

namespace {

Value factor_to_json(const PolicyFactor& s) {
  Object o;
  Array peerings;
  for (const auto& pa : s.peerings) {
    Object po;
    po["peering"] = to_json(pa.peering);
    Array actions;
    for (const auto& a : pa.actions) actions.push_back(to_json(a));
    po["actions"] = Value(std::move(actions));
    peerings.push_back(Value(std::move(po)));
  }
  o["peerings"] = Value(std::move(peerings));
  o["filter"] = to_json(s.filter);
  return Value(std::move(o));
}

PolicyFactor factor_from_json(const Value& v) {
  PolicyFactor s;
  for (const auto& po : v.at("peerings").as_array()) {
    PeeringAction pa;
    pa.peering = peering_from_json(po.at("peering"));
    for (const auto& a : po.at("actions").as_array()) pa.actions.push_back(action_from_json(a));
    s.peerings.push_back(std::move(pa));
  }
  s.filter = filter_from_json(v.at("filter"));
  return s;
}

}  // namespace

json::Value to_json(const Entry& v) {
  Value o = std::visit(
      overloaded{
          [](const EntryTerm& t) {
            Value o = tagged("term");
            Array factors;
            for (const auto& f : t.factors) factors.push_back(factor_to_json(f));
            o["factors"] = Value(std::move(factors));
            return o;
          },
          [](const EntryRefine& r) {
            Value o = tagged("refine");
            o["left"] = to_json(*r.left);
            o["right"] = to_json(*r.right);
            return o;
          },
          [](const EntryExcept& x) {
            Value o = tagged("except");
            o["left"] = to_json(*x.left);
            o["right"] = to_json(*x.right);
            return o;
          },
      },
      v.node);
  Array afis;
  for (const auto& afi : v.afis) afis.push_back(to_json(afi));
  o["afis"] = Value(std::move(afis));
  return o;
}

Entry entry_from_json(const Value& v) {
  Entry e;
  for (const auto& afi : v.at("afis").as_array()) e.afis.push_back(afi_from_json(afi));
  const std::string& type = v.at("type").as_string();
  if (type == "term") {
    EntryTerm t;
    for (const auto& f : v.at("factors").as_array()) t.factors.push_back(factor_from_json(f));
    e.node = std::move(t);
  } else if (type == "refine") {
    e.node = EntryRefine{entry_from_json(v.at("left")), entry_from_json(v.at("right"))};
  } else if (type == "except") {
    e.node = EntryExcept{entry_from_json(v.at("left")), entry_from_json(v.at("right"))};
  } else {
    throw JsonError("bad entry type: " + type);
  }
  return e;
}

json::Value to_json(const Rule& v) {
  Object o;
  o["direction"] = Value(v.is_import() ? "import" : "export");
  o["mp"] = Value(v.mp);
  if (!v.protocol.empty()) o["protocol"] = Value(v.protocol);
  if (!v.into.empty()) o["into"] = Value(v.into);
  o["entry"] = to_json(v.entry);
  o["text"] = Value(v.text);
  return Value(std::move(o));
}

Rule rule_from_json(const Value& v) {
  Rule r;
  r.direction = v.at("direction").as_string() == "import" ? Rule::Direction::kImport
                                                          : Rule::Direction::kExport;
  r.mp = v.at("mp").as_bool();
  if (const auto* p = v.find("protocol")) r.protocol = p->as_string();
  if (const auto* p = v.find("into")) r.into = p->as_string();
  r.entry = entry_from_json(v.at("entry"));
  r.text = v.at("text").as_string();
  return r;
}

// ---------------------------------------------------------------------------
// Objects
// ---------------------------------------------------------------------------

json::Value to_json(const AutNum& v) {
  Object o;
  o["asn"] = Value(std::uint64_t{v.asn});
  o["as-name"] = Value(to_string(v.as_name));
  Array imports;
  for (const auto& r : v.imports) imports.push_back(to_json(r));
  o["imports"] = Value(std::move(imports));
  Array exports;
  for (const auto& r : v.exports) exports.push_back(to_json(r));
  o["exports"] = Value(std::move(exports));
  o["member-of"] = symbols_to_json(v.member_of);
  o["mnt-by"] = symbols_to_json(v.mnt_by);
  o["source"] = Value(to_string(v.source));
  return Value(std::move(o));
}

AutNum aut_num_from_json(const Value& v) {
  AutNum a;
  a.asn = static_cast<Asn>(v.at("asn").as_int());
  a.as_name = sym(v.at("as-name").as_string());
  for (const auto& r : v.at("imports").as_array()) a.imports.push_back(rule_from_json(r));
  for (const auto& r : v.at("exports").as_array()) a.exports.push_back(rule_from_json(r));
  a.member_of = symbols_from_json(v.at("member-of"));
  a.mnt_by = symbols_from_json(v.at("mnt-by"));
  a.source = sym(v.at("source").as_string());
  return a;
}

json::Value to_json(const AsSet& v) {
  Object o;
  o["name"] = Value(to_string(v.name));
  Array members;
  for (const auto& m : v.members) {
    Object mo;
    switch (m.kind) {
      case AsSetMember::Kind::kAsn:
        mo["type"] = Value("asn");
        mo["asn"] = Value(std::uint64_t{m.asn});
        break;
      case AsSetMember::Kind::kSet:
        mo["type"] = Value("set");
        mo["name"] = Value(to_string(m.name));
        break;
      case AsSetMember::Kind::kAny:
        mo["type"] = Value("any");
        break;
    }
    members.push_back(Value(std::move(mo)));
  }
  o["members"] = Value(std::move(members));
  o["mbrs-by-ref"] = symbols_to_json(v.mbrs_by_ref);
  o["mnt-by"] = symbols_to_json(v.mnt_by);
  o["source"] = Value(to_string(v.source));
  return Value(std::move(o));
}

AsSet as_set_from_json(const Value& v) {
  AsSet s;
  s.name = sym(v.at("name").as_string());
  for (const auto& m : v.at("members").as_array()) {
    const std::string& type = m.at("type").as_string();
    if (type == "asn") {
      s.members.push_back(AsSetMember::of_asn(static_cast<Asn>(m.at("asn").as_int())));
    } else if (type == "set") {
      s.members.push_back(AsSetMember::of_set(sym(m.at("name").as_string())));
    } else if (type == "any") {
      s.members.push_back(AsSetMember::any());
    } else {
      throw JsonError("bad as-set member: " + type);
    }
  }
  s.mbrs_by_ref = symbols_from_json(v.at("mbrs-by-ref"));
  s.mnt_by = symbols_from_json(v.at("mnt-by"));
  s.source = sym(v.at("source").as_string());
  return s;
}

namespace {

Value route_set_member_to_json(const RouteSetMember& m) {
  Object o;
  switch (m.kind) {
    case RouteSetMember::Kind::kPrefix:
      o["type"] = Value("prefix");
      o["prefix"] = prefix_range_to_json(m.prefix);
      break;
    case RouteSetMember::Kind::kRouteSet:
      o["type"] = Value("route-set");
      o["name"] = Value(to_string(m.name));
      o["op"] = range_op_to_json(m.op);
      break;
    case RouteSetMember::Kind::kAsSet:
      o["type"] = Value("as-set");
      o["name"] = Value(to_string(m.name));
      o["op"] = range_op_to_json(m.op);
      break;
    case RouteSetMember::Kind::kAsn:
      o["type"] = Value("asn");
      o["asn"] = Value(std::uint64_t{m.asn});
      o["op"] = range_op_to_json(m.op);
      break;
    case RouteSetMember::Kind::kAny:
      o["type"] = Value("any");
      break;
  }
  return Value(std::move(o));
}

RouteSetMember route_set_member_from_json(const Value& v) {
  RouteSetMember m;
  const std::string& type = v.at("type").as_string();
  if (type == "prefix") {
    m.kind = RouteSetMember::Kind::kPrefix;
    m.prefix = prefix_range_from_json(v.at("prefix"));
  } else if (type == "route-set") {
    m.kind = RouteSetMember::Kind::kRouteSet;
    m.name = sym(v.at("name").as_string());
    m.op = range_op_from_json(v.at("op"));
  } else if (type == "as-set") {
    m.kind = RouteSetMember::Kind::kAsSet;
    m.name = sym(v.at("name").as_string());
    m.op = range_op_from_json(v.at("op"));
  } else if (type == "asn") {
    m.kind = RouteSetMember::Kind::kAsn;
    m.asn = static_cast<Asn>(v.at("asn").as_int());
    m.op = range_op_from_json(v.at("op"));
  } else if (type == "any") {
    m.kind = RouteSetMember::Kind::kAny;
  } else {
    throw JsonError("bad route-set member: " + type);
  }
  return m;
}

}  // namespace

json::Value to_json(const RouteSet& v) {
  Object o;
  o["name"] = Value(to_string(v.name));
  Array members;
  for (const auto& m : v.members) members.push_back(route_set_member_to_json(m));
  o["members"] = Value(std::move(members));
  Array mp_members;
  for (const auto& m : v.mp_members) mp_members.push_back(route_set_member_to_json(m));
  o["mp-members"] = Value(std::move(mp_members));
  o["mbrs-by-ref"] = symbols_to_json(v.mbrs_by_ref);
  o["mnt-by"] = symbols_to_json(v.mnt_by);
  o["source"] = Value(to_string(v.source));
  return Value(std::move(o));
}

RouteSet route_set_from_json(const Value& v) {
  RouteSet s;
  s.name = sym(v.at("name").as_string());
  for (const auto& m : v.at("members").as_array())
    s.members.push_back(route_set_member_from_json(m));
  for (const auto& m : v.at("mp-members").as_array())
    s.mp_members.push_back(route_set_member_from_json(m));
  s.mbrs_by_ref = symbols_from_json(v.at("mbrs-by-ref"));
  s.mnt_by = symbols_from_json(v.at("mnt-by"));
  s.source = sym(v.at("source").as_string());
  return s;
}

json::Value to_json(const PeeringSet& v) {
  Object o;
  o["name"] = Value(to_string(v.name));
  Array peerings;
  for (const auto& p : v.peerings) peerings.push_back(to_json(p));
  o["peerings"] = Value(std::move(peerings));
  Array mp_peerings;
  for (const auto& p : v.mp_peerings) mp_peerings.push_back(to_json(p));
  o["mp-peerings"] = Value(std::move(mp_peerings));
  o["source"] = Value(to_string(v.source));
  return Value(std::move(o));
}

PeeringSet peering_set_from_json(const Value& v) {
  PeeringSet s;
  s.name = sym(v.at("name").as_string());
  for (const auto& p : v.at("peerings").as_array()) s.peerings.push_back(peering_from_json(p));
  for (const auto& p : v.at("mp-peerings").as_array())
    s.mp_peerings.push_back(peering_from_json(p));
  s.source = sym(v.at("source").as_string());
  return s;
}

json::Value to_json(const FilterSet& v) {
  Object o;
  o["name"] = Value(to_string(v.name));
  if (v.has_filter) o["filter"] = to_json(v.filter);
  if (v.has_mp_filter) o["mp-filter"] = to_json(v.mp_filter);
  o["source"] = Value(to_string(v.source));
  return Value(std::move(o));
}

FilterSet filter_set_from_json(const Value& v) {
  FilterSet s;
  s.name = sym(v.at("name").as_string());
  if (const auto* f = v.find("filter")) {
    s.filter = filter_from_json(*f);
    s.has_filter = true;
  }
  if (const auto* f = v.find("mp-filter")) {
    s.mp_filter = filter_from_json(*f);
    s.has_mp_filter = true;
  }
  s.source = sym(v.at("source").as_string());
  return s;
}

json::Value to_json(const RouteObject& v) {
  Object o;
  o["prefix"] = Value(v.prefix.to_string());
  o["origin"] = Value(std::uint64_t{v.origin});
  o["member-of"] = symbols_to_json(v.member_of);
  o["mnt-by"] = symbols_to_json(v.mnt_by);
  o["source"] = Value(to_string(v.source));
  return Value(std::move(o));
}

RouteObject route_object_from_json(const Value& v) {
  RouteObject r;
  auto prefix = net::Prefix::parse(v.at("prefix").as_string());
  if (!prefix) throw JsonError("bad route prefix");
  r.prefix = *prefix;
  r.origin = static_cast<Asn>(v.at("origin").as_int());
  r.member_of = symbols_from_json(v.at("member-of"));
  r.mnt_by = symbols_from_json(v.at("mnt-by"));
  r.source = sym(v.at("source").as_string());
  return r;
}

json::Value to_json(const Ir& v) {
  Object o;
  Object aut_nums;
  for (const auto& [asn, an] : v.aut_nums) aut_nums[std::to_string(asn)] = to_json(an);
  o["aut-nums"] = Value(std::move(aut_nums));
  Object as_sets;
  for (const auto& [name, s] : v.as_sets) as_sets[name] = to_json(s);
  o["as-sets"] = Value(std::move(as_sets));
  Object route_sets;
  for (const auto& [name, s] : v.route_sets) route_sets[name] = to_json(s);
  o["route-sets"] = Value(std::move(route_sets));
  Object peering_sets;
  for (const auto& [name, s] : v.peering_sets) peering_sets[name] = to_json(s);
  o["peering-sets"] = Value(std::move(peering_sets));
  Object filter_sets;
  for (const auto& [name, s] : v.filter_sets) filter_sets[name] = to_json(s);
  o["filter-sets"] = Value(std::move(filter_sets));
  Array routes;
  for (const auto& r : v.routes) routes.push_back(to_json(r));
  o["routes"] = Value(std::move(routes));
  return Value(std::move(o));
}

Ir ir_from_json(const Value& v) {
  Ir ir;
  for (const auto& [key, an] : v.at("aut-nums").as_object()) {
    auto asn = util::parse_u32(key);
    if (!asn) throw JsonError("bad aut-num key: " + key);
    ir.aut_nums.emplace(*asn, aut_num_from_json(an));
  }
  for (const auto& [name, s] : v.at("as-sets").as_object())
    ir.as_sets.emplace(name, as_set_from_json(s));
  for (const auto& [name, s] : v.at("route-sets").as_object())
    ir.route_sets.emplace(name, route_set_from_json(s));
  for (const auto& [name, s] : v.at("peering-sets").as_object())
    ir.peering_sets.emplace(name, peering_set_from_json(s));
  for (const auto& [name, s] : v.at("filter-sets").as_object())
    ir.filter_sets.emplace(name, filter_set_from_json(s));
  for (const auto& r : v.at("routes").as_array()) ir.routes.push_back(route_object_from_json(r));
  return ir;
}

}  // namespace rpslyzer::ir
