#include "rpslyzer/ir/policy.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::ir {

namespace {
using util::overloaded;
}  // namespace

std::string Afi::to_string() const {
  std::string out;
  switch (ip) {
    case Ip::kAny:
      out = "any";
      break;
    case Ip::kIpv4:
      out = "ipv4";
      break;
    case Ip::kIpv6:
      out = "ipv6";
      break;
  }
  switch (cast) {
    case Cast::kAny:
      break;  // bare "any"/"ipv4"/"ipv6"
    case Cast::kUnicast:
      out += ".unicast";
      break;
    case Cast::kMulticast:
      out += ".multicast";
      break;
  }
  return out;
}

std::string to_string(const AsExpr& e) {
  return std::visit(
      overloaded{
          [](const AsExprAsn& a) { return "AS" + std::to_string(a.asn); },
          [](const AsExprSet& s) { return s.name; },
          [](const AsExprAny&) { return std::string("AS-ANY"); },
          [](const AsExprAnd& n) {
            return "(" + to_string(*n.left) + " AND " + to_string(*n.right) + ")";
          },
          [](const AsExprOr& n) {
            return "(" + to_string(*n.left) + " OR " + to_string(*n.right) + ")";
          },
          [](const AsExprExcept& n) {
            return "(" + to_string(*n.left) + " EXCEPT " + to_string(*n.right) + ")";
          },
      },
      e.node);
}

std::string to_string(const Peering& p) {
  return std::visit(overloaded{
                        [](const PeeringSpec& s) {
                          std::string out = to_string(s.as_expr);
                          if (!s.remote_router.empty()) out += " " + s.remote_router;
                          if (!s.local_router.empty()) out += " at " + s.local_router;
                          return out;
                        },
                        [](const PeeringSetRef& r) { return r.name; },
                    },
                    p.node);
}

std::string to_string(const Action& a) {
  if (a.kind == Action::Kind::kMethodCall) {
    return a.attribute + "." + a.method + "(" + a.value + ")";
  }
  return a.attribute + " " + a.op + " " + a.value;
}

std::string to_string(const Filter& f) {
  return std::visit(
      overloaded{
          [](const FilterAny&) { return std::string("ANY"); },
          [](const FilterPeerAs&) { return std::string("PeerAS"); },
          [](const FilterFltrMartian&) { return std::string("fltr-martian"); },
          [](const FilterAsNum& n) { return "AS" + std::to_string(n.asn) + n.op.to_string(); },
          [](const FilterAsSet& s) { return s.name + s.op.to_string(); },
          [](const FilterRouteSet& s) { return s.name + s.op.to_string(); },
          [](const FilterFilterSet& s) { return s.name; },
          [](const FilterPrefixes& p) { return p.prefixes.to_string() + p.op.to_string(); },
          [](const FilterAsPath& p) { return to_string(p.regex); },
          [](const FilterCommunity& c) {
            std::string out = "community";
            if (!c.method.empty()) out += "." + c.method;
            out += "(";
            bool first = true;
            for (const auto& arg : c.args) {
              if (!first) out += ", ";
              first = false;
              out += arg;
            }
            out += ")";
            return out;
          },
          [](const FilterAnd& n) {
            return "(" + to_string(*n.left) + " AND " + to_string(*n.right) + ")";
          },
          [](const FilterOr& n) {
            return "(" + to_string(*n.left) + " OR " + to_string(*n.right) + ")";
          },
          [](const FilterNot& n) { return "NOT " + to_string(*n.inner); },
          [](const FilterUnknown& u) { return "<unparsed: " + u.text + ">"; },
      },
      f.node);
}

namespace {

std::string factor_to_string(const PolicyFactor& s, bool is_import) {
  std::string out;
  for (const auto& pa : s.peerings) {
    out += is_import ? "from " : "to ";
    out += to_string(pa.peering);
    if (!pa.actions.empty()) {
      out += " action ";
      for (const auto& a : pa.actions) out += to_string(a) + "; ";
    }
    out += " ";
  }
  out += is_import ? "accept " : "announce ";
  out += to_string(s.filter);
  return out;
}

}  // namespace

std::string to_string(const Entry& e, bool is_import) {
  std::string prefix;
  if (!e.afis.empty()) {
    prefix = "afi ";
    bool first = true;
    for (const auto& afi : e.afis) {
      if (!first) prefix += ", ";
      first = false;
      prefix += afi.to_string();
    }
    prefix += " ";
  }
  return std::visit(
      overloaded{
          [&](const EntryTerm& t) {
            if (t.factors.size() == 1) return prefix + factor_to_string(t.factors[0], is_import);
            std::string out = prefix + "{ ";
            for (const auto& f : t.factors) out += factor_to_string(f, is_import) + "; ";
            return out + "}";
          },
          [&](const EntryRefine& r) {
            return prefix + "{" + to_string(*r.left, is_import) + "} REFINE {" +
                   to_string(*r.right, is_import) + "}";
          },
          [&](const EntryExcept& x) {
            return prefix + "{" + to_string(*x.left, is_import) + "} EXCEPT {" +
                   to_string(*x.right, is_import) + "}";
          },
      },
      e.node);
}

std::string to_string(const Rule& r) {
  std::string attr = r.mp ? (r.is_import() ? "mp-import" : "mp-export")
                          : (r.is_import() ? "import" : "export");
  std::string quals;
  if (!r.protocol.empty()) quals += "protocol " + r.protocol + " ";
  if (!r.into.empty()) quals += "into " + r.into + " ";
  return attr + ": " + quals + to_string(r.entry, r.is_import());
}

}  // namespace rpslyzer::ir
