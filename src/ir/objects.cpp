#include "rpslyzer/ir/objects.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::ir {

namespace {

using util::iequals;
using util::istarts_with;

bool valid_set_component_word(std::string_view w) {
  // A set-name component: letters, digits, '-' and '_' after the prefix.
  if (w.empty()) return false;
  for (char c : w) {
    if (!util::is_alnum(c) && c != '-' && c != '_') return false;
  }
  return true;
}

/// Validates a hierarchical set name: components separated by ':', at least
/// one component carrying the class prefix; other components must be the
/// prefix-carrying kind or a plain ASN (RFC 2622 §5).
bool valid_hierarchical_name(std::string_view name, std::string_view class_prefix) {
  if (name.empty()) return false;
  bool has_prefixed_component = false;
  for (auto component : util::split(name, ':')) {
    if (component.empty()) return false;
    if (istarts_with(component, class_prefix)) {
      if (component.size() <= class_prefix.size() || !valid_set_component_word(component))
        return false;
      has_prefixed_component = true;
    } else if (istarts_with(component, "AS")) {
      // Either an ASN like AS123 or invalid.
      if (!parse_as_ref(component)) return false;
    } else {
      return false;
    }
  }
  return has_prefixed_component;
}

}  // namespace

bool valid_as_set_name(std::string_view name) {
  // "AS-ANY" is reserved and must not name a real set (§4 reports one such
  // anomaly in the wild).
  if (iequals(name, "AS-ANY")) return false;
  return valid_hierarchical_name(name, "AS-");
}

bool valid_route_set_name(std::string_view name) {
  if (iequals(name, "RS-ANY")) return false;
  return valid_hierarchical_name(name, "RS-");
}

bool valid_peering_set_name(std::string_view name) {
  return valid_hierarchical_name(name, "PRNG-");
}

bool valid_filter_set_name(std::string_view name) {
  return valid_hierarchical_name(name, "FLTR-");
}

std::optional<Asn> parse_as_ref(std::string_view text) noexcept {
  if (text.size() < 3 || !istarts_with(text, "AS")) return std::nullopt;
  return util::parse_u32(text.substr(2));
}

}  // namespace rpslyzer::ir
