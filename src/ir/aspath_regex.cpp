#include "rpslyzer/ir/aspath_regex.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::ir {

namespace {

using util::overloaded;

bool node_uses_skipped(const AsPathRegexNode& node);

bool token_uses_skipped(const ReToken& t) {
  if (t.kind != ReToken::Kind::kSet) return false;
  for (const auto& item : t.items) {
    if (item.kind == ReSetItem::Kind::kAsnRange) return true;
  }
  return false;
}

bool node_uses_skipped(const AsPathRegexNode& node) {
  return std::visit(
      overloaded{
          [](const ReEmpty&) { return false; },
          [](const ReBeginAnchor&) { return false; },
          [](const ReEndAnchor&) { return false; },
          [](const ReTokenNode& t) { return token_uses_skipped(t.token); },
          [](const ReConcat& c) {
            for (const auto& p : c.parts) {
              if (node_uses_skipped(*p)) return true;
            }
            return false;
          },
          [](const ReAlt& a) {
            for (const auto& o : a.options) {
              if (node_uses_skipped(*o)) return true;
            }
            return false;
          },
          [](const ReRepeatNode& r) {
            return r.repeat.same_pattern || node_uses_skipped(*r.inner);
          },
      },
      node.node);
}

std::string item_to_string(const ReSetItem& item) {
  switch (item.kind) {
    case ReSetItem::Kind::kAsn:
      return "AS" + std::to_string(item.asn);
    case ReSetItem::Kind::kAsnRange:
      return "AS" + std::to_string(item.asn) + "-AS" + std::to_string(item.asn_hi);
    case ReSetItem::Kind::kAsSet:
      return item.as_set;
    case ReSetItem::Kind::kPeerAs:
      return "PeerAS";
  }
  return "";
}

std::string token_to_string(const ReToken& t) {
  switch (t.kind) {
    case ReToken::Kind::kAsn:
      return "AS" + std::to_string(t.asn);
    case ReToken::Kind::kAsSet:
      return t.as_set;
    case ReToken::Kind::kAny:
      return ".";
    case ReToken::Kind::kPeerAs:
      return "PeerAS";
    case ReToken::Kind::kSet: {
      std::string out = "[";
      if (t.complemented) out += "^";
      bool first = true;
      for (const auto& item : t.items) {
        if (!first) out += " ";
        first = false;
        out += item_to_string(item);
      }
      out += "]";
      return out;
    }
  }
  return "";
}

std::string repeat_to_string(const ReRepeat& r) {
  std::string tilde = r.same_pattern ? "~" : "";
  if (r.min == 0 && !r.max) return tilde + "*";
  if (r.min == 1 && !r.max) return tilde + "+";
  if (r.min == 0 && r.max && *r.max == 1) return tilde + "?";
  if (r.max && *r.max == r.min) return tilde + "{" + std::to_string(r.min) + "}";
  if (r.max) return tilde + "{" + std::to_string(r.min) + "," + std::to_string(*r.max) + "}";
  return tilde + "{" + std::to_string(r.min) + ",}";
}

/// True if rendering `node` under a postfix operator needs parentheses.
bool needs_group(const AsPathRegexNode& node) {
  return std::holds_alternative<ReConcat>(node.node) || std::holds_alternative<ReAlt>(node.node);
}

}  // namespace

bool uses_skipped_constructs(const AsPathRegex& regex) { return node_uses_skipped(*regex.root); }

std::string to_string(const AsPathRegexNode& node) {
  return std::visit(
      overloaded{
          [](const ReEmpty&) { return std::string(); },
          [](const ReBeginAnchor&) { return std::string("^"); },
          [](const ReEndAnchor&) { return std::string("$"); },
          [](const ReTokenNode& t) { return token_to_string(t.token); },
          [](const ReConcat& c) {
            std::string out;
            bool first = true;
            bool previous_was_begin_anchor = false;
            for (const auto& p : c.parts) {
              // Anchors glue to their neighbors: "^AS1 AS2$", not "^ AS1".
              const bool is_end_anchor = std::holds_alternative<ReEndAnchor>(p->node);
              if (!first && !previous_was_begin_anchor && !is_end_anchor) out += " ";
              first = false;
              previous_was_begin_anchor = std::holds_alternative<ReBeginAnchor>(p->node);
              if (std::holds_alternative<ReAlt>(p->node)) {
                out += "(" + to_string(*p) + ")";
              } else {
                out += to_string(*p);
              }
            }
            return out;
          },
          [](const ReAlt& a) {
            std::string out;
            bool first = true;
            for (const auto& o : a.options) {
              if (!first) out += "|";
              first = false;
              out += to_string(*o);
            }
            return out;
          },
          [](const ReRepeatNode& r) {
            std::string inner = to_string(*r.inner);
            if (needs_group(*r.inner)) inner = "(" + inner + ")";
            return inner + repeat_to_string(r.repeat);
          },
      },
      node.node);
}

std::string to_string(const AsPathRegex& regex) { return "<" + to_string(*regex.root) + ">"; }

}  // namespace rpslyzer::ir
