#pragma once
// Lock-cheap metrics registry: named counters, gauges, and fixed-bucket
// histograms with Prometheus text exposition.
//
// The daemon (rpslyzerd) and the batch pipeline share one process-global
// registry (MetricsRegistry::global()) for subsystem-wide series — loader
// outcomes, query-engine op counts, failpoint fires — while components that
// exist more than once per process (each server::Server) own a private
// registry so their counters stay exact per instance. Exposition merges any
// set of registries into one valid Prometheus page (`to_prometheus`).
//
// Fast path: recording through a held Counter&/Gauge&/Histogram& handle is
// one relaxed atomic load of the global enable flag plus one relaxed RMW —
// no lock, no lookup, no allocation. Handles are resolved once at
// construction time (registry lookups take a mutex and are not for hot
// paths). `set_metrics_enabled(false)` turns every record operation into a
// load + predicted branch, mirroring util/failpoint's one-atomic fast path;
// it is a startup-time kill switch, not a runtime toggle — flipping it
// mid-run skips increments and lets paired gauges drift.
//
// Naming scheme (enforced by convention, see DESIGN.md "Telemetry"):
//   rpslyzer_<subsystem>_<noun>[_<unit>][_total]
// Label cardinality must be bounded by compiled-in sets (IRR source names,
// outcome enums, query ops, failpoint sites) — never by user input.

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rpslyzer::obs {

namespace detail {
extern std::atomic<bool> metrics_enabled;

inline void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Process-wide recording switch (default on). One relaxed load per record.
inline bool metrics_on() noexcept {
  return detail::metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on) noexcept;

/// Label set attached to one metric instance, e.g. {{"source", "RIPE"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

/// Monotone counter. Thread-safe; relaxed atomics only.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (!metrics_on()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  /// Tests/registry reset only — counters are monotone in production.
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed value (open connections, queue depth, health code).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!metrics_on()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!metrics_on()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram in the Prometheus style: `bounds` are ascending
/// inclusive upper bounds (`le`); one implicit overflow bucket absorbs the
/// tail. Observation is two relaxed RMWs plus a CAS-add on the sum.
class Histogram {
 public:
  /// A coherent read of every bucket plus count and sum: the reader retries
  /// (bounded) until the count is stable across the pass and accounts for
  /// every bucket increment it saw, so derived values (percentiles, means,
  /// ratios) can never contradict each other the way two independent loads
  /// at different times can.
  struct Snapshot {
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0;

    /// Upper bound of the bucket holding the p-th percentile sample
    /// (p in [0,100]); overflow-bucket hits clamp to the last finite bound.
    /// 0 with no samples.
    double percentile(double p, const std::vector<double>& bounds) const noexcept;
    double mean() const noexcept {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept {
    if (!metrics_on()) return;
    buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add_double(sum_, v);
    // Count last, with release: a snapshot that sees a stable count has seen
    // every bucket increment belonging to it.
    count_.fetch_add(1, std::memory_order_release);
  }

  Snapshot snapshot() const noexcept;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  double percentile(double p) const noexcept { return snapshot().percentile(p, bounds_); }
  void reset() noexcept;

 private:
  std::size_t bucket_for(double v) const noexcept;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// `count` exponential bounds starting at `start`, each `factor` larger:
/// the standard latency bucket layout (e.g. 1 µs … 16 s doubling).
std::vector<double> exponential_bounds(double start, double factor, std::size_t count);

/// One family gathered for exposition: pre-rendered sample lines under a
/// shared HELP/TYPE header.
struct GatheredFamily {
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<std::string> lines;
};
using GatheredFamilies = std::map<std::string, GatheredFamily, std::less<>>;

/// Receives samples from registered collector callbacks at scrape time.
/// Collectors mirror counters kept elsewhere (cache shards, failpoint hit
/// counts) or computed gauges (corpus generation, uptime) into the page
/// without forcing those subsystems onto registry storage.
class CollectSink {
 public:
  void counter(std::string_view name, std::string_view help, const Labels& labels,
               double value);
  void gauge(std::string_view name, std::string_view help, const Labels& labels,
             double value);

 private:
  friend class MetricsRegistry;
  explicit CollectSink(GatheredFamilies& families) : families_(families) {}
  void sample(std::string_view name, std::string_view help, MetricType type,
              const Labels& labels, double value);
  GatheredFamilies& families_;
};

/// Owns metric storage and renders it. Handles returned by counter() /
/// gauge() / histogram() are stable for the registry's lifetime; calling
/// again with the same (name, labels) returns the same object, so handle
/// resolution is idempotent and safe from multiple threads.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry for subsystem metrics (loader, query engine,
  /// failpoints). Never destroyed, usable during static teardown.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name, std::string_view help,
                   const Labels& labels = {});
  Gauge& gauge(std::string_view name, std::string_view help, const Labels& labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, const Labels& labels = {});

  using Collector = std::function<void(CollectSink&)>;
  void register_collector(Collector fn);

  /// Render this registry (stored metrics + collectors) as Prometheus text
  /// exposition format, families sorted by name.
  std::string to_prometheus() const;

  /// Zero every stored metric and drop collectors (tests only; handles stay
  /// valid).
  void reset();

 private:
  friend std::string to_prometheus(
      std::initializer_list<const MetricsRegistry*> registries);

  struct Instance {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct StoredFamily {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Instance> instances;  // label-set order of first registration
  };

  void gather(GatheredFamilies& out) const;

  mutable std::mutex mu_;
  std::map<std::string, StoredFamily, std::less<>> families_;
  std::vector<Collector> collectors_;
};

/// Merge several registries into one exposition page (e.g. the global
/// registry plus a server's private one). Family names should be disjoint
/// across registries; duplicate families concatenate their samples.
std::string to_prometheus(std::initializer_list<const MetricsRegistry*> registries);

}  // namespace rpslyzer::obs
