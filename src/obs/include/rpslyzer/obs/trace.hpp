#pragma once
// Pipeline trace spans with chrome://tracing export.
//
// A Span is an RAII stopwatch around one pipeline stage:
//
//   {
//     obs::Span span("irr.parse", source_name);
//     parse_dump(...);
//   }  // span records wall + thread-CPU time on destruction
//
// Spans nest naturally — each thread keeps a thread-local depth counter, so
// "irr.load" encloses per-source "irr.open"/"irr.read"/"irr.parse"/
// "irr.merge" children and the exported trace shows the containment.
//
// Tracing is off by default. When disabled, constructing a Span is one
// relaxed atomic load and a branch (same discipline as metrics_on()), cheap
// enough to leave spans permanently compiled into per-query dispatch.
// When enabled, completed spans accumulate in Tracer::global() (bounded;
// overflow is counted, not stored) until exported:
//
//   - chrome_trace() / write_chrome_trace(path): chrome://tracing
//     "traceEvents" JSON (complete "X" events, microsecond timestamps),
//     loadable in chrome://tracing or Perfetto. Wired to `--trace-out`.
//   - summary_table(): per-stage aggregate (count, wall, CPU) as a
//     fixed-width text table, printed at the end of `rpslyzer load`.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rpslyzer::obs {

namespace detail {
/// Process-wide tracing gate, mirrored by Tracer::set_enabled(). Lives at
/// namespace scope (constant-initialized) rather than inside Tracer::global()
/// so the disabled Span fast path is one relaxed load + branch with no
/// static-init guard and no out-of-line call.
extern std::atomic<bool> trace_enabled;
}  // namespace detail

/// True when spans are being recorded. One relaxed load.
inline bool tracing_on() noexcept {
  return detail::trace_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Trace context: a per-thread 64-bit trace id that follows one query through
// dispatch → cache lookup → worker eval → verify. The server assigns (or the
// client supplies, via `!id <hex>`) an id per accepted query; workers install
// it with a TraceContext scope before evaluating, so every Span recorded and
// every structured log line emitted inside the scope can carry the id and one
// query becomes greppable end to end. 0 means "no trace context".

namespace detail {
extern thread_local std::uint64_t current_trace;
}  // namespace detail

/// The trace id installed on this thread (0 = none). One thread-local read.
inline std::uint64_t current_trace_id() noexcept { return detail::current_trace; }

/// RAII scope installing `id` as the thread's trace context; restores the
/// previous id on destruction so nested scopes (reload inside query handling)
/// unwind correctly.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t id) noexcept
      : previous_(detail::current_trace) {
    detail::current_trace = id;
  }
  ~TraceContext() { detail::current_trace = previous_; }
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t previous_;
};

/// Draw a fresh non-zero trace id. splitmix64 over a process-wide counter:
/// ids are unique within a run and well-mixed (no sequential correlation
/// leaking queue order to clients that echo them).
std::uint64_t next_trace_id() noexcept;

/// 16 lowercase hex digits, the canonical wire/log spelling of a trace id.
std::string trace_hex(std::uint64_t id);

/// Parse 1–16 hex digits (either case). False on empty/overlong/non-hex.
bool parse_trace_hex(std::string_view text, std::uint64_t* out) noexcept;

/// One completed span. Timestamps are microseconds since the tracer epoch
/// (the moment tracing was last enabled), wall clock is steady.
struct SpanRecord {
  std::string name;   ///< stage name, e.g. "irr.parse" (bounded set)
  std::string arg;    ///< free detail, e.g. the source name ("" = none)
  std::uint64_t start_us = 0;
  std::uint64_t wall_us = 0;
  std::uint64_t cpu_us = 0;  ///< CLOCK_THREAD_CPUTIME_ID delta
  std::uint32_t tid = 0;     ///< small per-process thread index, not an OS id
  std::uint32_t depth = 0;   ///< nesting depth on this thread (0 = top level)
  std::uint64_t trace = 0;   ///< trace context active when the span closed (0 = none)
};

class Tracer {
 public:
  /// The process-wide tracer. Never destroyed.
  static Tracer& global();

  /// Enabling (re)sets the epoch and clears prior records.
  void set_enabled(bool on);
  bool enabled() const noexcept { return tracing_on(); }

  void record(SpanRecord record);
  std::vector<SpanRecord> records() const;
  std::uint64_t dropped() const noexcept;
  void clear();

  /// chrome://tracing JSON document ({"traceEvents": [...]}).
  std::string chrome_trace() const;
  /// Write chrome_trace() to `path`; false + *error on I/O failure.
  bool write_chrome_trace(const std::string& path, std::string* error = nullptr) const;

  /// Per-stage aggregate: name, count, total/mean wall, total CPU — sorted
  /// by total wall time descending. Multi-line table ready for stderr.
  std::string summary_table() const;

  /// Spans stored before overflow counting kicks in.
  static constexpr std::size_t kMaxRecords = 1u << 20;

 private:
  friend class Span;
  std::uint64_t now_since_epoch_us() const noexcept;

  std::atomic<std::uint64_t> epoch_ns_{0};  // steady_clock ns at enable time
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
};

/// RAII span; records into Tracer::global() when tracing is enabled.
/// Must be destroyed on the thread that created it.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view arg = {})
      : active_(tracing_on()) {
    if (active_) begin(name, arg);
  }
  ~Span() {
    if (active_) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return active_; }

 private:
  // Cold: only reached while tracing is enabled.
  void begin(std::string_view name, std::string_view arg);
  void finish();

  bool active_;
  std::string_view name_;  // callers pass string literals / outliving names
  std::string arg_;
  std::uint64_t start_us_;
  std::uint64_t start_cpu_ns_;
  std::uint32_t depth_;
};

}  // namespace rpslyzer::obs
