#pragma once
// Glue between util/failpoint and the telemetry layer.
//
// util/failpoint cannot depend on obs (obs links util), so firings surface
// through the fire-hook function pointer. This bridge installs that hook and
// a scrape-time collector, making PR-2's fault handling observable:
//
//   * every firing emits one structured warn line
//     ("failpoint fired" site=irr.read action=error), rate-limited like all
//     logs, so injected faults are visible in production logs;
//   * rpslyzer_failpoint_fires_total{site="..."} appears on the global
//     registry's metrics page, mirroring failpoint::hit_counts() exactly
//     (a collector reads the authoritative counts at scrape time — no
//     double bookkeeping to drift).
//
// Idempotent; called from daemon startup and the CLI entry points.

namespace rpslyzer::obs {

void install_failpoint_observer();

}  // namespace rpslyzer::obs
