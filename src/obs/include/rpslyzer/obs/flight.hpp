#pragma once
// Per-query flight recorder: a fixed-size lock-free ring of the last N
// query outcomes, always on in production (unlike spans, which are opt-in
// and record everything). Each accepted query leaves one FlightRecord —
// trace id, verb, stage timings, cache hit/miss, generation, response
// bytes, outcome — so `!trace <id>` can reconstruct a single query after
// the fact and `!slow` / deadline-miss snapshots surface the tail.
//
// Concurrency: writers are the worker pool plus the event loop; readers
// are admin verbs (`!slow`, `!trace`) and post-mortem snapshot dumps.
// Each slot is a seqlock: a writer claims a monotonically increasing
// ticket (slot = ticket & mask), marks the slot odd, stores the payload
// as relaxed atomic words, then publishes ticket*2+2 with release. A
// reader validates the sequence before and after copying the words and
// simply skips slots that were mid-write or got overwritten — no lock,
// no retry loop, no writer stall. All payload accesses are atomic, so
// the race a torn read represents is benign *and* TSan-clean.
//
// Cost discipline: `record()` starts with one relaxed load of the
// enabled flag (same pattern as tracing_on()); the disabled path must
// stay under 10 ns and the enabled path under 100 ns — gated by
// bench/perf_flight.cpp (BENCH_flight.json).

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace rpslyzer::obs {

/// One recorded query. Trivially copyable: the ring stores it as packed
/// 64-bit atomic words.
struct FlightRecord {
  std::uint64_t trace_id = 0;  ///< trace context of the query (never 0 once recorded)
  char verb[16] = {};          ///< first token of the query line, NUL-padded
  std::uint64_t end_us = 0;    ///< microseconds since recorder construction
  std::uint64_t generation = 0;  ///< corpus generation that answered
  std::uint32_t queue_us = 0;  ///< accept → worker pickup (0 for inline verbs)
  std::uint32_t eval_us = 0;   ///< worker evaluation (cache miss path) or 0
  std::uint32_t total_us = 0;  ///< accept → response enqueued
  std::uint32_t bytes = 0;     ///< framed response size
  char cache = '-';            ///< 'h' hit, 'm' miss, '-' not a cached verb
  char outcome = '?';          ///< first response byte: A/C/D/F, or 'T' timeout
  char reserved[6] = {};       ///< pad to an 8-byte multiple for word packing
};
static_assert(std::is_trivially_copyable_v<FlightRecord>, "ring stores raw words");
static_assert(sizeof(FlightRecord) % 8 == 0, "records pack into u64 words");

/// `trace=<hex> verb=... outcome=A cache=h gen=N bytes=N queue-us=N
/// eval-us=N total-us=N t-us=N` — the one-line spelling shared by `!slow`,
/// ring snapshots, and tests.
std::string format_flight_record(const FlightRecord& record);

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 2). A zero capacity
  /// constructs a disabled recorder that drops everything.
  explicit FlightRecorder(std::size_t capacity);

  /// One relaxed load; callers should branch on this before composing a
  /// FlightRecord so the disabled path does no work at all.
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// Append one record (no-op when disabled). Lock-free, multi-producer.
  void record(const FlightRecord& record) noexcept;

  /// Copy `record` into the bounded slow-query log (mutex-protected cold
  /// path; callers gate on their `--slow-ms` threshold first). Keeps the
  /// most recent kSlowCapacity entries.
  void note_slow(const FlightRecord& record);

  /// The surviving ring contents, oldest first. Slots mid-write or
  /// overwritten during the scan are skipped, not retried.
  std::vector<FlightRecord> snapshot() const;

  /// All surviving records (ring + slow log, deduplicated by identity not
  /// attempted — ring wins) matching `trace_id`, oldest first.
  std::vector<FlightRecord> find(std::uint64_t trace_id) const;

  /// Slow-log contents, oldest first.
  std::vector<FlightRecord> slow_snapshot() const;

  /// Records ever accepted / evicted from the ring by wraparound. The
  /// eviction count is the "recorder drop count" edges report in their
  /// heartbeat digest.
  std::uint64_t total() const noexcept { return next_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const noexcept;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  static constexpr std::size_t kSlowCapacity = 128;

 private:
  static constexpr std::size_t kWords = sizeof(FlightRecord) / 8;
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = never written; odd = mid-write
    std::atomic<std::uint64_t> words[kWords] = {};
  };

  bool read_slot(const Slot& slot, std::uint64_t want_ticket, FlightRecord* out) const;

  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> next_{0};  // tickets issued
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;

  mutable std::mutex slow_mu_;
  std::vector<FlightRecord> slow_;  // bounded circular, slow_start_ = oldest
  std::size_t slow_start_ = 0;
};

}  // namespace rpslyzer::obs
