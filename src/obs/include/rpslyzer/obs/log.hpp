#pragma once
// Structured, leveled, rate-limited logging.
//
// Replaces scattered fprintf(stderr, ...) with one sink that every
// subsystem shares. A log call names a component ("server", "loader",
// "failpoint"), a fixed message, and typed key=value fields:
//
//   obs::log_warn("loader", "source quarantined",
//                 {{"source", name}, {"reason", detail}});
//
// Output is either logfmt-style text (default):
//   2026-08-06T12:00:00.123Z WARN loader source quarantined source=RIPE reason="..."
// or JSON lines (`set_log_json(true)` / RPSLYZER_LOG="info,json"):
//   {"component":"loader","level":"warn","msg":"source quarantined",...}
//
// Fast path: a call below the active level is one relaxed atomic load and a
// branch — cheap enough to leave debug logging compiled into hot paths.
//
// Rate limiting: each (component, message) pair may emit at most
// kRateLimitBurst lines per kRateLimitWindow; excess lines are dropped and
// summarized ("suppressed=N") when the window rolls over, so a failpoint
// storm or reconnect flood cannot turn the log into the bottleneck. The
// message string is the rate-limit key, which is why messages must be fixed
// strings with variability carried in fields.
//
// Configuration: RPSLYZER_LOG environment ("debug"|"info"|"warn"|"error"|
// "off", optionally ",json"), read once at first use; set_log_level /
// set_log_json override programmatically (CLI --log-level/--log-json).
// Default level: warn (daemons raise it to info at startup).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace rpslyzer::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level) noexcept;
std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

namespace detail {
extern std::atomic<std::uint8_t> log_level;
void log_impl(LogLevel level, std::string_view component, std::string_view message,
              const struct LogFieldList& fields);
}  // namespace detail

/// One relaxed load: the gate every log call passes through first.
inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<std::uint8_t>(level) >=
         detail::log_level.load(std::memory_order_relaxed);
}

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
void set_log_json(bool json) noexcept;
bool log_json() noexcept;

/// Redirect emitted lines (tests). nullptr restores the default stderr sink.
/// The sink receives one complete line *without* the trailing newline.
void set_log_sink(std::function<void(std::string_view)> sink);

/// A typed field value; converting constructors keep call sites terse.
class LogValue {
 public:
  LogValue(std::string_view s) : v_(std::string(s)) {}
  LogValue(const std::string& s) : v_(s) {}
  LogValue(const char* s) : v_(std::string(s)) {}
  LogValue(bool b) : v_(b) {}
  LogValue(double d) : v_(d) {}
  // Integral overloads cover the fundamental types; std::int64_t/uint64_t
  // alias `long`/`unsigned long` on LP64, so fixed-width overloads would
  // collide with these.
  LogValue(int i) : v_(static_cast<std::int64_t>(i)) {}
  LogValue(unsigned u) : v_(static_cast<std::uint64_t>(u)) {}
  LogValue(long i) : v_(static_cast<std::int64_t>(i)) {}
  LogValue(long long i) : v_(static_cast<std::int64_t>(i)) {}
  LogValue(unsigned long u) : v_(static_cast<std::uint64_t>(u)) {}
  LogValue(unsigned long long u) : v_(static_cast<std::uint64_t>(u)) {}

  const std::variant<std::string, bool, double, std::int64_t, std::uint64_t>& get()
      const noexcept {
    return v_;
  }

 private:
  std::variant<std::string, bool, double, std::int64_t, std::uint64_t> v_;
};

struct LogField {
  std::string_view key;
  LogValue value;
};

namespace detail {
struct LogFieldList {
  const LogField* data = nullptr;
  std::size_t size = 0;
};
}  // namespace detail

/// Core entry point; prefer the leveled wrappers below.
inline void log(LogLevel level, std::string_view component, std::string_view message,
                std::initializer_list<LogField> fields = {}) {
  if (!log_enabled(level)) return;
  detail::log_impl(level, component, message,
                   detail::LogFieldList{fields.begin(), fields.size()});
}

inline void log_debug(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kDebug, component, message, fields);
}
inline void log_info(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kInfo, component, message, fields);
}
inline void log_warn(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kWarn, component, message, fields);
}
inline void log_error(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kError, component, message, fields);
}

/// Rate-limit parameters (exposed so tests don't hard-code them).
inline constexpr std::uint32_t kRateLimitBurst = 32;
inline constexpr std::chrono::milliseconds kRateLimitWindow{1000};

}  // namespace rpslyzer::obs
