#include "rpslyzer/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rpslyzer::obs {

namespace detail {
std::atomic<bool> metrics_enabled{true};
}  // namespace detail

void set_metrics_enabled(bool on) noexcept {
  detail::metrics_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::size_t Histogram::bucket_for(double v) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());  // end() = overflow
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  snap.buckets.resize(bounds_.size() + 1);
  // Retry until the count is stable across the pass and accounts for every
  // bucket increment the pass saw; a handful of attempts suffices unless the
  // histogram is under sustained fire, in which case the final pass is still
  // a near-coherent view (off by at most the writers in flight).
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t before = count_.load(std::memory_order_acquire);
    std::uint64_t bucket_total = 0;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      bucket_total += snap.buckets[i];
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    const std::uint64_t after = count_.load(std::memory_order_acquire);
    snap.count = after;
    if (before == after && bucket_total == after) break;
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::percentile(double p,
                                       const std::vector<double>& bounds) const noexcept {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  std::uint64_t rank =
      static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Overflow-bucket hits clamp to the last finite bound.
      return i < bounds.size() ? bounds[i] : (bounds.empty() ? 0 : bounds.back());
    }
  }
  return bounds.empty() ? 0 : bounds.back();
}

std::vector<double> exponential_bounds(double start, double factor, std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

namespace {

/// Prometheus label values escape backslash, double quote, and newline.
/// Everything else — including multi-byte UTF-8 sequences — passes through
/// byte-identical, per the text exposition format.
void append_escaped(std::string& out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

/// HELP text escapes backslash and newline only (no quote escaping — HELP is
/// not quoted). An unescaped newline here would split the header line and
/// corrupt every sample after it.
void append_escaped_help(std::string& out, std::string_view help) {
  for (char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void append_labels(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_escaped(out, value);
    out += '"';
  }
  out += '}';
}

void append_number(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::abs(v) < 9.0e15) {
    out += std::to_string(static_cast<std::int64_t>(v));
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string sample_line(std::string_view name, std::string_view suffix,
                        const Labels& labels, double value) {
  std::string line(name);
  line += suffix;
  append_labels(line, labels);
  line += ' ';
  append_number(line, value);
  line += '\n';
  return line;
}

}  // namespace

void CollectSink::sample(std::string_view name, std::string_view help, MetricType type,
                         const Labels& labels, double value) {
  GatheredFamily& family = families_[std::string(name)];
  if (family.lines.empty()) family.type = type;
  // First *non-empty* help wins: merging a name-only registration with a
  // documented one (disjoint label sets across registries) keeps the docs.
  if (family.help.empty() && !help.empty()) family.help = std::string(help);
  family.lines.push_back(sample_line(name, "", labels, value));
}

void CollectSink::counter(std::string_view name, std::string_view help,
                          const Labels& labels, double value) {
  sample(name, help, MetricType::kCounter, labels, value);
}

void CollectSink::gauge(std::string_view name, std::string_view help,
                        const Labels& labels, double value) {
  sample(name, help, MetricType::kGauge, labels, value);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // leaked on purpose
  return *instance;
}

namespace {

bool labels_equal(const Labels& a, const Labels& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || a[i].second != b[i].second) return false;
  }
  return true;
}

/// Lexicographic (key, value) order, so exposition is deterministic no
/// matter what order instances were first touched in.
bool labels_less(const Labels& a, const Labels& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(std::string(name));
  StoredFamily& family = it->second;
  if (inserted) {
    family.help = std::string(help);
    family.type = MetricType::kCounter;
  }
  for (auto& existing : family.instances) {
    if (labels_equal(existing.labels, labels) && existing.counter) {
      return *existing.counter;
    }
  }
  family.instances.push_back(
      Instance{labels, std::make_unique<Counter>(), nullptr, nullptr});
  return *family.instances.back().counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(std::string(name));
  StoredFamily& family = it->second;
  if (inserted) {
    family.help = std::string(help);
    family.type = MetricType::kGauge;
  }
  for (auto& existing : family.instances) {
    if (labels_equal(existing.labels, labels) && existing.gauge) return *existing.gauge;
  }
  family.instances.push_back(
      Instance{labels, nullptr, std::make_unique<Gauge>(), nullptr});
  return *family.instances.back().gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                      std::vector<double> bounds, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(std::string(name));
  StoredFamily& family = it->second;
  if (inserted) {
    family.help = std::string(help);
    family.type = MetricType::kHistogram;
  }
  for (auto& existing : family.instances) {
    if (labels_equal(existing.labels, labels) && existing.histogram) {
      return *existing.histogram;
    }
  }
  family.instances.push_back(
      Instance{labels, nullptr, nullptr, std::make_unique<Histogram>(std::move(bounds))});
  return *family.instances.back().histogram;
}

void MetricsRegistry::register_collector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

void MetricsRegistry::gather(GatheredFamilies& out) const {
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, family] : families_) {
      GatheredFamily& gathered = out[name];
      if (gathered.lines.empty()) gathered.type = family.type;
      if (gathered.help.empty() && !family.help.empty()) gathered.help = family.help;
      // Render instances in label order, not first-touch order, so the page
      // is byte-stable across runs that register instances from racing
      // threads. Histogram instances emit their bucket/sum/count block as a
      // unit, which sorting whole instances (not lines) preserves.
      std::vector<const Instance*> ordered;
      ordered.reserve(family.instances.size());
      for (const Instance& inst : family.instances) ordered.push_back(&inst);
      std::sort(ordered.begin(), ordered.end(),
                [](const Instance* a, const Instance* b) {
                  return labels_less(a->labels, b->labels);
                });
      for (const Instance* inst_ptr : ordered) {
        const Instance& inst = *inst_ptr;
        if (inst.counter) {
          gathered.lines.push_back(sample_line(
              name, "", inst.labels, static_cast<double>(inst.counter->value())));
        } else if (inst.gauge) {
          gathered.lines.push_back(sample_line(
              name, "", inst.labels, static_cast<double>(inst.gauge->value())));
        } else if (inst.histogram) {
          const Histogram::Snapshot snap = inst.histogram->snapshot();
          const std::vector<double>& bounds = inst.histogram->bounds();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i <= bounds.size(); ++i) {
            cumulative += snap.buckets[i];
            Labels with_le = inst.labels;
            if (i < bounds.size()) {
              char le[32];
              std::snprintf(le, sizeof(le), "%g", bounds[i]);
              with_le.emplace_back("le", le);
            } else {
              with_le.emplace_back("le", "+Inf");
            }
            gathered.lines.push_back(sample_line(name, "_bucket", with_le,
                                                 static_cast<double>(cumulative)));
          }
          gathered.lines.push_back(sample_line(name, "_sum", inst.labels, snap.sum));
          gathered.lines.push_back(sample_line(name, "_count", inst.labels,
                                               static_cast<double>(snap.count)));
        }
      }
    }
    collectors = collectors_;
  }
  // Collectors run outside the lock: they may take other locks (cache
  // shards, the failpoint registry) and must never nest under ours.
  CollectSink sink(out);
  for (const Collector& collect : collectors) collect(sink);
}

std::string MetricsRegistry::to_prometheus() const { return obs::to_prometheus({this}); }

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (Instance& inst : family.instances) {
      if (inst.counter) inst.counter->reset();
      if (inst.gauge) inst.gauge->reset();
      if (inst.histogram) inst.histogram->reset();
    }
  }
  collectors_.clear();
}

std::string to_prometheus(std::initializer_list<const MetricsRegistry*> registries) {
  GatheredFamilies families;
  for (const MetricsRegistry* registry : registries) {
    if (registry != nullptr) registry->gather(families);
  }
  std::string out;
  for (auto& [name, family] : families) {
    out += "# HELP " + name + " ";
    append_escaped_help(out, family.help.empty() ? std::string_view("(undocumented)")
                                                 : std::string_view(family.help));
    out += '\n';
    out += "# TYPE " + name + " ";
    out += type_name(family.type);
    out += '\n';
    // Counter/gauge families sort their sample lines so merged pages (and
    // collector output) are deterministic; histogram families keep their
    // per-instance bucket ordering, with instances already label-sorted at
    // gather time.
    if (family.type != MetricType::kHistogram) {
      std::sort(family.lines.begin(), family.lines.end());
    }
    for (const std::string& line : family.lines) out += line;
  }
  return out;
}

}  // namespace rpslyzer::obs
