#include "rpslyzer/obs/flight.hpp"

#include <cstdio>

#include "rpslyzer/obs/trace.hpp"

namespace rpslyzer::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string format_flight_record(const FlightRecord& record) {
  char verb[sizeof(record.verb) + 1];
  std::memcpy(verb, record.verb, sizeof(record.verb));
  verb[sizeof(record.verb)] = '\0';
  char line[256];
  std::snprintf(line, sizeof(line),
                "trace=%s verb=%s outcome=%c cache=%c gen=%llu bytes=%u "
                "queue-us=%u eval-us=%u total-us=%u t-us=%llu",
                trace_hex(record.trace_id).c_str(), verb[0] != '\0' ? verb : "?",
                record.outcome, record.cache,
                static_cast<unsigned long long>(record.generation), record.bytes,
                record.queue_us, record.eval_us, record.total_us,
                static_cast<unsigned long long>(record.end_us));
  return std::string(line);
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : enabled_(capacity > 0), mask_(round_up_pow2(capacity == 0 ? 2 : capacity) - 1) {
  slots_ = std::make_unique<Slot[]>(mask_ + 1);
  slow_.reserve(kSlowCapacity);
}

void FlightRecorder::record(const FlightRecord& record) noexcept {
  if (!enabled()) return;
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Seqlock write: odd marks the slot busy so a concurrent reader skips it;
  // the release store of ticket*2+2 publishes the payload words.
  slot.seq.store(ticket * 2 + 1, std::memory_order_release);
  std::uint64_t words[kWords];
  std::memcpy(words, &record, sizeof(record));
  for (std::size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(ticket * 2 + 2, std::memory_order_release);
}

bool FlightRecorder::read_slot(const Slot& slot, std::uint64_t want_ticket,
                               FlightRecord* out) const {
  const std::uint64_t want_seq = want_ticket * 2 + 2;
  if (slot.seq.load(std::memory_order_acquire) != want_seq) return false;
  std::uint64_t words[kWords];
  for (std::size_t i = 0; i < kWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != want_seq) return false;
  std::memcpy(out, words, sizeof(*out));
  return true;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t capacity = mask_ + 1;
  const std::uint64_t begin = end > capacity ? end - capacity : 0;
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    FlightRecord record;
    if (read_slot(slots_[ticket & mask_], ticket, &record)) out.push_back(record);
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::find(std::uint64_t trace_id) const {
  std::vector<FlightRecord> out;
  for (const FlightRecord& record : snapshot()) {
    if (record.trace_id == trace_id) out.push_back(record);
  }
  if (out.empty()) {
    // The ring may have wrapped past it; the slow log keeps outliers longer.
    for (const FlightRecord& record : slow_snapshot()) {
      if (record.trace_id == trace_id) out.push_back(record);
    }
  }
  return out;
}

void FlightRecorder::note_slow(const FlightRecord& record) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_.size() < kSlowCapacity) {
    slow_.push_back(record);
  } else {
    slow_[slow_start_] = record;
    slow_start_ = (slow_start_ + 1) % kSlowCapacity;
  }
}

std::vector<FlightRecord> FlightRecorder::slow_snapshot() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  std::vector<FlightRecord> out;
  out.reserve(slow_.size());
  for (std::size_t i = 0; i < slow_.size(); ++i) {
    out.push_back(slow_[(slow_start_ + i) % slow_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::dropped() const noexcept {
  const std::uint64_t total = next_.load(std::memory_order_relaxed);
  const std::uint64_t capacity = mask_ + 1;
  return total > capacity ? total - capacity : 0;
}

}  // namespace rpslyzer::obs
