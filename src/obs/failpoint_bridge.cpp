#include "rpslyzer/obs/failpoint_bridge.hpp"

#include <mutex>
#include <string>

#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer::obs {

namespace {

const char* kind_name(util::failpoint::Hit::Kind kind) {
  using Kind = util::failpoint::Hit::Kind;
  switch (kind) {
    case Kind::kError:
      return "error";
    case Kind::kDelay:
      return "delay";
    case Kind::kTruncate:
      return "truncate";
    case Kind::kNone:
      break;
  }
  return "none";
}

void on_fire(std::string_view site, const util::failpoint::Hit& hit) {
  log_warn("failpoint", "failpoint fired",
           {{"site", site},
            {"action", kind_name(hit.kind)},
            {"detail", hit.is_error() ? std::string_view(hit.message)
                                      : std::string_view{}}});
}

}  // namespace

void install_failpoint_observer() {
  static std::once_flag once;
  std::call_once(once, [] {
    util::failpoint::set_fire_hook(&on_fire);
    MetricsRegistry::global().register_collector([](CollectSink& sink) {
      for (const auto& [site, count] : util::failpoint::hit_counts()) {
        sink.counter("rpslyzer_failpoint_fires_total",
                     "Failpoint firings by site since process start (or last "
                     "clear_all)",
                     {{"site", site}}, static_cast<double>(count));
      }
    });
  });
}

}  // namespace rpslyzer::obs
