#include "rpslyzer/obs/trace.hpp"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "rpslyzer/json/json.hpp"
#include "rpslyzer/util/rand.hpp"

namespace rpslyzer::obs {

namespace detail {
std::atomic<bool> trace_enabled{false};
thread_local std::uint64_t current_trace = 0;
}  // namespace detail

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_ns() noexcept {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Small dense thread index for the exported `tid` field: stable within a
/// process run and friendlier to chrome://tracing's row layout than OS ids.
std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

thread_local std::uint32_t span_depth = 0;

}  // namespace

std::uint64_t next_trace_id() noexcept {
  // splitmix64 finalizer over a process-wide counter seeded from the clock:
  // unique per run, well mixed, and never 0 (0 means "no trace context").
  static std::atomic<std::uint64_t> counter{steady_now_ns() | 1};
  const std::uint64_t x = util::mix64(
      counter.fetch_add(util::kSplitMix64Gamma, std::memory_order_relaxed));
  return x == 0 ? 1 : x;
}

std::string trace_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

bool parse_trace_hex(std::string_view text, std::uint64_t* out) noexcept {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // leaked: usable at any exit stage
  return *instance;
}

void Tracer::set_enabled(bool on) {
  if (on) {
    clear();
    epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  }
  detail::trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_since_epoch_us() const noexcept {
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  const std::uint64_t now = steady_now_ns();
  return now > epoch ? (now - epoch) / 1000 : 0;
}

void Tracer::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= kMaxRecords) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::uint64_t Tracer::dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::chrome_trace() const {
  json::Array events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.reserve(records_.size());
    for (const SpanRecord& record : records_) {
      json::Object event;
      event.emplace("name", record.name);
      event.emplace("cat", "rpslyzer");
      event.emplace("ph", "X");
      event.emplace("ts", static_cast<std::int64_t>(record.start_us));
      event.emplace("dur", static_cast<std::int64_t>(record.wall_us));
      event.emplace("pid", 1);
      event.emplace("tid", static_cast<std::int64_t>(record.tid));
      json::Object args;
      if (!record.arg.empty()) args.emplace("arg", record.arg);
      if (record.trace != 0) args.emplace("trace", trace_hex(record.trace));
      args.emplace("cpu_us", static_cast<std::int64_t>(record.cpu_us));
      args.emplace("depth", static_cast<std::int64_t>(record.depth));
      event.emplace("args", std::move(args));
      events.push_back(json::Value(std::move(event)));
    }
  }
  json::Object document;
  document.emplace("traceEvents", std::move(events));
  document.emplace("displayTimeUnit", "ms");
  const std::uint64_t dropped = dropped_.load(std::memory_order_relaxed);
  if (dropped > 0) {
    document.emplace("rpslyzerDroppedSpans", static_cast<std::int64_t>(dropped));
  }
  return json::dump(json::Value(std::move(document)));
}

bool Tracer::write_chrome_trace(const std::string& path, std::string* error) const {
  const std::string body = chrome_trace();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  const bool closed = std::fclose(file) == 0;
  if (!(ok && closed)) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

std::string Tracer::summary_table() const {
  struct Aggregate {
    std::uint64_t count = 0;
    std::uint64_t wall_us = 0;
    std::uint64_t cpu_us = 0;
  };
  std::map<std::string, Aggregate> by_stage;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const SpanRecord& record : records_) {
      Aggregate& agg = by_stage[record.name];
      ++agg.count;
      agg.wall_us += record.wall_us;
      agg.cpu_us += record.cpu_us;
    }
  }
  std::vector<std::pair<std::string, Aggregate>> rows(by_stage.begin(), by_stage.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.wall_us > b.second.wall_us;
  });

  std::size_t name_width = 5;  // "stage"
  for (const auto& [name, agg] : rows) name_width = std::max(name_width, name.size());

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %8s %12s %12s %12s\n",
                static_cast<int>(name_width), "stage", "count", "wall_ms", "cpu_ms",
                "mean_us");
  out += line;
  for (const auto& [name, agg] : rows) {
    const double wall_ms = static_cast<double>(agg.wall_us) / 1000.0;
    const double cpu_ms = static_cast<double>(agg.cpu_us) / 1000.0;
    const double mean_us =
        agg.count == 0 ? 0.0
                       : static_cast<double>(agg.wall_us) / static_cast<double>(agg.count);
    std::snprintf(line, sizeof(line), "%-*s %8llu %12.3f %12.3f %12.1f\n",
                  static_cast<int>(name_width), name.c_str(),
                  static_cast<unsigned long long>(agg.count), wall_ms, cpu_ms, mean_us);
    out += line;
  }
  const std::uint64_t dropped = dropped_.load(std::memory_order_relaxed);
  if (dropped > 0) {
    std::snprintf(line, sizeof(line), "(%llu spans dropped past the %zu-record cap)\n",
                  static_cast<unsigned long long>(dropped),
                  static_cast<std::size_t>(kMaxRecords));
    out += line;
  }
  return out;
}

void Span::begin(std::string_view name, std::string_view arg) {
  name_ = name;
  arg_ = std::string(arg);
  depth_ = span_depth++;
  start_us_ = Tracer::global().now_since_epoch_us();
  start_cpu_ns_ = thread_cpu_ns();
}

void Span::finish() {
  Tracer& tracer = Tracer::global();
  const std::uint64_t end_us = tracer.now_since_epoch_us();
  const std::uint64_t end_cpu_ns = thread_cpu_ns();
  --span_depth;
  SpanRecord record;
  record.name = std::string(name_);
  record.arg = std::move(arg_);
  record.start_us = start_us_;
  record.wall_us = end_us > start_us_ ? end_us - start_us_ : 0;
  record.cpu_us = end_cpu_ns > start_cpu_ns_ ? (end_cpu_ns - start_cpu_ns_) / 1000 : 0;
  record.tid = thread_index();
  record.depth = depth_;
  record.trace = current_trace_id();
  tracer.record(std::move(record));
}

}  // namespace rpslyzer::obs
