#include "rpslyzer/obs/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <unordered_map>

#include "rpslyzer/json/json.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::obs {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  name = util::trim(name);
  if (util::iequals(name, "debug")) return LogLevel::kDebug;
  if (util::iequals(name, "info")) return LogLevel::kInfo;
  if (util::iequals(name, "warn") || util::iequals(name, "warning")) {
    return LogLevel::kWarn;
  }
  if (util::iequals(name, "error")) return LogLevel::kError;
  if (util::iequals(name, "off") || util::iequals(name, "none")) return LogLevel::kOff;
  return std::nullopt;
}

namespace detail {
std::atomic<std::uint8_t> log_level{static_cast<std::uint8_t>(LogLevel::kWarn)};
}  // namespace detail

namespace {

std::atomic<bool> json_mode{false};

struct SinkHolder {
  std::mutex mu;
  std::function<void(std::string_view)> sink;  // empty = stderr

  // Rate limiting: per (component + '\0' + message) emission window.
  struct Window {
    std::chrono::steady_clock::time_point start{};
    std::uint32_t emitted = 0;
    std::uint64_t suppressed = 0;
  };
  std::unordered_map<std::string, Window> windows;
};

SinkHolder& sink_holder() {
  static SinkHolder* holder = new SinkHolder();  // leaked: usable at any exit stage
  return *holder;
}

// One-time environment configuration, mirroring util/failpoint's pattern so
// binaries need no explicit init call: RPSLYZER_LOG="debug" or "info,json".
std::once_flag env_once;

void configure_from_env() {
  const char* env = std::getenv("RPSLYZER_LOG");
  if (env == nullptr || *env == '\0') return;
  for (std::string_view part : util::split(env, ',')) {
    part = util::trim(part);
    if (part.empty()) continue;
    if (util::iequals(part, "json")) {
      json_mode.store(true, std::memory_order_relaxed);
    } else if (util::iequals(part, "text")) {
      json_mode.store(false, std::memory_order_relaxed);
    } else if (auto level = parse_log_level(part)) {
      detail::log_level.store(static_cast<std::uint8_t>(*level),
                              std::memory_order_relaxed);
    } else {
      std::fprintf(stderr, "RPSLYZER_LOG: ignoring unknown token: %.*s\n",
                   static_cast<int>(part.size()), part.data());
    }
  }
}

[[maybe_unused]] const bool env_configured_at_startup =
    (std::call_once(env_once, configure_from_env), true);

/// Wall-clock timestamp "2026-08-06T12:00:00.123Z" (UTC, millisecond).
std::string timestamp_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  gmtime_r(&seconds, &tm);
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                tm.tm_sec, static_cast<int>(millis));
  return buffer;
}

/// logfmt value: bare when it has no spaces/quotes/equals, else quoted with
/// backslash escapes.
void append_text_value(std::string& out, std::string_view value) {
  bool needs_quotes = value.empty();
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    out += value;
    return;
  }
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
}

void append_value(std::string& out, const LogValue& value) {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          append_text_value(out, v);
        } else if constexpr (std::is_same_v<T, bool>) {
          out += v ? "true" : "false";
        } else if constexpr (std::is_same_v<T, double>) {
          char buffer[32];
          std::snprintf(buffer, sizeof(buffer), "%g", v);
          out += buffer;
        } else {
          out += std::to_string(v);
        }
      },
      value.get());
}

json::Value json_value(const LogValue& value) {
  return std::visit(
      [](const auto& v) -> json::Value {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::uint64_t>) {
          return json::Value(static_cast<std::int64_t>(v));
        } else {
          return json::Value(v);
        }
      },
      value.get());
}

bool has_field(const detail::LogFieldList& fields, std::string_view key) {
  for (std::size_t i = 0; i < fields.size; ++i) {
    if (fields.data[i].key == key) return true;
  }
  return false;
}

/// The thread's ambient trace context (see obs::TraceContext) rides on every
/// log line emitted inside it, so one query is greppable end to end without
/// each call site having to thread the id through. An explicit "trace" field
/// from the caller wins.
std::uint64_t ambient_trace(const detail::LogFieldList& fields) {
  const std::uint64_t trace = current_trace_id();
  return (trace != 0 && !has_field(fields, "trace")) ? trace : 0;
}

std::string render_text(LogLevel level, std::string_view component,
                        std::string_view message, const detail::LogFieldList& fields,
                        std::uint64_t suppressed) {
  std::string line = timestamp_now();
  line += ' ';
  std::string level_name = util::upper(to_string(level));
  line += level_name;
  line += ' ';
  line += component;
  line += ' ';
  line += message;
  for (std::size_t i = 0; i < fields.size; ++i) {
    line += ' ';
    line += fields.data[i].key;
    line += '=';
    append_value(line, fields.data[i].value);
  }
  if (const std::uint64_t trace = ambient_trace(fields); trace != 0) {
    line += " trace=";
    line += trace_hex(trace);
  }
  if (suppressed > 0) {
    line += " suppressed=" + std::to_string(suppressed);
  }
  return line;
}

std::string render_json(LogLevel level, std::string_view component,
                        std::string_view message, const detail::LogFieldList& fields,
                        std::uint64_t suppressed) {
  json::Object object;
  object.emplace("ts", timestamp_now());
  object.emplace("level", to_string(level));
  object.emplace("component", std::string(component));
  object.emplace("msg", std::string(message));
  for (std::size_t i = 0; i < fields.size; ++i) {
    object.emplace(std::string(fields.data[i].key), json_value(fields.data[i].value));
  }
  if (const std::uint64_t trace = ambient_trace(fields); trace != 0) {
    object.emplace("trace", trace_hex(trace));
  }
  if (suppressed > 0) {
    object.emplace("suppressed", static_cast<std::int64_t>(suppressed));
  }
  return json::dump(json::Value(std::move(object)));
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(detail::log_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  std::call_once(env_once, configure_from_env);  // explicit config beats env
  detail::log_level.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
}

void set_log_json(bool json) noexcept {
  std::call_once(env_once, configure_from_env);
  json_mode.store(json, std::memory_order_relaxed);
}

bool log_json() noexcept { return json_mode.load(std::memory_order_relaxed); }

void set_log_sink(std::function<void(std::string_view)> sink) {
  SinkHolder& holder = sink_holder();
  std::lock_guard<std::mutex> lock(holder.mu);
  holder.sink = std::move(sink);
  holder.windows.clear();
}

namespace detail {

void log_impl(LogLevel level, std::string_view component, std::string_view message,
              const LogFieldList& fields) {
  std::call_once(env_once, configure_from_env);
  SinkHolder& holder = sink_holder();
  std::uint64_t suppressed = 0;
  std::function<void(std::string_view)> sink;
  {
    std::lock_guard<std::mutex> lock(holder.mu);
    std::string key;
    key.reserve(component.size() + message.size() + 1);
    key += component;
    key += '\0';
    key += message;
    SinkHolder::Window& window = holder.windows[key];
    const auto now = std::chrono::steady_clock::now();
    if (window.start == std::chrono::steady_clock::time_point{} ||
        now - window.start >= kRateLimitWindow) {
      // New window: report what the previous one dropped on its first line.
      suppressed = window.suppressed;
      window.start = now;
      window.emitted = 0;
      window.suppressed = 0;
    }
    if (window.emitted >= kRateLimitBurst) {
      ++window.suppressed;
      return;
    }
    ++window.emitted;
    sink = holder.sink;
  }
  const std::string line = json_mode.load(std::memory_order_relaxed)
                               ? render_json(level, component, message, fields, suppressed)
                               : render_text(level, component, message, fields, suppressed);
  if (sink) {
    sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace detail

}  // namespace rpslyzer::obs
