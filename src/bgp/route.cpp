#include "rpslyzer/bgp/route.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::bgp {

const char* to_string(RouteIssue issue) noexcept {
  switch (issue) {
    case RouteIssue::kOk:
      return "ok";
    case RouteIssue::kSingleAs:
      return "single-as";
    case RouteIssue::kHasAsSet:
      return "as-set";
    case RouteIssue::kMalformed:
      return "malformed";
  }
  return "unknown";
}

std::vector<Asn> strip_prepends(const std::vector<Asn>& path) {
  std::vector<Asn> out;
  out.reserve(path.size());
  for (Asn asn : path) {
    if (out.empty() || out.back() != asn) out.push_back(asn);
  }
  return out;
}

std::optional<std::vector<Asn>> parse_path(std::string_view text, bool& has_as_set) {
  has_as_set = false;
  std::vector<Asn> path;
  // AS_SET segments appear as "{1,2,3}" (bgpdump) — detect and flag.
  if (text.find('{') != std::string_view::npos) {
    has_as_set = true;
    return std::nullopt;
  }
  for (auto token : util::split_ws(text)) {
    // Accept both bare numbers and "AS123" spellings.
    if (util::istarts_with(token, "AS")) token.remove_prefix(2);
    auto asn = util::parse_u32(token);
    if (!asn) return std::nullopt;
    path.push_back(*asn);
  }
  if (path.empty()) return std::nullopt;
  return strip_prepends(path);
}

std::optional<ParsedRoute> parse_table_dump_line(std::string_view line) {
  line = util::trim(line);
  if (line.empty() || line.front() == '#' || line.front() == '%') return std::nullopt;

  std::string_view prefix_field;
  std::string_view path_field;
  auto fields = util::split(line, '|');
  if (!fields.empty() && util::iequals(util::trim(fields[0]), "TABLE_DUMP2")) {
    // bgpdump -m: TABLE_DUMP2|ts|B|peer-ip|peer-asn|prefix|path|origin|...
    if (fields.size() < 7) {
      return ParsedRoute{{}, RouteIssue::kMalformed};
    }
    prefix_field = util::trim(fields[5]);
    path_field = util::trim(fields[6]);
  } else if (fields.size() >= 2) {
    prefix_field = util::trim(fields[0]);
    path_field = util::trim(fields[1]);
  } else {
    return ParsedRoute{{}, RouteIssue::kMalformed};
  }

  auto prefix = net::Prefix::parse(prefix_field);
  if (!prefix) return ParsedRoute{{}, RouteIssue::kMalformed};

  bool has_as_set = false;
  auto path = parse_path(path_field, has_as_set);
  if (has_as_set) return ParsedRoute{{*prefix, {}}, RouteIssue::kHasAsSet};
  if (!path) return ParsedRoute{{*prefix, {}}, RouteIssue::kMalformed};

  ParsedRoute out{{*prefix, std::move(*path)}, RouteIssue::kOk};
  if (out.route.path.size() < 2) out.issue = RouteIssue::kSingleAs;
  return out;
}

std::vector<Route> parse_table_dump(std::string_view text, DumpStats* stats) {
  std::vector<Route> routes;
  for (auto line : util::split(text, '\n')) {
    auto parsed = parse_table_dump_line(line);
    if (!parsed) continue;
    if (stats != nullptr) {
      ++stats->total_lines;
      switch (parsed->issue) {
        case RouteIssue::kOk:
          ++stats->routes;
          break;
        case RouteIssue::kSingleAs:
          ++stats->single_as;
          break;
        case RouteIssue::kHasAsSet:
          ++stats->with_as_set;
          break;
        case RouteIssue::kMalformed:
          ++stats->malformed;
          break;
      }
    }
    if (parsed->issue == RouteIssue::kOk) routes.push_back(std::move(parsed->route));
  }
  return routes;
}

}  // namespace rpslyzer::bgp
