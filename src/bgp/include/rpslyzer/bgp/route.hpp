#pragma once
// BGP route substrate: table-dump parsing and AS-path normalization.
//
// The paper verifies routes observed at RIPE RIS and RouteViews collectors
// (§5): "For each observed BGP route, we extract the AS-path A and prefix
// P, removing prepended ASes. We ignore 0.06% of single-AS routes ... We
// also ignore 0.03% of routes whose AS-paths contain BGP AS-sets." This
// module implements exactly that preprocessing.
//
// Two text formats are accepted:
//  * simple pipe format "prefix|asn asn asn ..." (our synthetic dumps);
//  * bgpdump -m TABLE_DUMP2 lines
//    "TABLE_DUMP2|<ts>|B|<peer-ip>|<peer-asn>|<prefix>|<path>|<origin>|..."

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rpslyzer/net/prefix.hpp"

namespace rpslyzer::bgp {

using Asn = std::uint32_t;

/// One BGP route: destination prefix plus AS path in BGP order (element 0 =
/// the collector peer / most recent hop, last element = origin AS).
struct Route {
  net::Prefix prefix;
  std::vector<Asn> path;

  Asn origin() const noexcept { return path.empty() ? 0 : path.back(); }
  friend bool operator==(const Route&, const Route&) = default;
};

/// Why a route was excluded from verification.
enum class RouteIssue : std::uint8_t {
  kOk,
  kSingleAs,    // directly exported by a collector peer: no inter-AS link
  kHasAsSet,    // AS_SET segment in the path (deprecated, RFC 6472)
  kMalformed,   // unparsable prefix or path
};

const char* to_string(RouteIssue issue) noexcept;

struct ParsedRoute {
  Route route;
  RouteIssue issue = RouteIssue::kOk;
};

/// Remove prepending: collapse consecutive duplicate ASNs.
std::vector<Asn> strip_prepends(const std::vector<Asn>& path);

/// Parse one AS-path string; prepends removed. nullopt on malformed input;
/// `has_as_set` reports "{...}" AS_SET segments (path still unusable).
std::optional<std::vector<Asn>> parse_path(std::string_view text, bool& has_as_set);

/// Parse one table-dump line (either accepted format). Empty/comment lines
/// return nullopt; otherwise a ParsedRoute whose issue reflects the checks
/// above.
std::optional<ParsedRoute> parse_table_dump_line(std::string_view line);

/// Counters over a full dump parse.
struct DumpStats {
  std::size_t total_lines = 0;
  std::size_t routes = 0;       // usable routes (issue == kOk)
  std::size_t single_as = 0;
  std::size_t with_as_set = 0;
  std::size_t malformed = 0;
};

/// Parse a whole dump; only usable routes are returned.
std::vector<Route> parse_table_dump(std::string_view text, DumpStats* stats = nullptr);

}  // namespace rpslyzer::bgp
