#include "rpslyzer/rpsl/expr_parser.hpp"

#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::rpsl {

namespace {

using util::iequals;
using util::istarts_with;
using util::trim;

/// Split an atom into (body, range op). "AS-FOO^24-32" -> ("AS-FOO", ^24-32).
/// Returns nullopt when the suffix after '^' is not a valid range operator.
std::optional<std::pair<std::string_view, net::RangeOp>> split_range_op(std::string_view atom) {
  const std::size_t caret = atom.find('^');
  if (caret == std::string_view::npos) return std::make_pair(atom, net::RangeOp::none());
  auto op = net::RangeOp::parse(atom.substr(caret + 1));
  if (!op) return std::nullopt;
  return std::make_pair(atom.substr(0, caret), *op);
}

bool is_keyword_boundary(char c) noexcept { return !(util::is_alnum(c) || c == '_' || c == '-'); }

}  // namespace

std::string_view take_until_keywords(Cursor& cur, std::initializer_list<std::string_view> keywords,
                                     char stop_char) {
  cur.skip_ws();
  std::string_view text = cur.remaining();
  std::size_t i = 0;
  int depth = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '{' || c == '(') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}' || c == ')') {
      if (depth == 0) break;
      --depth;
      ++i;
      continue;
    }
    if (depth == 0) {
      if (c == stop_char) break;
      // Keyword check only at word boundaries.
      const bool at_boundary = i == 0 || is_keyword_boundary(text[i - 1]);
      if (at_boundary) {
        bool hit = false;
        for (auto kw : keywords) {
          if (i + kw.size() <= text.size() && iequals(text.substr(i, kw.size()), kw) &&
              (i + kw.size() == text.size() || is_keyword_boundary(text[i + kw.size()]))) {
            hit = true;
            break;
          }
        }
        if (hit) break;
      }
    }
    ++i;
  }
  cur.seek(cur.pos() + i);
  return trim(text.substr(0, i));
}

// ---------------------------------------------------------------------------
// AS expressions
// ---------------------------------------------------------------------------

namespace {

std::optional<ir::AsExpr> parse_as_expr_or(Cursor& cur, const ParseContext& ctx);

std::optional<ir::AsExpr> parse_as_expr_primary(Cursor& cur, const ParseContext& ctx) {
  if (cur.peek() == '(') {
    const std::size_t mark = cur.pos();
    auto inside = cur.take_parenthesized();
    if (!inside) {
      ctx.syntax_error("unbalanced parentheses in AS expression");
      return std::nullopt;
    }
    Cursor inner(*inside);
    auto expr = parse_as_expr_or(inner, ctx);
    if (!expr || !inner.at_end()) {
      cur.seek(mark);
      ctx.syntax_error("invalid parenthesized AS expression: '" + std::string(*inside) + "'");
      return std::nullopt;
    }
    return expr;
  }
  const std::size_t mark = cur.pos();
  std::string_view atom = cur.next_atom();
  if (atom.empty()) return std::nullopt;
  if (iequals(atom, "AS-ANY") || iequals(atom, "ANY")) return ir::AsExpr{ir::AsExprAny{}};
  if (auto asn = ir::parse_as_ref(atom)) return ir::AsExpr{ir::AsExprAsn{*asn}};
  if (ir::valid_as_set_name(atom)) return ir::AsExpr{ir::AsExprSet{std::string(atom)}};
  cur.seek(mark);
  return std::nullopt;
}

// AND and EXCEPT bind tighter than OR and share a precedence level
// (RFC 2622 §5.6, "EXCEPT has the same precedence as AND").
std::optional<ir::AsExpr> parse_as_expr_and(Cursor& cur, const ParseContext& ctx) {
  auto left = parse_as_expr_primary(cur, ctx);
  if (!left) return std::nullopt;
  while (true) {
    if (cur.eat_keyword("AND")) {
      auto right = parse_as_expr_primary(cur, ctx);
      if (!right) {
        ctx.syntax_error("missing right operand of AND in AS expression");
        return std::nullopt;
      }
      left = ir::AsExpr{ir::AsExprAnd{std::move(*left), std::move(*right)}};
    } else if (cur.eat_keyword("EXCEPT")) {
      auto right = parse_as_expr_primary(cur, ctx);
      if (!right) {
        ctx.syntax_error("missing right operand of EXCEPT in AS expression");
        return std::nullopt;
      }
      left = ir::AsExpr{ir::AsExprExcept{std::move(*left), std::move(*right)}};
    } else {
      return left;
    }
  }
}

std::optional<ir::AsExpr> parse_as_expr_or(Cursor& cur, const ParseContext& ctx) {
  auto left = parse_as_expr_and(cur, ctx);
  if (!left) return std::nullopt;
  while (cur.eat_keyword("OR")) {
    auto right = parse_as_expr_and(cur, ctx);
    if (!right) {
      ctx.syntax_error("missing right operand of OR in AS expression");
      return std::nullopt;
    }
    left = ir::AsExpr{ir::AsExprOr{std::move(*left), std::move(*right)}};
  }
  return left;
}

}  // namespace

std::optional<ir::AsExpr> parse_as_expr(Cursor& cur, const ParseContext& ctx) {
  return parse_as_expr_or(cur, ctx);
}

// ---------------------------------------------------------------------------
// Peerings
// ---------------------------------------------------------------------------

std::optional<ir::Peering> parse_peering(Cursor& cur, const ParseContext& ctx) {
  // A peering-set reference is a name with a PRNG- component.
  std::string_view atom = cur.peek_atom();
  if (!atom.empty() && ir::valid_peering_set_name(atom)) {
    cur.next_atom();
    return ir::Peering{ir::PeeringSetRef{std::string(atom)}};
  }

  auto as_expr = parse_as_expr(cur, ctx);
  if (!as_expr) {
    ctx.syntax_error("invalid peering: '" + std::string(cur.peek_atom()) + "'");
    return std::nullopt;
  }

  ir::PeeringSpec spec;
  spec.as_expr = std::move(*as_expr);
  // Optional router expressions. We capture them as raw text: AS-level
  // verification cannot observe routers (see policy.hpp).
  spec.remote_router =
      std::string(take_until_keywords(cur, {"at", "action", "accept", "announce", "from", "to"}));
  if (cur.eat_keyword("at")) {
    spec.local_router =
        std::string(take_until_keywords(cur, {"action", "accept", "announce", "from", "to"}));
  }
  return ir::Peering{std::move(spec)};
}

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

std::vector<ir::Action> parse_actions(Cursor& cur, const ParseContext& ctx) {
  std::vector<ir::Action> actions;
  while (true) {
    if (cur.at_end() || cur.peek() == ';' || cur.peek() == '}') break;
    if (cur.peek_keyword("from") || cur.peek_keyword("to") || cur.peek_keyword("accept") ||
        cur.peek_keyword("announce")) {
      break;
    }

    std::string_view head = cur.next_atom();
    if (head.empty()) {
      ctx.syntax_error("invalid action statement near '" +
                       std::string(cur.remaining().substr(0, 20)) + "'");
      // Skip to the next ';' to resynchronize.
      take_until_keywords(cur, {"from", "to", "accept", "announce"});
      cur.eat_char(';');
      continue;
    }

    ir::Action action;
    // "community.delete" style method call, or "community." glued to "=".
    std::size_t dot = head.find('.');
    std::string_view attribute = dot == std::string_view::npos ? head : head.substr(0, dot);
    std::string_view tail = dot == std::string_view::npos ? std::string_view{}
                                                          : head.substr(dot + 1);
    action.attribute = util::lower(attribute);

    if (cur.peek() == '(') {
      // Method call: attr.method(args).
      action.kind = ir::Action::Kind::kMethodCall;
      action.method = util::lower(tail);
      auto args = cur.take_parenthesized();
      if (!args) {
        ctx.syntax_error("unbalanced parentheses in action '" + std::string(head) + "'");
        break;
      }
      action.value = std::string(trim(*args));
    } else {
      action.kind = ir::Action::Kind::kAssign;
      std::string op;
      if (!tail.empty()) {
        // The atom swallowed the '.' of a ".=" operator ("community.=").
        op = "." + std::string(tail);
      } else if (dot != std::string_view::npos) {
        op = ".";
      }
      // Operator characters directly following: =, .=, +=, -=, *=, /=.
      while (true) {
        const char c = cur.peek();
        if (c == '=' || (op.empty() && (c == '.' || c == '+' || c == '-' || c == '*' ||
                                        c == '/'))) {
          op.push_back(c);
          cur.seek(cur.pos() + 1);
          if (c == '=') break;
        } else {
          break;
        }
      }
      if (op.empty() || op.back() != '=') {
        ctx.syntax_error("action statement missing operator: '" + std::string(head) + "'");
        take_until_keywords(cur, {"from", "to", "accept", "announce"});
        cur.eat_char(';');
        continue;
      }
      action.op = op;
      if (cur.peek() == '{') {
        auto braced = cur.take_braced();
        action.value = "{" + std::string(braced ? trim(*braced) : std::string_view{}) + "}";
      } else {
        action.value =
            std::string(take_until_keywords(cur, {"from", "to", "accept", "announce"}));
      }
    }
    actions.push_back(std::move(action));
    if (!cur.eat_char(';')) break;  // last statement may omit the terminator
  }
  return actions;
}

// ---------------------------------------------------------------------------
// Afi lists
// ---------------------------------------------------------------------------

namespace {

std::optional<ir::Afi> parse_afi_token(std::string_view token) {
  ir::Afi afi;
  std::string_view ip = token;
  std::string_view cast;
  if (const std::size_t dot = token.find('.'); dot != std::string_view::npos) {
    ip = token.substr(0, dot);
    cast = token.substr(dot + 1);
  }
  if (iequals(ip, "any")) {
    afi.ip = ir::Afi::Ip::kAny;
  } else if (iequals(ip, "ipv4")) {
    afi.ip = ir::Afi::Ip::kIpv4;
  } else if (iequals(ip, "ipv6")) {
    afi.ip = ir::Afi::Ip::kIpv6;
  } else {
    return std::nullopt;
  }
  if (cast.empty() || iequals(cast, "any")) {
    afi.cast = ir::Afi::Cast::kAny;
  } else if (iequals(cast, "unicast")) {
    afi.cast = ir::Afi::Cast::kUnicast;
  } else if (iequals(cast, "multicast")) {
    afi.cast = ir::Afi::Cast::kMulticast;
  } else {
    return std::nullopt;
  }
  return afi;
}

}  // namespace

std::vector<ir::Afi> parse_afi_list(Cursor& cur, const ParseContext& ctx) {
  std::vector<ir::Afi> afis;
  while (true) {
    std::string_view token = cur.next_atom();
    auto afi = parse_afi_token(token);
    if (!afi) {
      ctx.syntax_error("invalid afi: '" + std::string(token) + "'");
      break;
    }
    afis.push_back(*afi);
    if (!cur.eat_char(',')) break;
  }
  return afis;
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

namespace {

ir::Filter parse_filter_or(Cursor& cur, const ParseContext& ctx, bool& ok);

ir::Filter unknown_filter(const ParseContext& ctx, std::string_view text, bool& ok,
                          const std::string& why) {
  ctx.syntax_error(why);
  ok = false;
  return ir::Filter{ir::FilterUnknown{std::string(trim(text))}};
}

/// Range operator directly following a closing brace or name ("}^24-32").
net::RangeOp parse_trailing_op(Cursor& cur, const ParseContext& ctx, bool& ok) {
  if (cur.peek() != '^') return net::RangeOp::none();
  std::string_view atom = cur.next_atom();  // "^24-32", "^+", ...
  auto op = net::RangeOp::parse(atom.substr(1));
  if (!op) {
    ctx.syntax_error("invalid range operator: '" + std::string(atom) + "'");
    ok = false;
    return net::RangeOp::none();
  }
  return *op;
}

ir::Filter parse_filter_primary(Cursor& cur, const ParseContext& ctx, bool& ok) {
  const char c = cur.peek();

  if (c == '(') {
    auto inside = cur.take_parenthesized();
    if (!inside) return unknown_filter(ctx, cur.remaining(), ok, "unbalanced '(' in filter");
    Cursor inner(*inside);
    ir::Filter f = parse_filter_or(inner, ctx, ok);
    if (!inner.at_end()) {
      return unknown_filter(ctx, *inside, ok, "trailing text in parenthesized filter");
    }
    return f;
  }

  if (c == '{') {
    auto inside = cur.take_braced();
    if (!inside) return unknown_filter(ctx, cur.remaining(), ok, "unbalanced '{' in filter");
    net::PrefixSet set;
    std::string_view body = trim(*inside);
    if (!body.empty()) {
      for (auto part : util::split(body, ',')) {
        part = trim(part);
        if (part.empty()) {
          ctx.syntax_error("broken comma-separated prefix list");
          ok = false;
          continue;
        }
        auto range = net::PrefixRange::parse(part);
        if (!range) {
          ctx.syntax_error("invalid prefix in set: '" + std::string(part) + "'");
          ok = false;
          continue;
        }
        set.add(*range);
      }
    }
    // Non-standard but observed: a range operator on the whole set.
    net::RangeOp op = parse_trailing_op(cur, ctx, ok);
    return ir::Filter{ir::FilterPrefixes{std::move(set), op}};
  }

  if (c == '<') {
    auto inside = cur.take_angled();
    if (!inside) return unknown_filter(ctx, cur.remaining(), ok, "unbalanced '<' in filter");
    auto regex = parse_aspath_regex(*inside, ctx);
    if (!regex) {
      ok = false;
      return ir::Filter{ir::FilterUnknown{"<" + std::string(*inside) + ">"}};
    }
    return ir::Filter{ir::FilterAsPath{std::move(*regex)}};
  }

  std::string_view atom = cur.next_atom();
  if (atom.empty()) {
    return unknown_filter(ctx, cur.remaining(), ok,
                          "expected filter near '" + std::string(cur.remaining().substr(0, 20)) +
                              "'");
  }

  if (iequals(atom, "ANY") || iequals(atom, "AS-ANY") || iequals(atom, "RS-ANY")) {
    return ir::Filter{ir::FilterAny{}};
  }
  if (iequals(atom, "PeerAS")) return ir::Filter{ir::FilterPeerAs{}};
  if (iequals(atom, "fltr-martian")) return ir::Filter{ir::FilterFltrMartian{}};

  // community(...) and community.method(...).
  if (istarts_with(atom, "community")) {
    std::string_view rest = atom.substr(9);
    std::string method;
    if (!rest.empty()) {
      if (rest.front() != '.') {
        return unknown_filter(ctx, atom, ok, "invalid community filter: '" + std::string(atom) +
                                                 "'");
      }
      method = util::lower(rest.substr(1));
    }
    if (cur.peek() != '(') {
      return unknown_filter(ctx, atom, ok, "community filter missing '('");
    }
    auto args_text = cur.take_parenthesized();
    if (!args_text) return unknown_filter(ctx, atom, ok, "unbalanced '(' in community filter");
    ir::FilterCommunity community;
    community.method = std::move(method);
    for (auto part : util::split(*args_text, ',')) {
      part = trim(part);
      if (!part.empty()) community.args.emplace_back(part);
    }
    return ir::Filter{std::move(community)};
  }

  auto split = split_range_op(atom);
  if (!split) {
    return unknown_filter(ctx, atom, ok,
                          "invalid range operator on '" + std::string(atom) + "'");
  }
  auto [body, op] = *split;
  if (auto asn = ir::parse_as_ref(body)) return ir::Filter{ir::FilterAsNum{*asn, op}};
  if (ir::valid_as_set_name(body)) return ir::Filter{ir::FilterAsSet{std::string(body), op}};
  if (ir::valid_route_set_name(body)) {
    // Range operators on route-sets are the non-standard syntax the paper
    // explicitly supports (Appendix B).
    return ir::Filter{ir::FilterRouteSet{std::string(body), op}};
  }
  if (ir::valid_filter_set_name(body)) {
    if (!op.is_none()) {
      return unknown_filter(ctx, atom, ok, "range operator on filter-set is not meaningful");
    }
    return ir::Filter{ir::FilterFilterSet{std::string(body)}};
  }
  // A bare prefix (or prefix^op) is also a valid (if unusual) filter term.
  if (auto range = net::PrefixRange::parse(atom)) {
    net::PrefixSet set;
    set.add(*range);
    return ir::Filter{ir::FilterPrefixes{std::move(set), net::RangeOp::none()}};
  }
  return unknown_filter(ctx, atom, ok,
                        "unrecognized filter term: '" + std::string(atom) + "'");
}

ir::Filter parse_filter_not(Cursor& cur, const ParseContext& ctx, bool& ok) {
  if (cur.eat_keyword("NOT")) {
    return ir::Filter{ir::FilterNot{parse_filter_not(cur, ctx, ok)}};
  }
  return parse_filter_primary(cur, ctx, ok);
}

ir::Filter parse_filter_and(Cursor& cur, const ParseContext& ctx, bool& ok) {
  ir::Filter left = parse_filter_not(cur, ctx, ok);
  while (cur.eat_keyword("AND")) {
    ir::Filter right = parse_filter_not(cur, ctx, ok);
    left = ir::Filter{ir::FilterAnd{std::move(left), std::move(right)}};
  }
  return left;
}

ir::Filter parse_filter_or(Cursor& cur, const ParseContext& ctx, bool& ok) {
  ir::Filter left = parse_filter_and(cur, ctx, ok);
  while (cur.eat_keyword("OR")) {
    ir::Filter right = parse_filter_and(cur, ctx, ok);
    left = ir::Filter{ir::FilterOr{std::move(left), std::move(right)}};
  }
  return left;
}

}  // namespace

ir::Filter parse_filter(std::string_view text, const ParseContext& ctx) {
  text = trim(text);
  if (text.empty()) {
    ctx.syntax_error("empty filter");
    return ir::Filter{ir::FilterUnknown{""}};
  }
  Cursor cur(text);
  bool ok = true;
  ir::Filter f = parse_filter_or(cur, ctx, ok);
  if (!cur.at_end()) {
    ctx.syntax_error("trailing text in filter: '" + std::string(cur.remaining()) + "'");
    return ir::Filter{ir::FilterUnknown{std::string(text)}};
  }
  if (!ok) return ir::Filter{ir::FilterUnknown{std::string(text)}};
  return f;
}

}  // namespace rpslyzer::rpsl
