#pragma once
// Interpretation of raw RPSL objects into the typed IR (§3: "For each object
// type, it decomposes all routing-related attributes ... into interpretable
// representations").

#include <optional>
#include <variant>

#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/rpsl/expr_parser.hpp"
#include "rpslyzer/rpsl/object_lexer.hpp"

namespace rpslyzer::rpsl {

/// The result of interpreting one raw object. monostate = a class we do not
/// model (person, mntner, inetnum, ...), which is not an error.
using ParsedObject = std::variant<std::monostate, ir::AutNum, ir::AsSet, ir::RouteSet,
                                  ir::PeeringSet, ir::FilterSet, ir::RouteObject>;

/// Interpret one raw object; diagnostics are recorded for recoverable
/// problems (bad members, bad rules) and fatal ones (unparseable key).
/// The view overload is the hot path (no owning copies on the way in);
/// the RawObject overload adapts owning objects for callers that keep raw
/// paragraphs alive (delta corpus store, synth churn, tests).
ParsedObject parse_object(const RawObjectView& raw, util::Diagnostics& diagnostics);
ParsedObject parse_object(const RawObject& raw, util::Diagnostics& diagnostics);

/// Parse one import/export attribute value into a Rule. Exposed for tests
/// and tools that process rules outside full objects.
ir::Rule parse_rule(std::string_view text, ir::Rule::Direction direction, bool mp,
                    const ParseContext& ctx);

}  // namespace rpslyzer::rpsl
