#pragma once
// The RPSL object lexer: splits whois-style IRR dump text into objects and
// attribute-value pairs (RFC 2622 §2 "RPSL is object oriented...").
//
// Handles:
//  * objects separated by blank lines;
//  * "attribute: value" lines; the first attribute names the object class;
//  * continuation lines starting with whitespace or '+' (an empty '+' line
//    continues with an empty line of text);
//  * '#' end-of-line comments;
//  * '%' full-line server remarks (RIPE-style dumps interleave them);
//  * line-number tracking for diagnostics.
//
// Two front ends share one core:
//  * lex_objects_view — the zero-copy hot path. Attribute names and values
//    are string_view slices into the caller's dump buffer; only the rare
//    cases that cannot be sliced (uppercase attribute names, continuation
//    joins) spill into the caller's Arena. Views are valid while (dump
//    buffer, arena) both outlive them — the loader keeps both alive per
//    shard until phase-B materialization is done.
//  * lex_objects — the owning convenience wrapper (std::string fields) for
//    callers that persist raw objects past the dump buffer (synth churn,
//    delta journal rendering, tests).

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rpslyzer/util/arena.hpp"
#include "rpslyzer/util/diagnostics.hpp"

namespace rpslyzer::rpsl {

/// One attribute of a raw RPSL object, as slices. `value` has comments
/// stripped and continuation lines joined with single spaces.
struct RawAttributeView {
  std::string_view name;   // lowercased attribute name
  std::string_view value;  // joined, comment-stripped, trimmed value
  std::size_t line = 0;
};

/// One RPSL object as read from a dump, before interpretation; every view
/// points into the dump buffer or the lexing arena.
struct RawObjectView {
  std::string_view class_name;  // lowercased first attribute name
  std::string_view key;         // first attribute's value (the object's name)
  std::span<const RawAttributeView> attributes;
  std::string_view source;      // IRR name this object came from
  std::size_t line = 0;         // line of the first attribute

  /// First value of attribute `name` (lowercase), or empty view.
  std::string_view first(std::string_view name) const noexcept;
  /// All values of attribute `name` in order.
  std::vector<std::string_view> all(std::string_view name) const;
};

/// One attribute of a raw RPSL object, owning storage.
struct RawAttribute {
  std::string name;   // lowercased attribute name
  std::string value;  // joined, comment-stripped, trimmed value
  std::size_t line = 0;
};

/// One RPSL object with owning storage, for callers that keep raw objects
/// alive past the dump buffer.
struct RawObject {
  std::string class_name;  // lowercased first attribute name
  std::string key;         // first attribute's value (the object's name)
  std::vector<RawAttribute> attributes;
  std::string source;      // IRR name this object came from
  std::size_t line = 0;    // line of the first attribute

  /// First value of attribute `name` (lowercase), or empty view.
  std::string_view first(std::string_view name) const noexcept;
  /// All values of attribute `name` in order.
  std::vector<std::string_view> all(std::string_view name) const;
};

/// Split a full dump into raw objects without copying attribute bytes.
/// `source` labels diagnostics and the resulting objects. Malformed lines
/// (no colon before any attribute ends) raise diagnostics but do not abort
/// the dump. `line_offset` is added to every reported line number — shard
/// lexing passes the number of lines preceding the shard so diagnostics
/// and object positions match a lex of the whole text. The returned views
/// (and the objects' attribute spans) borrow `text` and `arena`.
std::vector<RawObjectView> lex_objects_view(std::string_view text,
                                            std::string_view source,
                                            util::Diagnostics& diagnostics,
                                            util::Arena& arena,
                                            std::size_t line_offset = 0);

/// Owning wrapper over lex_objects_view: identical object sequence and
/// diagnostics, with each object copied into std::string storage.
std::vector<RawObject> lex_objects(std::string_view text, std::string_view source,
                                   util::Diagnostics& diagnostics,
                                   std::size_t line_offset = 0);

/// One parse shard: a slice of dump text that starts at an object boundary
/// plus the number of lines before it (feed to lex_objects' line_offset).
struct Shard {
  std::string_view text;
  std::size_t line_offset = 0;
};

/// Cut a dump into shards of roughly `target_bytes` each, splitting only
/// *after* a blank line — the one place the lexer's cross-line state
/// (current object, in-object flag) is provably empty. "Blank" matches the
/// lexer's separator rule exactly: the line is empty after trimming ASCII
/// whitespace, which covers CRLF endings and whitespace-only lines;
/// comment-only ('#') and server-remark ('%') lines keep an object open and
/// therefore never become boundaries. A single object larger than the
/// target simply yields an oversized shard; the final line needs no
/// trailing newline. Concatenating the shard texts reproduces `text`
/// byte-for-byte, and lexing each shard with its line_offset yields the
/// same object sequence and diagnostics as lexing `text` whole.
std::vector<Shard> shard_objects(std::string_view text, std::size_t target_bytes);

}  // namespace rpslyzer::rpsl
