#pragma once
// Parsers for RPSL policy expressions: AS expressions, peerings, actions,
// filters, and AS-path regular expressions (RFC 2622 §5, RFC 4012).
//
// All parsers are tolerant: on malformed input they record a diagnostic and
// produce a recoverable node (FilterUnknown, empty action list, ...) so that
// one bad rule never aborts a 7-GiB dump parse — the behaviour the paper
// relies on to census syntax errors (§4).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rpslyzer/ir/policy.hpp"
#include "rpslyzer/rpsl/cursor.hpp"
#include "rpslyzer/util/diagnostics.hpp"

namespace rpslyzer::rpsl {

/// Shared state for expression parsing: where we are (for diagnostics) and
/// where problems are reported.
struct ParseContext {
  util::Diagnostics* diagnostics = nullptr;
  std::string object_key;  // "aut-num:AS123" etc.
  std::string source;      // IRR name
  std::size_t line = 0;

  void error(util::DiagnosticKind kind, std::string message) const {
    if (diagnostics != nullptr) {
      diagnostics->error(kind, std::move(message), object_key, {source, line});
    }
  }
  void syntax_error(std::string message) const {
    error(util::DiagnosticKind::kSyntaxError, std::move(message));
  }
};

/// Parse an AS expression (ASN | as-set | AS-ANY | AND/OR/EXCEPT | parens).
/// Returns nullopt (cursor position unspecified) when the next tokens do not
/// begin an AS expression.
std::optional<ir::AsExpr> parse_as_expr(Cursor& cur, const ParseContext& ctx);

/// Parse a <peering>: AS expression with optional router expressions, or a
/// peering-set reference. Consumes up to (not including) "action", the
/// accept/announce keyword, ';' or end of text.
std::optional<ir::Peering> parse_peering(Cursor& cur, const ParseContext& ctx);

/// Parse an action list after the "action" keyword: statements separated by
/// ';', ending before from/to/accept/announce or end of text.
std::vector<ir::Action> parse_actions(Cursor& cur, const ParseContext& ctx);

/// Parse a complete policy filter expression from `text`.
ir::Filter parse_filter(std::string_view text, const ParseContext& ctx);

/// Parse the inside of an AS-path regex literal (the text between '<' and
/// '>'). Returns nullopt and records a diagnostic on malformed regexes.
std::optional<ir::AsPathRegex> parse_aspath_regex(std::string_view inside,
                                                  const ParseContext& ctx);

/// Parse an afi list after the "afi" keyword ("ipv4.unicast, ipv6.unicast").
std::vector<ir::Afi> parse_afi_list(Cursor& cur, const ParseContext& ctx);

/// Consume text until one of `keywords` (case-insensitive, word-bounded) or
/// the character `stop_char` appears at nesting depth zero; the stopper is
/// not consumed. Used for router expressions and loose value scans.
std::string_view take_until_keywords(Cursor& cur, std::initializer_list<std::string_view> keywords,
                                     char stop_char = ';');

}  // namespace rpslyzer::rpsl
