#pragma once
// A text cursor for parsing RPSL policy expressions.
//
// RPSL policy syntax is word-oriented with a few punctuation characters, but
// "atoms" (names, prefixes, range-operator suffixes) have a wide character
// set ('.', ':', '/', '^', '-', '+'). A cursor with keyword lookahead is
// simpler and more forgiving than a fixed tokenizer, which matters for
// accommodating the non-standard syntax the paper discusses (Appendix B).

#include <optional>
#include <string>
#include <string_view>

namespace rpslyzer::rpsl {

class Cursor {
 public:
  explicit Cursor(std::string_view text) noexcept : text_(text) {}

  bool at_end() noexcept {
    skip_ws();
    return pos_ >= text_.size();
  }

  std::size_t pos() const noexcept { return pos_; }
  void seek(std::size_t pos) noexcept { pos_ = pos; }
  std::string_view remaining() const noexcept { return text_.substr(pos_); }

  /// Peek the next non-space character without consuming ('\0' at end).
  char peek() noexcept;

  /// Consume `c` if it is the next non-space character.
  bool eat_char(char c) noexcept;

  /// Case-insensitive keyword match with a word boundary after it; consumes
  /// on success. A "word" boundary is any char outside [A-Za-z0-9_-].
  bool eat_keyword(std::string_view keyword) noexcept;

  /// Like eat_keyword but never consumes.
  bool peek_keyword(std::string_view keyword) noexcept;

  /// Consume and return the next atom: a maximal run of characters from
  /// [A-Za-z0-9_.:/^+-] (covers names, ASNs, prefixes with range operators,
  /// IPv6 addresses). Empty if the next character is punctuation.
  std::string_view next_atom() noexcept;

  /// Peek the next atom without consuming.
  std::string_view peek_atom() noexcept;

  /// Consume everything up to (not including) the first unnested occurrence
  /// of `stop` at brace/paren nesting level zero; returns the consumed text.
  /// If `stop` never occurs, consumes to the end.
  std::string_view take_until_char(char stop) noexcept;

  /// Consume a balanced '{...}' block (assumes the next char is '{');
  /// returns the inside text without the braces. Nested braces are kept.
  std::optional<std::string_view> take_braced() noexcept;

  /// Consume a balanced '(...)' block; returns the inside text.
  std::optional<std::string_view> take_parenthesized() noexcept;

  /// Consume text up to the matching '>' (assumes next char is '<');
  /// returns the inside text.
  std::optional<std::string_view> take_angled() noexcept;

  void skip_ws() noexcept;

 private:
  std::optional<std::string_view> take_delimited(char open, char close) noexcept;

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Is `c` an atom character (see Cursor::next_atom)?
bool is_atom_char(char c) noexcept;

}  // namespace rpslyzer::rpsl
