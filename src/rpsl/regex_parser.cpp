// Parser for AS-path regular expressions (RFC 2622 §5.6).
//
// The regex alphabet is AS tokens, not characters: ASNs, AS-set names, the
// wildcard '.', PeerAS, and character-class style sets "[AS1 AS3-AS5
// AS-FOO]" with optional '^' complement. Postfix operators are *, +, ?,
// {m}, {m,n}, {m,} and the "same pattern" tilde variants (~* etc.), with
// '|' alternation, juxtaposition for concatenation, and '^'/'$' anchors.

#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/rpsl/expr_parser.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::rpsl {

namespace {

using ir::AsPathRegexBox;
using ir::AsPathRegexNode;
using util::iequals;

class RegexParser {
 public:
  RegexParser(std::string_view text, const ParseContext& ctx) : text_(text), ctx_(ctx) {}

  std::optional<AsPathRegexNode> parse() {
    auto node = parse_alt();
    if (!node) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters in AS-path regex");
      return std::nullopt;
    }
    return node;
  }

  bool failed() const noexcept { return failed_; }

 private:
  std::string_view text_;
  const ParseContext& ctx_;
  std::size_t pos_ = 0;
  bool failed_ = false;

  void fail(const std::string& why) {
    if (!failed_) {
      ctx_.syntax_error("AS-path regex '" + std::string(text_) + "': " + why);
    }
    failed_ = true;
  }

  void skip_ws() {
    while (pos_ < text_.size() && util::is_space(text_[pos_])) ++pos_;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// Peek without skipping whitespace (postfix operators must be adjacent).
  char peek_raw() const noexcept { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool eat(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static bool is_name_char(char c) noexcept {
    return util::is_alnum(c) || c == '_' || c == ':' || c == '-';
  }

  std::string_view next_name() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() && is_name_char(text_[end])) ++end;
    std::string_view name = text_.substr(pos_, end - pos_);
    pos_ = end;
    return name;
  }

  // --- grammar ---

  std::optional<AsPathRegexNode> parse_alt() {
    auto first = parse_concat();
    if (!first) return std::nullopt;
    if (peek() != '|') return first;
    ir::ReAlt alt;
    alt.options.emplace_back(std::move(*first));
    while (eat('|')) {
      auto next = parse_concat();
      if (!next) return std::nullopt;
      alt.options.emplace_back(std::move(*next));
    }
    return AsPathRegexNode{std::move(alt)};
  }

  std::optional<AsPathRegexNode> parse_concat() {
    ir::ReConcat concat;
    while (true) {
      const char c = peek();
      if (c == '\0' || c == '|' || c == ')') break;
      auto part = parse_repeat();
      if (!part) return std::nullopt;
      concat.parts.emplace_back(std::move(*part));
    }
    if (concat.parts.empty()) return AsPathRegexNode{ir::ReEmpty{}};
    if (concat.parts.size() == 1) return std::move(*concat.parts.front());
    return AsPathRegexNode{std::move(concat)};
  }

  std::optional<AsPathRegexNode> parse_repeat() {
    auto inner = parse_primary();
    if (!inner) return std::nullopt;
    while (true) {
      auto repeat = try_parse_postfix();
      if (failed_) return std::nullopt;
      if (!repeat) return inner;
      inner = AsPathRegexNode{ir::ReRepeatNode{AsPathRegexBox(std::move(*inner)), *repeat}};
    }
  }

  std::optional<ir::ReRepeat> try_parse_postfix() {
    // Postfix operators attach without whitespace in practice, but the RFC
    // examples are loose; accept whitespace before them too.
    const std::size_t mark = pos_;
    bool same_pattern = false;
    char c = peek();
    if (c == '~') {
      same_pattern = true;
      ++pos_;
      c = peek_raw();
    }
    switch (c) {
      case '*':
        ++pos_;
        return ir::ReRepeat{0, std::nullopt, same_pattern};
      case '+':
        ++pos_;
        return ir::ReRepeat{1, std::nullopt, same_pattern};
      case '?':
        ++pos_;
        return ir::ReRepeat{0, 1, same_pattern};
      case '{': {
        ++pos_;
        auto m = parse_int();
        if (!m) {
          fail("invalid repetition count");
          return std::nullopt;
        }
        ir::ReRepeat r;
        r.min = *m;
        r.max = *m;
        r.same_pattern = same_pattern;
        if (eat(',')) {
          if (peek() == '}') {
            r.max = std::nullopt;
          } else {
            auto n = parse_int();
            if (!n || *n < r.min) {
              fail("invalid repetition range");
              return std::nullopt;
            }
            r.max = *n;
          }
        }
        if (!eat('}')) {
          fail("unterminated repetition");
          return std::nullopt;
        }
        return r;
      }
      default:
        pos_ = mark;  // the '~' (if any) was not a postfix operator
        if (same_pattern) fail("dangling '~'");
        return std::nullopt;
    }
  }

  std::optional<std::uint32_t> parse_int() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() && util::is_digit(text_[end])) ++end;
    if (end == pos_) return std::nullopt;
    auto value = util::parse_u32(text_.substr(pos_, end - pos_));
    pos_ = end;
    return value;
  }

  std::optional<AsPathRegexNode> parse_primary() {
    const char c = peek();
    if (c == '^') {
      ++pos_;
      return AsPathRegexNode{ir::ReBeginAnchor{}};
    }
    if (c == '$') {
      ++pos_;
      return AsPathRegexNode{ir::ReEndAnchor{}};
    }
    if (c == '.') {
      ++pos_;
      ir::ReToken any;
      any.kind = ir::ReToken::Kind::kAny;
      return AsPathRegexNode{ir::ReTokenNode{std::move(any)}};
    }
    if (c == '(') {
      ++pos_;
      auto inner = parse_alt();
      if (!inner) return std::nullopt;
      if (!eat(')')) {
        fail("unbalanced '('");
        return std::nullopt;
      }
      return inner;
    }
    if (c == '[') {
      ++pos_;
      return parse_set();
    }
    std::string_view name = next_name();
    if (name.empty()) {
      fail(std::string("unexpected character '") + c + "'");
      return std::nullopt;
    }
    ir::ReToken token;
    if (auto asn = ir::parse_as_ref(name)) {
      token.kind = ir::ReToken::Kind::kAsn;
      token.asn = *asn;
    } else if (iequals(name, "PeerAS")) {
      token.kind = ir::ReToken::Kind::kPeerAs;
    } else if (ir::valid_as_set_name(name) || iequals(name, "AS-ANY")) {
      // AS-ANY inside a regex behaves like the wildcard.
      if (iequals(name, "AS-ANY")) {
        token.kind = ir::ReToken::Kind::kAny;
      } else {
        token.kind = ir::ReToken::Kind::kAsSet;
        token.as_set = std::string(name);
      }
    } else {
      fail("invalid AS token '" + std::string(name) + "'");
      return std::nullopt;
    }
    return AsPathRegexNode{ir::ReTokenNode{std::move(token)}};
  }

  std::optional<AsPathRegexNode> parse_set() {
    ir::ReToken token;
    token.kind = ir::ReToken::Kind::kSet;
    if (peek() == '^') {
      ++pos_;
      token.complemented = true;
    }
    while (true) {
      const char c = peek();
      if (c == ']') {
        ++pos_;
        break;
      }
      if (c == '\0') {
        fail("unterminated '['");
        return std::nullopt;
      }
      std::string_view name = next_name();
      if (name.empty()) {
        fail(std::string("unexpected character in set: '") + c + "'");
        return std::nullopt;
      }
      ir::ReSetItem item;
      // "AS<m>-AS<n>" is an ASN range (a construct the paper's tool lists
      // as skipped; we parse it and let the engine decide).
      const std::size_t dash = name.find("-AS");
      if (dash != std::string_view::npos && dash > 2) {
        auto lo = ir::parse_as_ref(name.substr(0, dash));
        auto hi = ir::parse_as_ref(name.substr(dash + 1));
        if (lo && hi && *lo <= *hi) {
          item.kind = ir::ReSetItem::Kind::kAsnRange;
          item.asn = *lo;
          item.asn_hi = *hi;
          token.items.push_back(std::move(item));
          continue;
        }
      }
      if (auto asn = ir::parse_as_ref(name)) {
        item.kind = ir::ReSetItem::Kind::kAsn;
        item.asn = *asn;
      } else if (iequals(name, "PeerAS")) {
        item.kind = ir::ReSetItem::Kind::kPeerAs;
      } else if (ir::valid_as_set_name(name)) {
        item.kind = ir::ReSetItem::Kind::kAsSet;
        item.as_set = std::string(name);
      } else {
        fail("invalid AS token in set: '" + std::string(name) + "'");
        return std::nullopt;
      }
      token.items.push_back(std::move(item));
    }
    return AsPathRegexNode{ir::ReTokenNode{std::move(token)}};
  }
};

}  // namespace

std::optional<ir::AsPathRegex> parse_aspath_regex(std::string_view inside,
                                                  const ParseContext& ctx) {
  RegexParser parser(inside, ctx);
  auto node = parser.parse();
  if (!node) return std::nullopt;
  ir::AsPathRegex regex;
  *regex.root = std::move(*node);
  regex.text = std::string(util::trim(inside));
  return regex;
}

}  // namespace rpslyzer::rpsl
