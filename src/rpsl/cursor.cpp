#include "rpslyzer/rpsl/cursor.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::rpsl {

bool is_atom_char(char c) noexcept {
  return util::is_alnum(c) || c == '_' || c == '.' || c == ':' || c == '/' || c == '^' ||
         c == '+' || c == '-';
}

namespace {

bool is_word_char(char c) noexcept { return util::is_alnum(c) || c == '_' || c == '-'; }

}  // namespace

void Cursor::skip_ws() noexcept {
  while (pos_ < text_.size() && util::is_space(text_[pos_])) ++pos_;
}

char Cursor::peek() noexcept {
  skip_ws();
  return pos_ < text_.size() ? text_[pos_] : '\0';
}

bool Cursor::eat_char(char c) noexcept {
  if (peek() == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool Cursor::peek_keyword(std::string_view keyword) noexcept {
  skip_ws();
  if (pos_ + keyword.size() > text_.size()) return false;
  if (!util::iequals(text_.substr(pos_, keyword.size()), keyword)) return false;
  const std::size_t after = pos_ + keyword.size();
  return after >= text_.size() || !is_word_char(text_[after]);
}

bool Cursor::eat_keyword(std::string_view keyword) noexcept {
  if (!peek_keyword(keyword)) return false;
  pos_ += keyword.size();
  return true;
}

std::string_view Cursor::peek_atom() noexcept {
  skip_ws();
  std::size_t end = pos_;
  while (end < text_.size() && is_atom_char(text_[end])) ++end;
  return text_.substr(pos_, end - pos_);
}

std::string_view Cursor::next_atom() noexcept {
  std::string_view atom = peek_atom();
  pos_ += atom.size();
  return atom;
}

std::string_view Cursor::take_until_char(char stop) noexcept {
  skip_ws();
  const std::size_t start = pos_;
  int depth = 0;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '{' || c == '(') {
      ++depth;
    } else if (c == '}' || c == ')') {
      if (depth == 0) break;  // do not escape an enclosing block
      --depth;
    } else if (c == stop && depth == 0) {
      break;
    }
    ++pos_;
  }
  return text_.substr(start, pos_ - start);
}

std::optional<std::string_view> Cursor::take_delimited(char open, char close) noexcept {
  if (peek() != open) return std::nullopt;
  const std::size_t start = pos_ + 1;
  int depth = 0;
  for (std::size_t i = pos_; i < text_.size(); ++i) {
    if (text_[i] == open) {
      ++depth;
    } else if (text_[i] == close) {
      --depth;
      if (depth == 0) {
        pos_ = i + 1;
        return text_.substr(start, i - start);
      }
    }
  }
  return std::nullopt;  // unbalanced
}

std::optional<std::string_view> Cursor::take_braced() noexcept {
  return take_delimited('{', '}');
}

std::optional<std::string_view> Cursor::take_parenthesized() noexcept {
  return take_delimited('(', ')');
}

std::optional<std::string_view> Cursor::take_angled() noexcept {
  return take_delimited('<', '>');
}

}  // namespace rpslyzer::rpsl
