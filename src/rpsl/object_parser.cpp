#include "rpslyzer/rpsl/object_parser.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::rpsl {

namespace {

using util::DiagnosticKind;
using util::iequals;
using util::trim;

// ---------------------------------------------------------------------------
// Structured policy (RFC 2622 §6, RFC 4012 afi extension)
// ---------------------------------------------------------------------------

ir::PolicyFactor parse_factor(Cursor& cur, bool is_import, const ParseContext& ctx, bool& ok) {
  ir::PolicyFactor factor;
  const std::string_view peering_kw = is_import ? "from" : "to";
  while (cur.eat_keyword(peering_kw)) {
    ir::PeeringAction pa;
    auto peering = parse_peering(cur, ctx);
    if (!peering) {
      ok = false;
      // Resynchronize on the next structural keyword.
      take_until_keywords(cur, {"from", "to", "action", "accept", "announce"});
    } else {
      pa.peering = std::move(*peering);
    }
    if (cur.eat_keyword("action")) pa.actions = parse_actions(cur, ctx);
    factor.peerings.push_back(std::move(pa));
  }
  if (factor.peerings.empty()) {
    ctx.syntax_error(std::string("expected '") + std::string(peering_kw) + "' clause near '" +
                     std::string(cur.remaining().substr(0, 30)) + "'");
    ok = false;
  }

  const std::string_view filter_kw = is_import ? "accept" : "announce";
  if (!cur.eat_keyword(filter_kw)) {
    ctx.syntax_error(std::string("expected '") + std::string(filter_kw) + "' near '" +
                     std::string(cur.remaining().substr(0, 30)) + "'");
    ok = false;
    factor.filter =
        ir::Filter{ir::FilterUnknown{std::string(take_until_keywords(cur, {"except", "refine"}))}};
    return factor;
  }
  // The filter runs to ';' (or an EXCEPT/REFINE that lost its ';').
  std::string_view filter_text = take_until_keywords(cur, {"except", "refine"});
  factor.filter = parse_filter(filter_text, ctx);
  return factor;
}

ir::Entry parse_entry(Cursor& cur, bool is_import, const ParseContext& ctx, bool& ok) {
  ir::Entry entry;
  if (cur.eat_keyword("afi")) entry.afis = parse_afi_list(cur, ctx);

  ir::EntryTerm term;
  if (cur.peek() == '{') {
    auto inside = cur.take_braced();
    if (!inside) {
      ctx.syntax_error("unbalanced '{' in policy expression");
      ok = false;
      entry.node = std::move(term);
      return entry;
    }
    Cursor inner(*inside);
    while (!inner.at_end()) {
      term.factors.push_back(parse_factor(inner, is_import, ctx, ok));
      if (!inner.eat_char(';') && !inner.at_end()) {
        ctx.syntax_error("expected ';' between policy factors");
        ok = false;
        break;
      }
    }
  } else {
    term.factors.push_back(parse_factor(cur, is_import, ctx, ok));
    cur.eat_char(';');  // terminator before EXCEPT/REFINE, optional at end
  }
  entry.node = std::move(term);

  // Right-recursive EXCEPT/REFINE chains (RFC 2622 §6.6 grammar).
  if (cur.eat_keyword("except")) {
    ir::Entry combined;
    combined.node = ir::EntryExcept{std::move(entry), parse_entry(cur, is_import, ctx, ok)};
    return combined;
  }
  if (cur.eat_keyword("refine")) {
    ir::Entry combined;
    combined.node = ir::EntryRefine{std::move(entry), parse_entry(cur, is_import, ctx, ok)};
    return combined;
  }
  return entry;
}

// ---------------------------------------------------------------------------
// Attribute helpers
// ---------------------------------------------------------------------------

/// Split a comma-separated list, reporting empty segments (the "broken
/// comma-separated lists" the paper calls out as a common syntax error) but
/// recovering the non-empty ones. Whitespace-only separation within a
/// segment is tolerated (non-standard but common).
std::vector<std::string_view> split_member_list(std::string_view text, const ParseContext& ctx) {
  std::vector<std::string_view> out;
  if (trim(text).empty()) return out;
  auto segments = util::split(text, ',');
  for (std::size_t i = 0; i < segments.size(); ++i) {
    std::string_view segment = trim(segments[i]);
    if (segment.empty()) {
      // A single trailing comma is tolerated silently; internal gaps and
      // leading commas are reported.
      if (i + 1 != segments.size() || segments.size() == 1) {
        ctx.syntax_error("broken comma-separated list");
      }
      continue;
    }
    for (auto token : util::split_ws(segment)) out.push_back(token);
  }
  return out;
}

std::vector<ir::Symbol> symbol_list(const RawObjectView& raw, std::string_view attr,
                                    const ParseContext& ctx) {
  std::vector<ir::Symbol> out;
  for (auto value : raw.all(attr)) {
    for (auto token : split_member_list(value, ctx)) out.push_back(ir::sym(token));
  }
  return out;
}

ParseContext context_for(const RawObjectView& raw, util::Diagnostics& diagnostics,
                         std::size_t line = 0) {
  ParseContext ctx;
  ctx.diagnostics = &diagnostics;
  ctx.object_key.reserve(raw.class_name.size() + 1 + raw.key.size());
  ctx.object_key.append(raw.class_name);
  ctx.object_key.push_back(':');
  ctx.object_key.append(raw.key);
  ctx.source = std::string(raw.source);
  ctx.line = line == 0 ? raw.line : line;
  return ctx;
}

// ---------------------------------------------------------------------------
// Object classes
// ---------------------------------------------------------------------------

std::optional<ir::AutNum> parse_aut_num(const RawObjectView& raw,
                                        util::Diagnostics& diagnostics) {
  ParseContext ctx = context_for(raw, diagnostics);
  auto asn = ir::parse_as_ref(raw.key);
  if (!asn) {
    ctx.error(DiagnosticKind::kInvalidAttribute,
              "invalid aut-num key: '" + std::string(raw.key) + "'");
    return std::nullopt;
  }
  ir::AutNum an;
  an.asn = *asn;
  an.as_name = ir::sym(raw.first("as-name"));
  an.member_of = symbol_list(raw, "member-of", ctx);
  an.mnt_by = symbol_list(raw, "mnt-by", ctx);
  an.source = ir::sym(raw.source);

  for (const auto& attr : raw.attributes) {
    ir::Rule::Direction direction;
    bool mp = false;
    if (attr.name == "import") {
      direction = ir::Rule::Direction::kImport;
    } else if (attr.name == "export") {
      direction = ir::Rule::Direction::kExport;
    } else if (attr.name == "mp-import") {
      direction = ir::Rule::Direction::kImport;
      mp = true;
    } else if (attr.name == "mp-export") {
      direction = ir::Rule::Direction::kExport;
      mp = true;
    } else {
      continue;
    }
    ParseContext rule_ctx = context_for(raw, diagnostics, attr.line);
    ir::Rule rule = parse_rule(attr.value, direction, mp, rule_ctx);
    (rule.is_import() ? an.imports : an.exports).push_back(std::move(rule));
  }
  return an;
}

std::optional<ir::AsSet> parse_as_set(const RawObjectView& raw,
                                      util::Diagnostics& diagnostics) {
  ParseContext ctx = context_for(raw, diagnostics);
  ir::AsSet set;
  set.name = ir::sym(raw.key);
  if (!ir::valid_as_set_name(raw.key)) {
    ctx.error(DiagnosticKind::kInvalidSetName,
              "invalid as-set name: '" + std::string(raw.key) + "'");
    // Keep the object: analyses still want to census it (§4 reports an
    // as-set named after the keyword AS-ANY).
  }
  for (auto value : raw.all("members")) {
    for (auto token : split_member_list(value, ctx)) {
      if (iequals(token, "ANY") || iequals(token, "AS-ANY")) {
        set.members.push_back(ir::AsSetMember::any());
      } else if (auto asn = ir::parse_as_ref(token)) {
        set.members.push_back(ir::AsSetMember::of_asn(*asn));
      } else if (ir::valid_as_set_name(token)) {
        set.members.push_back(ir::AsSetMember::of_set(ir::sym(token)));
      } else {
        ctx.syntax_error("invalid as-set member: '" + std::string(token) + "'");
      }
    }
  }
  set.mbrs_by_ref = symbol_list(raw, "mbrs-by-ref", ctx);
  set.mnt_by = symbol_list(raw, "mnt-by", ctx);
  set.source = ir::sym(raw.source);
  return set;
}

std::optional<ir::RouteSetMember> parse_route_set_member(std::string_view token,
                                                         const ParseContext& ctx) {
  if (iequals(token, "RS-ANY") || iequals(token, "AS-ANY") || iequals(token, "ANY")) {
    ir::RouteSetMember m;
    m.kind = ir::RouteSetMember::Kind::kAny;
    return m;
  }
  // Split a trailing range operator off set references; prefixes keep
  // theirs inside PrefixRange.
  std::string_view body = token;
  net::RangeOp op = net::RangeOp::none();
  if (const std::size_t caret = token.find('^'); caret != std::string_view::npos) {
    if (auto parsed = net::RangeOp::parse(token.substr(caret + 1))) {
      body = token.substr(0, caret);
      op = *parsed;
    }
  }
  ir::RouteSetMember m;
  if (auto prefix = net::PrefixRange::parse(token)) {
    m.kind = ir::RouteSetMember::Kind::kPrefix;
    m.prefix = *prefix;
    return m;
  }
  if (auto asn = ir::parse_as_ref(body)) {
    m.kind = ir::RouteSetMember::Kind::kAsn;
    m.asn = *asn;
    m.op = op;
    return m;
  }
  if (ir::valid_route_set_name(body)) {
    m.kind = ir::RouteSetMember::Kind::kRouteSet;
    m.name = ir::sym(body);
    m.op = op;
    return m;
  }
  if (ir::valid_as_set_name(body)) {
    m.kind = ir::RouteSetMember::Kind::kAsSet;
    m.name = ir::sym(body);
    m.op = op;
    return m;
  }
  ctx.syntax_error("invalid route-set member: '" + std::string(token) + "'");
  return std::nullopt;
}

std::optional<ir::RouteSet> parse_route_set(const RawObjectView& raw,
                                            util::Diagnostics& diagnostics) {
  ParseContext ctx = context_for(raw, diagnostics);
  ir::RouteSet set;
  set.name = ir::sym(raw.key);
  if (!ir::valid_route_set_name(raw.key)) {
    ctx.error(DiagnosticKind::kInvalidSetName,
              "invalid route-set name: '" + std::string(raw.key) + "'");
  }
  for (auto value : raw.all("members")) {
    for (auto token : split_member_list(value, ctx)) {
      if (auto m = parse_route_set_member(token, ctx)) set.members.push_back(std::move(*m));
    }
  }
  for (auto value : raw.all("mp-members")) {
    for (auto token : split_member_list(value, ctx)) {
      if (auto m = parse_route_set_member(token, ctx)) set.mp_members.push_back(std::move(*m));
    }
  }
  set.mbrs_by_ref = symbol_list(raw, "mbrs-by-ref", ctx);
  set.mnt_by = symbol_list(raw, "mnt-by", ctx);
  set.source = ir::sym(raw.source);
  return set;
}

std::optional<ir::PeeringSet> parse_peering_set(const RawObjectView& raw,
                                                util::Diagnostics& diagnostics) {
  ParseContext ctx = context_for(raw, diagnostics);
  ir::PeeringSet set;
  set.name = ir::sym(raw.key);
  if (!ir::valid_peering_set_name(raw.key)) {
    ctx.error(DiagnosticKind::kInvalidSetName,
              "invalid peering-set name: '" + std::string(raw.key) + "'");
  }
  auto parse_one = [&](std::string_view value, std::vector<ir::Peering>& out) {
    Cursor cur(value);
    auto peering = parse_peering(cur, ctx);
    if (peering && cur.at_end()) {
      out.push_back(std::move(*peering));
    } else if (peering) {
      ctx.syntax_error("trailing text in peering: '" + std::string(cur.remaining()) + "'");
    }
  };
  for (auto value : raw.all("peering")) parse_one(value, set.peerings);
  for (auto value : raw.all("mp-peering")) parse_one(value, set.mp_peerings);
  set.source = ir::sym(raw.source);
  return set;
}

std::optional<ir::FilterSet> parse_filter_set(const RawObjectView& raw,
                                              util::Diagnostics& diagnostics) {
  ParseContext ctx = context_for(raw, diagnostics);
  ir::FilterSet set;
  set.name = ir::sym(raw.key);
  if (!ir::valid_filter_set_name(raw.key)) {
    ctx.error(DiagnosticKind::kInvalidSetName,
              "invalid filter-set name: '" + std::string(raw.key) + "'");
  }
  if (auto value = raw.first("filter"); !value.empty()) {
    set.filter = parse_filter(value, ctx);
    set.has_filter = true;
  }
  if (auto value = raw.first("mp-filter"); !value.empty()) {
    set.mp_filter = parse_filter(value, ctx);
    set.has_mp_filter = true;
  }
  set.source = ir::sym(raw.source);
  return set;
}

std::optional<ir::RouteObject> parse_route(const RawObjectView& raw,
                                           util::Diagnostics& diagnostics, bool v6) {
  ParseContext ctx = context_for(raw, diagnostics);
  auto prefix = net::Prefix::parse(raw.key);
  if (!prefix) {
    ctx.error(DiagnosticKind::kInvalidAttribute,
              "invalid route prefix: '" + std::string(raw.key) + "'");
    return std::nullopt;
  }
  if (prefix->is_v4() == v6) {
    ctx.error(DiagnosticKind::kInvalidAttribute,
              "route prefix family does not match object class: '" +
                  std::string(raw.key) + "'");
    return std::nullopt;
  }
  auto origin = ir::parse_as_ref(trim(raw.first("origin")));
  if (!origin) {
    ctx.error(DiagnosticKind::kInvalidAttribute,
              "route " + std::string(raw.key) + " has invalid origin: '" +
                  std::string(raw.first("origin")) + "'");
    return std::nullopt;
  }
  ir::RouteObject route;
  route.prefix = *prefix;
  route.origin = *origin;
  route.member_of = symbol_list(raw, "member-of", ctx);
  route.mnt_by = symbol_list(raw, "mnt-by", ctx);
  route.source = ir::sym(raw.source);
  return route;
}

template <typename T>
ParsedObject wrap(std::optional<T> value) {
  if (!value) return std::monostate{};
  return std::move(*value);
}

}  // namespace

ir::Rule parse_rule(std::string_view text, ir::Rule::Direction direction, bool mp,
                    const ParseContext& ctx) {
  ir::Rule rule;
  rule.direction = direction;
  rule.mp = mp;
  rule.text = std::string(trim(text));

  Cursor cur(text);
  if (cur.eat_keyword("protocol")) rule.protocol = std::string(cur.next_atom());
  if (cur.eat_keyword("into")) rule.into = std::string(cur.next_atom());

  bool ok = true;
  rule.entry = parse_entry(cur, rule.is_import(), ctx, ok);
  if (!cur.at_end()) {
    ctx.syntax_error("trailing text in rule: '" + std::string(cur.remaining()) + "'");
  }
  return rule;
}

ParsedObject parse_object(const RawObjectView& raw, util::Diagnostics& diagnostics) {
  if (raw.class_name == "aut-num") return wrap(parse_aut_num(raw, diagnostics));
  if (raw.class_name == "as-set") return wrap(parse_as_set(raw, diagnostics));
  if (raw.class_name == "route-set") return wrap(parse_route_set(raw, diagnostics));
  if (raw.class_name == "peering-set") return wrap(parse_peering_set(raw, diagnostics));
  if (raw.class_name == "filter-set") return wrap(parse_filter_set(raw, diagnostics));
  if (raw.class_name == "route") return wrap(parse_route(raw, diagnostics, false));
  if (raw.class_name == "route6") return wrap(parse_route(raw, diagnostics, true));
  return std::monostate{};
}

ParsedObject parse_object(const RawObject& raw, util::Diagnostics& diagnostics) {
  std::vector<RawAttributeView> attrs;
  attrs.reserve(raw.attributes.size());
  for (const RawAttribute& attr : raw.attributes) {
    attrs.push_back({attr.name, attr.value, attr.line});
  }
  RawObjectView view;
  view.class_name = raw.class_name;
  view.key = raw.key;
  view.attributes = attrs;
  view.source = raw.source;
  view.line = raw.line;
  return parse_object(view, diagnostics);
}

}  // namespace rpslyzer::rpsl
