#include "rpslyzer/rpsl/object_lexer.hpp"

#include <cstring>

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::rpsl {

namespace {

using util::trim;

/// Strip a '#' comment, respecting nothing else: RPSL has no string literals
/// in attribute values, so the first '#' always begins a comment.
std::string_view strip_comment(std::string_view line) noexcept {
  const std::size_t hash = line.find('#');
  return hash == std::string_view::npos ? line : line.substr(0, hash);
}

bool is_attribute_start(std::string_view line) noexcept {
  // An attribute line starts with a letter (or '*' for some legacy dumps)
  // and contains a colon.
  if (line.empty()) return false;
  const char c = line.front();
  return util::is_alpha(c) || c == '*';
}

/// Valid attribute names: letters, digits, '-', '_' (we also accept a legacy
/// leading '*').
bool valid_attribute_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (char c : name) {
    if (!util::is_alnum(c) && c != '-' && c != '_' && c != '*') return false;
  }
  return true;
}

/// Lowercase `name` without copying when it already is: dump attribute
/// names are overwhelmingly lowercase, so the common case stays a slice of
/// the dump buffer and only the exceptions spill into the arena.
std::string_view lower_view(std::string_view name, util::Arena& arena) {
  std::size_t i = 0;
  while (i < name.size() && !(name[i] >= 'A' && name[i] <= 'Z')) ++i;
  if (i == name.size()) return name;
  char* buf = arena.alloc_chars(name.size());
  std::memcpy(buf, name.data(), i);
  for (std::size_t j = i; j < name.size(); ++j) buf[j] = util::to_lower(name[j]);
  return {buf, name.size()};
}

/// Join `value` and a continuation fragment with one space, in the arena.
/// Continuations are rare enough that re-copying the accumulated value per
/// fragment beats reserving growth room for every attribute.
std::string_view join_continuation(std::string_view value, std::string_view cont,
                                   util::Arena& arena) {
  if (cont.empty()) return value;
  if (value.empty()) return cont;
  char* buf = arena.alloc_chars(value.size() + 1 + cont.size());
  std::memcpy(buf, value.data(), value.size());
  buf[value.size()] = ' ';
  std::memcpy(buf + value.size() + 1, cont.data(), cont.size());
  return {buf, value.size() + 1 + cont.size()};
}

}  // namespace

std::string_view RawObjectView::first(std::string_view name) const noexcept {
  for (const auto& attr : attributes) {
    if (attr.name == name) return attr.value;
  }
  return {};
}

std::vector<std::string_view> RawObjectView::all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& attr : attributes) {
    if (attr.name == name) out.push_back(attr.value);
  }
  return out;
}

std::string_view RawObject::first(std::string_view name) const noexcept {
  for (const auto& attr : attributes) {
    if (attr.name == name) return attr.value;
  }
  return {};
}

std::vector<std::string_view> RawObject::all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& attr : attributes) {
    if (attr.name == name) out.push_back(attr.value);
  }
  return out;
}

std::vector<RawObjectView> lex_objects_view(std::string_view text,
                                            std::string_view source,
                                            util::Diagnostics& diagnostics,
                                            util::Arena& arena,
                                            std::size_t line_offset) {
  std::vector<RawObjectView> objects;
  // Attributes of the object being lexed; copied into an arena span when
  // the object closes, so the scratch vector's capacity is reused for the
  // whole dump instead of allocated per object.
  std::vector<RawAttributeView> scratch;
  RawObjectView current;
  current.source = source;
  bool in_object = false;

  auto finish_object = [&] {
    if (in_object && !scratch.empty()) {
      auto* stored = arena.alloc_array<RawAttributeView>(scratch.size());
      std::memcpy(stored, scratch.data(), scratch.size() * sizeof(RawAttributeView));
      current.attributes = {stored, scratch.size()};
      current.class_name = stored[0].name;
      current.key = stored[0].value;
      objects.push_back(current);
    }
    current = RawObjectView{};
    current.source = source;
    scratch.clear();
    in_object = false;
  };

  std::size_t line_no = line_offset;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Extract one line (the final line may lack a trailing newline).
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    // Server remarks never terminate an object; they are interleaved noise.
    if (!line.empty() && line.front() == '%') continue;

    std::string_view content = strip_comment(line);
    if (trim(content).empty()) {
      // A blank (or comment-only) line ends the current object. Note an
      // all-comment line ('#...') also separates objects in practice.
      if (trim(line).empty()) {
        finish_object();
      }
      // A line that only held a comment keeps the object open.
      continue;
    }

    const char first_char = content.front();
    if (first_char == ' ' || first_char == '\t' || first_char == '+') {
      // Continuation of the previous attribute's value.
      std::string_view cont = content;
      if (first_char == '+') cont.remove_prefix(1);
      cont = trim(cont);
      if (!in_object || scratch.empty()) {
        diagnostics.error(util::DiagnosticKind::kSyntaxError,
                          "continuation line outside any attribute", {},
                          {std::string(source), line_no});
        continue;
      }
      if (!cont.empty()) {
        auto& value = scratch.back().value;
        value = join_continuation(value, cont, arena);
      }
      continue;
    }

    if (!is_attribute_start(content)) {
      diagnostics.error(util::DiagnosticKind::kSyntaxError,
                        "line does not start an attribute: '" + std::string(trim(content)) + "'",
                        std::string{},  // matches the owning lexer: the key is
                        // only derived when the object closes
                        {std::string(source), line_no});
      continue;
    }

    const std::size_t colon = content.find(':');
    if (colon == std::string_view::npos) {
      diagnostics.error(util::DiagnosticKind::kSyntaxError,
                        "attribute line missing ':': '" + std::string(trim(content)) + "'",
                        std::string{},
                        {std::string(source), line_no});
      continue;
    }

    std::string_view name = lower_view(trim(content.substr(0, colon)), arena);
    if (!valid_attribute_name(name)) {
      diagnostics.error(util::DiagnosticKind::kSyntaxError,
                        "invalid attribute name: '" + std::string(name) + "'",
                        std::string{},
                        {std::string(source), line_no});
      continue;
    }

    if (!in_object) {
      in_object = true;
      current.line = line_no;
    }
    scratch.push_back({name, trim(content.substr(colon + 1)), line_no});
  }
  finish_object();
  return objects;
}

std::vector<RawObject> lex_objects(std::string_view text, std::string_view source,
                                   util::Diagnostics& diagnostics,
                                   std::size_t line_offset) {
  util::Arena arena;
  std::vector<RawObjectView> views =
      lex_objects_view(text, source, diagnostics, arena, line_offset);
  std::vector<RawObject> objects;
  objects.reserve(views.size());
  for (const RawObjectView& view : views) {
    RawObject object;
    object.class_name = std::string(view.class_name);
    object.key = std::string(view.key);
    object.source = std::string(view.source);
    object.line = view.line;
    object.attributes.reserve(view.attributes.size());
    for (const RawAttributeView& attr : view.attributes) {
      object.attributes.push_back(
          {std::string(attr.name), std::string(attr.value), attr.line});
    }
    objects.push_back(std::move(object));
  }
  return objects;
}

std::vector<Shard> shard_objects(std::string_view text, std::size_t target_bytes) {
  std::vector<Shard> shards;
  if (text.empty()) return shards;
  if (target_bytes == 0) target_bytes = 1;

  std::size_t shard_start = 0;       // byte offset of the current shard
  std::size_t shard_first_line = 0;  // lines before the current shard
  std::size_t lines_seen = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    const std::size_t line_end = eol == std::string_view::npos ? text.size() : eol;
    const std::size_t next = eol == std::string_view::npos ? text.size() : eol + 1;
    ++lines_seen;
    // The lexer treats a line as an object separator iff it is empty after
    // trimming; trim's whitespace set includes '\r', so CRLF blank lines
    // and whitespace-only lines qualify here exactly as they do there.
    const bool blank = trim(text.substr(pos, line_end - pos)).empty();
    if (blank && next - shard_start >= target_bytes && next < text.size()) {
      shards.push_back({text.substr(shard_start, next - shard_start), shard_first_line});
      shard_start = next;
      shard_first_line = lines_seen;
    }
    pos = next;
  }
  shards.push_back({text.substr(shard_start), shard_first_line});
  return shards;
}

}  // namespace rpslyzer::rpsl
