// Parallel verification must be byte-for-byte identical to the serial
// engine: same statuses, same report items, same order.

#include <gtest/gtest.h>

#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/generator.hpp"
#include "rpslyzer/verify/parallel.hpp"

namespace rpslyzer::verify {
namespace {

struct Pipeline {
  synth::InternetGenerator generator;
  Rpslyzer lyzer;
  std::vector<bgp::Route> routes;

  Pipeline()
      : generator([] {
          synth::SynthConfig config;
          config.seed = 21;
          config.tier1_count = 4;
          config.tier2_count = 10;
          config.tier3_count = 30;
          config.stub_count = 150;
          config.collectors = 6;
          return config;
        }()),
        lyzer([&] {
          std::vector<std::pair<std::string, std::string>> ordered;
          for (const auto& name : synth::irr_names()) {
            ordered.emplace_back(name, generator.irr_dumps().at(name));
          }
          return Rpslyzer::from_texts(ordered, generator.caida_serial1());
        }()) {
    for (const auto& dump : generator.bgp_dumps()) {
      for (auto& route : bgp::parse_table_dump(dump)) routes.push_back(std::move(route));
    }
  }
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

bool same_check(const CheckResult& a, const CheckResult& b) {
  return a.status == b.status && a.items == b.items;
}

TEST(ParallelVerify, MatchesSerialExactly) {
  auto& p = pipeline();
  ASSERT_GT(p.routes.size(), 1000u);

  Verifier serial(p.lyzer.index(), p.lyzer.relations());
  auto parallel =
      verify_routes_parallel(p.lyzer.index(), p.lyzer.relations(), p.routes, {}, 4);
  ASSERT_EQ(parallel.size(), p.routes.size());
  for (std::size_t i = 0; i < p.routes.size(); ++i) {
    auto expected = serial.verify_route(p.routes[i]);
    ASSERT_EQ(parallel[i].size(), expected.size()) << i;
    for (std::size_t h = 0; h < expected.size(); ++h) {
      EXPECT_EQ(parallel[i][h].from, expected[h].from);
      EXPECT_EQ(parallel[i][h].to, expected[h].to);
      EXPECT_TRUE(same_check(parallel[i][h].export_result, expected[h].export_result))
          << "route " << i << " hop " << h;
      EXPECT_TRUE(same_check(parallel[i][h].import_result, expected[h].import_result))
          << "route " << i << " hop " << h;
    }
  }
}

TEST(ParallelVerify, SingleThreadAndEmptyInput) {
  auto& p = pipeline();
  std::vector<bgp::Route> empty;
  EXPECT_TRUE(verify_routes_parallel(p.lyzer.index(), p.lyzer.relations(), empty).empty());

  std::vector<bgp::Route> few(p.routes.begin(), p.routes.begin() + 3);
  auto one_thread =
      verify_routes_parallel(p.lyzer.index(), p.lyzer.relations(), few, {}, 1);
  EXPECT_EQ(one_thread.size(), 3u);
}

TEST(ParallelVerify, ManyThreadsOnTinyInputVerifiesEveryRouteOnce) {
  // Regression: the batch dispatcher claimed work with a bare
  // fetch_add(kBatch), pushing the shared counter far past routes.size()
  // when threads outnumber batches. The bounded CAS claim must hand out
  // each route exactly once and park the surplus workers.
  auto& p = pipeline();
  Verifier serial(p.lyzer.index(), p.lyzer.relations());

  std::vector<bgp::Route> tiny(p.routes.begin(), p.routes.begin() + 3);
  auto tiny_results =
      verify_routes_parallel(p.lyzer.index(), p.lyzer.relations(), tiny, {}, 64);
  ASSERT_EQ(tiny_results.size(), 3u);
  for (std::size_t i = 0; i < tiny.size(); ++i) {
    auto expected = serial.verify_route(tiny[i]);
    ASSERT_EQ(tiny_results[i].size(), expected.size()) << i;
    for (std::size_t h = 0; h < expected.size(); ++h) {
      EXPECT_TRUE(same_check(tiny_results[i][h].import_result, expected[h].import_result))
          << "route " << i << " hop " << h;
    }
  }

  // ~200 routes and 64 threads is past the serial fast path but leaves only
  // a handful of batches, so most workers contend on an exhausted counter.
  ASSERT_GE(p.routes.size(), 200u);
  std::vector<bgp::Route> small(p.routes.begin(), p.routes.begin() + 200);
  auto small_results =
      verify_routes_parallel(p.lyzer.index(), p.lyzer.relations(), small, {}, 64);
  ASSERT_EQ(small_results.size(), small.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    auto expected = serial.verify_route(small[i]);
    ASSERT_EQ(small_results[i].size(), expected.size()) << i;
    for (std::size_t h = 0; h < expected.size(); ++h) {
      EXPECT_TRUE(same_check(small_results[i][h].export_result, expected[h].export_result))
          << "route " << i << " hop " << h;
      EXPECT_TRUE(same_check(small_results[i][h].import_result, expected[h].import_result))
          << "route " << i << " hop " << h;
    }
  }
}

TEST(ParallelVerify, SnapshotOverloadMatchesSerial) {
  auto& p = pipeline();
  std::vector<bgp::Route> sample(
      p.routes.begin(), p.routes.begin() + std::min<std::size_t>(400, p.routes.size()));
  Verifier serial(p.lyzer.index(), p.lyzer.relations());
  auto results = verify_routes_parallel(p.lyzer.snapshot(), sample, {}, 8);
  ASSERT_EQ(results.size(), sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    auto expected = serial.verify_route(sample[i]);
    ASSERT_EQ(results[i].size(), expected.size()) << i;
    for (std::size_t h = 0; h < expected.size(); ++h) {
      EXPECT_TRUE(same_check(results[i][h].export_result, expected[h].export_result))
          << "route " << i << " hop " << h;
      EXPECT_TRUE(same_check(results[i][h].import_result, expected[h].import_result))
          << "route " << i << " hop " << h;
    }
  }
}

TEST(ParallelVerify, OptionsPropagate) {
  auto& p = pipeline();
  std::vector<bgp::Route> sample(p.routes.begin(),
                                 p.routes.begin() + std::min<std::size_t>(500, p.routes.size()));
  VerifyOptions strict;
  strict.relaxations = false;
  strict.safelists = false;
  auto strict_results =
      verify_routes_parallel(p.lyzer.index(), p.lyzer.relations(), sample, strict, 3);
  for (const auto& hops : strict_results) {
    for (const auto& hop : hops) {
      EXPECT_NE(hop.import_result.status, Status::kRelaxed);
      EXPECT_NE(hop.import_result.status, Status::kSafelisted);
      EXPECT_NE(hop.export_result.status, Status::kRelaxed);
      EXPECT_NE(hop.export_result.status, Status::kSafelisted);
    }
  }
}

TEST(IndexPrewarm, StabilizesTaint) {
  // After prewarm, repeated flattening queries return stable pointers.
  auto& p = pipeline();
  p.lyzer.index().prewarm();
  std::vector<const irr::FlattenedAsSet*> first;
  for (const auto& [name, set] : p.lyzer.ir().as_sets) {
    first.push_back(p.lyzer.index().flattened(name));
  }
  std::size_t i = 0;
  for (const auto& [name, set] : p.lyzer.ir().as_sets) {
    EXPECT_EQ(p.lyzer.index().flattened(name), first[i++]) << name;
  }
}

}  // namespace
}  // namespace rpslyzer::verify
