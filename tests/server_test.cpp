#include "rpslyzer/server/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/relations/relations.hpp"
#include "rpslyzer/server/cache.hpp"
#include "rpslyzer/server/client.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer::server {
namespace {

namespace fp = util::failpoint;

// ---------------------------------------------------------------------------
// ResponseCache
// ---------------------------------------------------------------------------

TEST(ResponseCache, HitMissAndLru) {
  ResponseCache cache(/*capacity=*/2, /*shards=*/1);
  EXPECT_FALSE(cache.get("a", 1).has_value());
  cache.put("a", 1, "A\n");
  cache.put("b", 1, "B\n");
  EXPECT_EQ(cache.get("a", 1), "A\n");  // touches "a": "b" is now LRU
  cache.put("c", 1, "C\n");             // evicts "b"
  EXPECT_EQ(cache.get("a", 1), "A\n");
  EXPECT_FALSE(cache.get("b", 1).has_value());
  EXPECT_EQ(cache.get("c", 1), "C\n");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(ResponseCache, GenerationInvalidates) {
  ResponseCache cache(8, 2);
  cache.put("q", 1, "old\n");
  EXPECT_EQ(cache.get("q", 1), "old\n");
  // A reload bumps the generation: the stale entry must not be served.
  EXPECT_FALSE(cache.get("q", 2).has_value());
  EXPECT_EQ(cache.stats().invalidated, 1u);
  cache.put("q", 2, "new\n");
  EXPECT_EQ(cache.get("q", 2), "new\n");
}

TEST(ResponseCache, ZeroCapacityIsNoop) {
  ResponseCache cache(0);
  cache.put("q", 1, "x\n");
  EXPECT_FALSE(cache.get("q", 1).has_value());
}

TEST(ResponseCache, NormalizeQueryKey) {
  EXPECT_EQ(normalize_query_key("!gAS64500"), "gas64500");
  EXPECT_EQ(normalize_query_key("  gAS64500 \r"), "gas64500");
  EXPECT_EQ(normalize_query_key("!iAS-CONE,1"), "ias-cone,1");
}

// ---------------------------------------------------------------------------
// ServerStats (registry-backed)
// ---------------------------------------------------------------------------

TEST(ServerStats, LatencyPercentiles) {
  rpslyzer::obs::MetricsRegistry registry;
  ServerStats stats(registry, ServerStats::default_latency_bounds());
  ServerStats::Snapshot empty = stats.snapshot();
  EXPECT_EQ(empty.latency_percentile_micros(99, stats.latency.bounds()), 0u);
  for (int i = 0; i < 99; ++i) stats.latency.observe(3e-6);  // bucket (2µs,4µs]
  stats.latency.observe(5e-3);  // bucket (4096µs,8192µs]
  ServerStats::Snapshot snap = stats.snapshot();
  EXPECT_EQ(snap.latency.count, 100u);
  EXPECT_EQ(snap.latency_percentile_micros(50, stats.latency.bounds()), 4u);
  EXPECT_EQ(snap.latency_percentile_micros(99, stats.latency.bounds()), 4u);
  EXPECT_EQ(snap.latency_percentile_micros(100, stats.latency.bounds()), 8192u);
  EXPECT_GT(snap.latency_mean_micros(), 3u);
}

TEST(ServerStats, SnapshotSubsetsNeverExceedTotals) {
  rpslyzer::obs::MetricsRegistry registry;
  ServerStats stats(registry, ServerStats::default_latency_bounds());
  // Writers bump the total before the subset; snapshot() reads the subset
  // first. Hammer both from a writer thread while snapshotting and assert
  // the invariant admin <= total holds in every observed snapshot.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      stats.queries_total.inc();
      stats.admin_queries.inc();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const ServerStats::Snapshot snap = stats.snapshot();
    ASSERT_LE(snap.admin_queries, snap.queries_total);
    ASSERT_LE(snap.queries_errors, snap.queries_total);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

// ---------------------------------------------------------------------------
// Loopback integration
// ---------------------------------------------------------------------------

// Two corpus versions: a reload swaps AS64500's second prefix, so responses
// observably change across generations.
constexpr const char* kCorpusV1 =
    "aut-num: AS64500\n"
    "import: from AS64501 accept ANY\n"
    "export: to AS64501 announce AS-CONE\n\n"
    "as-set: AS-CONE\nmembers: AS64500, AS-SUB\n\n"
    "as-set: AS-SUB\nmembers: AS64502\n\n"
    "route: 10.0.0.0/8\norigin: AS64500\n\n"
    "route: 10.64.0.0/16\norigin: AS64500\n\n"
    "route6: 2001:db8::/32\norigin: AS64500\n\n"
    "route: 198.51.100.0/24\norigin: AS64502\n";
constexpr const char* kCorpusV2 =
    "aut-num: AS64500\n"
    "import: from AS64501 accept ANY\n\n"
    "as-set: AS-CONE\nmembers: AS64500, AS-SUB\n\n"
    "as-set: AS-SUB\nmembers: AS64502\n\n"
    "route: 10.0.0.0/8\norigin: AS64500\n\n"
    "route: 172.16.0.0/12\norigin: AS64500\n\n"
    "route6: 2001:db8::/32\norigin: AS64500\n\n"
    "route: 198.51.100.0/24\norigin: AS64502\n";

/// Bundles the Ir with its Index (and empty AS relations) so a shared_ptr
/// keeps everything alive; the compiled snapshot built over aliasing
/// pointers then owns the bundle, exactly the contract CorpusLoader
/// documents.
struct OwnedCorpus {
  util::Diagnostics diag;
  ir::Ir ir;
  irr::Index index;
  relations::AsRelations relations;

  explicit OwnedCorpus(const char* text)
      : ir(irr::parse_dump(text, "TEST", diag)), index(ir) {}
};

std::shared_ptr<const compile::CompiledPolicySnapshot> make_corpus(const char* text) {
  auto owned = std::make_shared<OwnedCorpus>(text);
  return compile::CompiledPolicySnapshot::build(
      std::shared_ptr<const irr::Index>(owned, &owned->index),
      std::shared_ptr<const relations::AsRelations>(owned, &owned->relations));
}

ServerConfig test_config() {
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.worker_threads = 3;
  config.cache_capacity = 64;
  config.idle_timeout = std::chrono::milliseconds(0);
  return config;
}

TEST(Server, PipelinedQueriesFromConcurrentConnectionsMatchEngine) {
  Server server(test_config(), [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  // The in-process ground truth the daemon must reproduce byte for byte.
  OwnedCorpus reference(kCorpusV1);
  query::QueryEngine engine(reference.index);
  const std::vector<std::string> queries = {
      "!gAS64500", "!6AS64500",  "!iAS-CONE", "!iAS-CONE,1", "!iRS-NOPE",
      "!aAS-CONE", "!a4AS-CONE", "!a6AS-CONE", "!aAS64502",  "!oAS64500",
      "!gAS99",    "!gBOGUS",    "!zUNSUPPORTED", "gas64500", "!6as64500"};
  std::vector<std::string> expected;
  expected.reserve(queries.size());
  for (const auto& query : queries) expected.push_back(engine.evaluate(query));

  constexpr int kConnections = 8;
  constexpr int kRounds = 20;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kConnections);
  for (int c = 0; c < kConnections; ++c) {
    clients.emplace_back([&] {
      auto client = Client::connect("127.0.0.1", server.port());
      if (!client) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        // Pipeline the whole mix, then read all responses in order.
        for (const auto& query : queries) {
          if (!client->send_line(query)) {
            ++failures;
            return;
          }
        }
        for (const auto& want : expected) {
          auto got = client->read_response();
          if (!got) {
            ++failures;
            return;
          }
          if (*got != want) ++mismatches;
        }
      }
      client->send_line("!q");
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const auto& stats = server.stats();
  EXPECT_EQ(stats.connections_accepted.value(), kConnections);
  EXPECT_GE(stats.queries_total.value(),
            static_cast<std::uint64_t>(kConnections * kRounds * queries.size()));
  EXPECT_GT(server.cache_stats().hits, 0u);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().connections_open.value(), 0);
}

TEST(Server, ReloadSwapsCorpusAndInvalidatesCache) {
  std::atomic<int> loads{0};
  auto loader = [&loads]() {
    return make_corpus(loads++ == 0 ? kCorpusV1 : kCorpusV2);
  };
  Server server(test_config(), loader);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());

  OwnedCorpus v1(kCorpusV1);
  OwnedCorpus v2(kCorpusV2);
  const std::string want_v1 = query::QueryEngine(v1.index).evaluate("!gAS64500");
  const std::string want_v2 = query::QueryEngine(v2.index).evaluate("!gAS64500");
  ASSERT_NE(want_v1, want_v2);

  ASSERT_TRUE(client->send_line("!gAS64500"));
  EXPECT_EQ(client->read_response(), want_v1);
  ASSERT_TRUE(client->send_line("!gAS64500"));  // second hit comes from cache
  EXPECT_EQ(client->read_response(), want_v1);
  EXPECT_EQ(server.cache_stats().hits, 1u);

  ASSERT_TRUE(client->send_line("!reload"));
  EXPECT_EQ(client->read_response(), "C\n");
  EXPECT_EQ(server.generation(), 2u);

  // Same query, new generation: the stale entry must not be served.
  ASSERT_TRUE(client->send_line("!gAS64500"));
  EXPECT_EQ(client->read_response(), want_v2);

  // The swap is visible through the admin stats query too.
  ASSERT_TRUE(client->send_line("!stats"));
  auto stats_response = client->read_response();
  ASSERT_TRUE(stats_response.has_value());
  EXPECT_NE(stats_response->find("generation: 2"), std::string::npos);
  EXPECT_NE(stats_response->find("reloads: 1"), std::string::npos);
  EXPECT_GE(server.cache_stats().invalidated, 1u);

  client->send_line("!q");
  server.stop();
  EXPECT_EQ(server.stats().connections_open.value(), 0);
}

TEST(Server, AdminCommandsAndProtocolEdges) {
  Server server(test_config(), [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  // "!!" elicits no response; the next query must answer immediately after.
  ASSERT_TRUE(client->send_line("!!"));
  ASSERT_TRUE(client->send_line("!t30"));
  EXPECT_EQ(client->read_response(), "C\n");
  ASSERT_TRUE(client->send_line("!gAS64502"));
  EXPECT_EQ(client->read_response(), "A16\n198.51.100.0/24\nC\n");
  // !q closes after pending responses drain.
  ASSERT_TRUE(client->send_line("!6AS64502"));
  ASSERT_TRUE(client->send_line("!q"));
  EXPECT_EQ(client->read_response(), "C\n");
  EXPECT_FALSE(client->read_response().has_value());  // EOF

  // Over-long lines are refused without crashing the connection budget.
  auto hog = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(hog.has_value());
  ASSERT_TRUE(hog->send_line("!g" + std::string(8192, 'x')));
  auto refusal = hog->read_response();
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->front(), 'F');
  EXPECT_FALSE(hog->read_response().has_value());  // server closed

  server.stop();
  EXPECT_EQ(server.stats().connections_open.value(), 0);
}

TEST(Server, MetricsQueryServesPrometheusExposition) {
  Server server(test_config(), [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  // Drive a little traffic first so the page has non-zero series.
  ASSERT_TRUE(client->send_line("!gAS64500"));
  ASSERT_TRUE(client->read_response().has_value());
  ASSERT_TRUE(client->send_line("!gAS64500"));  // cache hit
  ASSERT_TRUE(client->read_response().has_value());

  ASSERT_TRUE(client->send_line("!metrics"));
  auto framed = client->read_response();
  ASSERT_TRUE(framed.has_value());
  ASSERT_EQ(framed->front(), 'A');
  const std::size_t newline = framed->find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string page = framed->substr(newline + 1);

  // Valid exposition structure: every sample line's family has HELP + TYPE.
  EXPECT_NE(page.find("# HELP rpslyzer_server_queries_total "), std::string::npos);
  EXPECT_NE(page.find("# TYPE rpslyzer_server_queries_total counter\n"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE rpslyzer_server_query_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(page.find("rpslyzer_server_query_latency_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  // Series spanning server, cache, and (global registry) query engine.
  EXPECT_NE(page.find("rpslyzer_server_connections_open 1\n"), std::string::npos);
  EXPECT_NE(page.find("rpslyzer_cache_hits_total 1\n"), std::string::npos);
  EXPECT_NE(page.find("rpslyzer_server_generation 1\n"), std::string::npos);
  EXPECT_NE(page.find("rpslyzer_query_evaluations_total{op=\"g\"}"), std::string::npos);

  // The acceptance bar: at least 15 distinct metric families on the page.
  std::size_t families = 0;
  for (std::size_t pos = page.find("# TYPE "); pos != std::string::npos;
       pos = page.find("# TYPE ", pos + 1)) {
    ++families;
  }
  EXPECT_GE(families, 15u) << page;

  // !stats coherence: admin/error counts can never exceed the total.
  ASSERT_TRUE(client->send_line("!stats"));
  auto stats_response = client->read_response();
  ASSERT_TRUE(stats_response.has_value());
  const ServerStats::Snapshot snap = server.stats().snapshot();
  EXPECT_LE(snap.admin_queries, snap.queries_total);
  EXPECT_LE(snap.queries_errors, snap.queries_total);

  client->send_line("!q");
  server.stop();
}

TEST(Server, MaxConnectionGuardRefusesExtras) {
  ServerConfig config = test_config();
  config.max_connections = 2;
  Server server(config, [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto first = Client::connect("127.0.0.1", server.port());
  auto second = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Ensure both are registered before the third knocks.
  ASSERT_TRUE(first->send_line("!gAS64502"));
  ASSERT_TRUE(first->read_response().has_value());
  ASSERT_TRUE(second->send_line("!gAS64502"));
  ASSERT_TRUE(second->read_response().has_value());

  auto third = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(third.has_value());  // TCP accept succeeds, then refusal
  auto refusal = third->read_response();
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(*refusal, "F too many connections\n");
  EXPECT_FALSE(third->read_response().has_value());  // closed
  EXPECT_EQ(server.stats().connections_rejected.value(), 1u);

  server.stop();
}

TEST(Server, IdleConnectionsAreReaped) {
  ServerConfig config = test_config();
  config.idle_timeout = std::chrono::milliseconds(200);
  Server server(config, [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  // Do nothing: the sweep must close us. read_response returns EOF.
  EXPECT_FALSE(client->read_response().has_value());
  EXPECT_EQ(server.stats().connections_idle_closed.value(), 1u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Flight recorder + trace propagation (PR 8)
// ---------------------------------------------------------------------------

TEST(Server, TraceIdPrefixDrivesTheFlightRecorder) {
  Server server(test_config(), [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  OwnedCorpus reference(kCorpusV1);
  const std::string want = query::QueryEngine(reference.index).evaluate("!gAS64500");

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  // Client-supplied trace id: the prefix must be stripped before evaluation
  // (and before the cache key), so the response is byte-identical to the
  // bare query's.
  ASSERT_TRUE(client->send_line("!id ab !gAS64500"));
  EXPECT_EQ(client->read_response(), want);
  ASSERT_TRUE(client->send_line("!id AB !gAS64500"));  // same id, cache hit
  EXPECT_EQ(client->read_response(), want);
  EXPECT_EQ(server.cache_stats().hits, 1u);

  // `!trace <id>` reconstructs both queries with the full stage breakdown.
  ASSERT_TRUE(client->send_line("!trace ab"));
  auto framed = client->read_response();
  ASSERT_TRUE(framed.has_value());
  ASSERT_EQ(framed->front(), 'A');
  EXPECT_NE(framed->find("trace: 00000000000000ab"), std::string::npos);
  EXPECT_NE(framed->find("records: 2"), std::string::npos);
  EXPECT_NE(framed->find("verb: !gAS64500"), std::string::npos);
  EXPECT_NE(framed->find("cache: miss"), std::string::npos);
  EXPECT_NE(framed->find("cache: hit"), std::string::npos);
  EXPECT_NE(framed->find("generation: 1"), std::string::npos);
  EXPECT_NE(framed->find("stage-queue-us: "), std::string::npos);
  EXPECT_NE(framed->find("stage-eval-us: "), std::string::npos);
  EXPECT_NE(framed->find("stage-total-us: "), std::string::npos);

  // Unknown id → not found; garbled id / garbled prefix → errors.
  ASSERT_TRUE(client->send_line("!trace dead"));
  EXPECT_EQ(client->read_response(), "D\n");
  ASSERT_TRUE(client->send_line("!trace xyz"));
  EXPECT_EQ(client->read_response(), "F usage: !trace <hex-id>\n");
  ASSERT_TRUE(client->send_line("!id zz !gAS64500"));
  EXPECT_EQ(client->read_response(), "F invalid trace id (expect 1-16 hex digits)\n");
  ASSERT_TRUE(client->send_line("!id 0 !gAS64500"));  // 0 means "no context"
  EXPECT_EQ(client->read_response(), "F invalid trace id (expect 1-16 hex digits)\n");

  // Without a handler wired (no replication origin), !fleet refuses.
  ASSERT_TRUE(client->send_line("!fleet"));
  EXPECT_EQ(client->read_response(), "F fleet aggregation not enabled\n");

  client->send_line("!q");
  server.stop();
}

TEST(Server, SlowQueriesLandInTheSlowLog) {
  fp::clear_all();
  ServerConfig config = test_config();
  config.slow_threshold = std::chrono::milliseconds(10);
  Server server(config, [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  // One stalled evaluation crosses the 10 ms threshold; the next is fast
  // and must stay out of the slow log.
  ASSERT_TRUE(fp::set("server.dispatch", "1*delay(30ms)"));
  ASSERT_TRUE(client->send_line("!id feed !gAS64500"));
  ASSERT_TRUE(client->read_response().has_value());
  ASSERT_TRUE(client->send_line("!gAS64502"));
  ASSERT_TRUE(client->read_response().has_value());
  fp::clear_all();

  ASSERT_TRUE(client->send_line("!slow"));
  auto framed = client->read_response();
  ASSERT_TRUE(framed.has_value());
  ASSERT_EQ(framed->front(), 'A');
  EXPECT_NE(framed->find("slow-queries: 1"), std::string::npos);
  EXPECT_NE(framed->find("threshold-ms: 10"), std::string::npos);
  EXPECT_NE(framed->find("trace=000000000000feed"), std::string::npos);
  EXPECT_NE(framed->find("verb=!gAS64500"), std::string::npos);

  client->send_line("!q");
  server.stop();
}

TEST(Server, DeadlineMissSnapshotsTheFlightRecorder) {
  fp::clear_all();
  ServerConfig config = test_config();
  config.query_deadline = std::chrono::milliseconds(100);
  config.metrics_snapshot_path = ::testing::TempDir() + "metrics.prom";
  config.metrics_snapshot_interval = std::chrono::milliseconds(0);
  Server server(config, [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  // The worker stalls well past the deadline; the sweep answers for it.
  ASSERT_TRUE(fp::set("server.dispatch", "1*delay(800ms)"));
  ASSERT_TRUE(client->send_line("!id deadbeef !gAS64500"));
  EXPECT_EQ(client->read_response(), "F timeout\n");
  fp::clear_all();

  // The miss dumped the ring next to the metrics file, named after the
  // offending trace id, with the timed-out query marked outcome=T.
  const std::string path =
      ::testing::TempDir() + "flight-deadline-00000000deadbeef.log";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("reason: deadline"), std::string::npos);
  EXPECT_NE(contents.str().find("trace: 00000000deadbeef"), std::string::npos);
  EXPECT_NE(contents.str().find("outcome=T"), std::string::npos);
  EXPECT_EQ(server.stats().queries_timed_out.value(), 1u);

  client->send_line("!q");
  server.stop();
  std::remove(path.c_str());
}

TEST(Server, StartFailsWhenLoaderFails) {
  Server server(test_config(),
                []() -> std::shared_ptr<const compile::CompiledPolicySnapshot> {
                  return nullptr;
                });
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace rpslyzer::server
