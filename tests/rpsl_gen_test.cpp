// Generator-emission consistency: the RPSL text the synthesizer writes must
// parse back (through the real parser) into objects that match the
// generator's ground-truth plan.

#include <gtest/gtest.h>

#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/stats/bgpq4.hpp"
#include "rpslyzer/synth/generator.hpp"

namespace rpslyzer::synth {
namespace {

SynthConfig config() {
  SynthConfig c;
  c.seed = 11;
  c.tier1_count = 4;
  c.tier2_count = 12;
  c.tier3_count = 40;
  c.stub_count = 200;
  c.collectors = 5;
  return c;
}

struct Parsed {
  InternetGenerator generator;
  util::Diagnostics diag;
  ir::Ir ir;

  Parsed() : generator(config()) {
    for (const auto& name : irr_names()) {
      irr::merge_into(ir, irr::parse_dump(generator.irr_dumps().at(name), name, diag));
    }
  }
};

Parsed& world() {
  static Parsed p;
  return p;
}

TEST(RpslGen, PolicyRichAsesHaveManyRules) {
  const auto& plan = world().generator.plan();
  ASSERT_FALSE(plan.policy_rich.empty());
  for (Asn asn : plan.policy_rich) {
    const auto& an = world().ir.aut_nums.at(asn);
    EXPECT_GT(an.imports.size() + an.exports.size(), 100u) << asn;
  }
}

TEST(RpslGen, ExportSelfPlanMatchesEmittedRules) {
  for (Asn asn : world().generator.plan().export_self_misuse) {
    const auto& an = world().ir.aut_nums.at(asn);
    bool found = false;
    for (const auto& rule : an.exports) {
      const auto* term = std::get_if<ir::EntryTerm>(&rule.entry.node);
      if (term == nullptr) continue;
      for (const auto& factor : term->factors) {
        const auto* f = std::get_if<ir::FilterAsNum>(&factor.filter.node);
        if (f != nullptr && f->asn == asn) found = true;
      }
    }
    EXPECT_TRUE(found) << "AS" << asn << " planned export-self but no such rule emitted";
  }
}

TEST(RpslGen, ConeSetsResolveToCustomers) {
  // Every transit AS that announces a cone set must have that set defined,
  // and its flattened members must include the AS itself.
  irr::Index index(world().ir);
  const auto& plan = world().generator.plan();
  for (Asn asn : plan.uses_cone_as_set) {
    const auto& an = world().ir.aut_nums.at(asn);
    std::string set_name;
    for (const auto& rule : an.exports) {
      const auto* term = std::get_if<ir::EntryTerm>(&rule.entry.node);
      if (term == nullptr) continue;
      for (const auto& factor : term->factors) {
        if (const auto* f = std::get_if<ir::FilterAsSet>(&factor.filter.node)) {
          set_name = f->name;
        }
      }
    }
    if (set_name.empty()) continue;  // only-provider plans may omit exports
    const irr::FlattenedAsSet* flat = index.flattened(set_name);
    ASSERT_NE(flat, nullptr) << set_name;
    EXPECT_TRUE(flat->contains(asn)) << set_name << " should contain AS" << asn;
  }
}

TEST(RpslGen, ZeroRouteAsesHaveNoRouteObjects) {
  irr::Index index(world().ir);
  for (Asn asn : world().generator.plan().zero_route_ases) {
    EXPECT_FALSE(index.has_routes(asn)) << asn;
  }
}

TEST(RpslGen, MissingSetReferencesAreUndefined) {
  irr::Index index(world().ir);
  for (Asn asn : world().generator.plan().missing_set_reference) {
    const std::string name = "AS" + std::to_string(asn) + ":AS-MISSING";
    EXPECT_EQ(index.as_set(name), nullptr) << name;
    // And the aut-num really references it.
    EXPECT_NE(world().generator.irr_dumps().at(
                  [&] {
                    for (const auto& irr : irr_names()) {
                      if (world().generator.irr_dumps().at(irr).find(name) !=
                          std::string::npos) {
                        return irr;
                      }
                    }
                    return std::string("APNIC");
                  }()).find(name),
              std::string::npos);
  }
}

TEST(RpslGen, SkipClassRulesEmitted) {
  EXPECT_GT(world().generator.plan().skip_class_rules, 0u);
  // They survive parsing as community / regex filters rather than errors.
  std::size_t community = 0;
  std::size_t skip_regex = 0;
  for (const auto& [asn, an] : world().ir.aut_nums) {
    for (const auto& rule : an.imports) {
      const auto* term = std::get_if<ir::EntryTerm>(&rule.entry.node);
      if (term == nullptr) continue;
      for (const auto& factor : term->factors) {
        if (std::holds_alternative<ir::FilterCommunity>(factor.filter.node)) ++community;
        if (const auto* f = std::get_if<ir::FilterAsPath>(&factor.filter.node)) {
          if (ir::uses_skipped_constructs(f->regex)) ++skip_regex;
        }
      }
    }
  }
  EXPECT_EQ(community + skip_regex, world().generator.plan().skip_class_rules);
}

TEST(RpslGen, LacnicCarriesNoRules) {
  util::Diagnostics diag;
  irr::IrrCounts counts;
  counts.name = "LACNIC";
  irr::parse_dump(world().generator.irr_dumps().at("LACNIC"), "LACNIC", diag, &counts);
  EXPECT_EQ(counts.imports + counts.exports, 0u);
}

TEST(RpslGen, AsAnySetInjected) {
  EXPECT_NE(world().generator.irr_dumps().at("RADB").find("as-set: AS-ANY"),
            std::string::npos);
}

TEST(RpslGen, RulesEmittedCountMatchesParse) {
  std::size_t parsed_rules = 0;
  for (const auto& [asn, an] : world().ir.aut_nums) {
    parsed_rules += an.imports.size() + an.exports.size();
  }
  // Syntax-error injection adds a few aut-nums with broken rules whose
  // attribute still parses as *a* rule; the planned count tracks clean
  // emissions only, so parsed >= planned and close.
  EXPECT_GE(parsed_rules, world().generator.plan().rules_emitted);
  EXPECT_LE(parsed_rules, world().generator.plan().rules_emitted + 32);
}

TEST(RpslGen, DumpsDeterministicForSeed) {
  InternetGenerator again(config());
  EXPECT_EQ(again.irr_dumps(), world().generator.irr_dumps());
  EXPECT_EQ(again.caida_serial1(), world().generator.caida_serial1());
  EXPECT_EQ(again.bgp_dumps(), world().generator.bgp_dumps());
}

}  // namespace
}  // namespace rpslyzer::synth
