#include "rpslyzer/irr/index.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"

namespace rpslyzer::irr {
namespace {

using net::Prefix;
using net::RangeOp;

Prefix pfx(std::string_view text) {
  auto p = Prefix::parse(text);
  EXPECT_TRUE(p) << text;
  return *p;
}

/// Parse a dump into an Ir for test setup.
ir::Ir corpus(std::string_view text) {
  util::Diagnostics diag;
  ir::Ir ir = parse_dump(text, "TEST", diag);
  EXPECT_TRUE(diag.empty());
  return ir;
}

TEST(IrrLoader, CountsPerSource) {
  util::Diagnostics diag;
  IrrCounts counts;
  counts.name = "X";
  parse_dump(
      "aut-num: AS1\nimport: from AS2 accept ANY\nmp-import: from AS2 accept ANY\n"
      "export: to AS2 announce AS1\n\n"
      "route: 10.0.0.0/8\norigin: AS1\n\n"
      "route6: 2001:db8::/32\norigin: AS1\n\n"
      "as-set: AS-X\nmembers: AS1\n\n"
      "route-set: RS-X\nmembers: 10.0.0.0/8\n\n"
      "peering-set: PRNG-X\npeering: AS1\n\n"
      "filter-set: FLTR-X\nfilter: ANY\n\n"
      "person: irrelevant\n",
      "X", diag, &counts);
  EXPECT_EQ(counts.objects, 8u);
  EXPECT_EQ(counts.aut_nums, 1u);
  EXPECT_EQ(counts.imports, 2u);  // import + mp-import
  EXPECT_EQ(counts.exports, 1u);
  EXPECT_EQ(counts.routes, 2u);  // route + route6
  EXPECT_EQ(counts.as_sets, 1u);
  EXPECT_EQ(counts.route_sets, 1u);
  EXPECT_EQ(counts.peering_sets, 1u);
  EXPECT_EQ(counts.filter_sets, 1u);
}

TEST(IrrLoader, MergePriorityFirstWins) {
  util::Diagnostics diag;
  ir::Ir high = parse_dump("aut-num: AS1\nas-name: FROM-HIGH\n", "HIGH", diag);
  ir::Ir low = parse_dump(
      "aut-num: AS1\nas-name: FROM-LOW\n\naut-num: AS2\nas-name: ONLY-LOW\n", "LOW", diag);
  merge_into(high, std::move(low));
  ASSERT_EQ(high.aut_nums.size(), 2u);
  EXPECT_EQ(ir::sym_view(high.aut_nums.at(1).as_name), "FROM-HIGH");  // priority kept
  EXPECT_EQ(ir::sym_view(high.aut_nums.at(2).as_name), "ONLY-LOW");
}

TEST(IrrLoader, MergeDedupsRoutesByPrefixOrigin) {
  util::Diagnostics diag;
  ir::Ir a = parse_dump("route: 10.0.0.0/8\norigin: AS1\n", "A", diag);
  ir::Ir b = parse_dump(
      "route: 10.0.0.0/8\norigin: AS1\n\nroute: 10.0.0.0/8\norigin: AS2\n", "B", diag);
  merge_into(a, std::move(b));
  // Same (prefix, origin) deduped; different origin kept (multi-origin
  // prefixes are a §4 phenomenon, not an error).
  EXPECT_EQ(a.routes.size(), 2u);
}

TEST(IrrLoader, Table1SourceOrder) {
  auto sources = table1_sources("/tmp/irrs");
  ASSERT_EQ(sources.size(), 13u);
  EXPECT_EQ(sources.front().name, "APNIC");
  EXPECT_EQ(sources[4].name, "RIPE");
  EXPECT_EQ(sources[7].name, "RADB");
  EXPECT_EQ(sources.back().name, "ALTDB");
}

TEST(IrrIndex, RouteOriginLookup) {
  ir::Ir ir = corpus(
      "route: 10.0.0.0/8\norigin: AS1\n\n"
      "route: 10.1.0.0/16\norigin: AS1\n\n"
      "route: 192.0.2.0/24\norigin: AS2\n");
  Index index(ir);
  EXPECT_EQ(index.origins_of(1).size(), 2u);
  EXPECT_TRUE(index.has_routes(2));
  EXPECT_FALSE(index.has_routes(3));
  EXPECT_TRUE(index.asn_originates_exact(1, pfx("10.0.0.0/8")));
  EXPECT_FALSE(index.asn_originates_exact(2, pfx("10.0.0.0/8")));

  // Exact (no range op): only registered prefixes match.
  EXPECT_EQ(index.origin_matches(1, RangeOp::none(), pfx("10.0.0.0/8")), Lookup::kMatch);
  EXPECT_EQ(index.origin_matches(1, RangeOp::none(), pfx("10.0.0.0/9")), Lookup::kNoMatch);
  // ^+ matches more specifics of a registered prefix.
  EXPECT_EQ(index.origin_matches(1, RangeOp::plus(), pfx("10.200.1.0/24")), Lookup::kMatch);
  EXPECT_EQ(index.origin_matches(1, RangeOp::minus(), pfx("10.0.0.0/8")), Lookup::kNoMatch);
  // Zero-route AS: unknown, not a mismatch (unrecorded case 3 in §5).
  EXPECT_EQ(index.origin_matches(3, RangeOp::none(), pfx("10.0.0.0/8")), Lookup::kUnknown);
}

TEST(IrrIndex, AsSetFlattening) {
  ir::Ir ir = corpus(
      "as-set: AS-TOP\nmembers: AS1, AS-MID\n\n"
      "as-set: AS-MID\nmembers: AS2, AS-LEAF\n\n"
      "as-set: AS-LEAF\nmembers: AS3\n");
  Index index(ir);
  const FlattenedAsSet* top = index.flattened("AS-TOP");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->asns, (std::vector<ir::Asn>{1, 2, 3}));
  EXPECT_EQ(top->depth, 2u);
  EXPECT_FALSE(top->has_loop);
  EXPECT_TRUE(top->missing_sets.empty());
  EXPECT_TRUE(index.contains("AS-TOP", 3));
  EXPECT_TRUE(index.contains("as-top", 3));  // names are case-insensitive
  EXPECT_FALSE(index.contains("AS-LEAF", 1));
  EXPECT_FALSE(index.is_known("AS-NOPE"));
  EXPECT_EQ(index.flattened("AS-NOPE"), nullptr);
}

TEST(IrrIndex, AsSetLoops) {
  ir::Ir ir = corpus(
      "as-set: AS-A\nmembers: AS1, AS-B\n\n"
      "as-set: AS-B\nmembers: AS2, AS-A\n");
  Index index(ir);
  const FlattenedAsSet* a = index.flattened("AS-A");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->has_loop);
  EXPECT_EQ(a->asns, (std::vector<ir::Asn>{1, 2}));
  // B queried as a root must also see the full closure despite the cycle.
  const FlattenedAsSet* b = index.flattened("AS-B");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->asns, (std::vector<ir::Asn>{1, 2}));
  EXPECT_TRUE(b->has_loop);
  // Repeat queries are stable.
  EXPECT_EQ(index.flattened("AS-A")->asns, (std::vector<ir::Asn>{1, 2}));
}

TEST(IrrIndex, SelfLoop) {
  ir::Ir ir = corpus("as-set: AS-SELF\nmembers: AS7, AS-SELF\n");
  Index index(ir);
  const FlattenedAsSet* s = index.flattened("AS-SELF");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->has_loop);
  EXPECT_EQ(s->asns, (std::vector<ir::Asn>{7}));
}

TEST(IrrIndex, MissingSubSetsRecorded) {
  ir::Ir ir = corpus("as-set: AS-TOP\nmembers: AS1, AS-GONE\n");
  Index index(ir);
  const FlattenedAsSet* top = index.flattened("AS-TOP");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->missing_sets.size(), 1u);
  EXPECT_EQ(top->missing_sets[0], "AS-GONE");
}

TEST(IrrIndex, MembersByRefAsSet) {
  ir::Ir ir = corpus(
      "as-set: AS-COOP\nmembers: AS1\nmbrs-by-ref: MAINT-GOOD\n\n"
      "aut-num: AS2\nmember-of: AS-COOP\nmnt-by: MAINT-GOOD\n\n"
      "aut-num: AS3\nmember-of: AS-COOP\nmnt-by: MAINT-EVIL\n\n"
      "aut-num: AS4\nmember-of: AS-OTHER\nmnt-by: MAINT-GOOD\n");
  Index index(ir);
  const FlattenedAsSet* coop = index.flattened("AS-COOP");
  ASSERT_NE(coop, nullptr);
  // AS2 joins (maintainer admitted); AS3 rejected (wrong maintainer);
  // AS4 claims a different set.
  EXPECT_EQ(coop->asns, (std::vector<ir::Asn>{1, 2}));
}

TEST(IrrIndex, MembersByRefAnyAdmitsAllClaims) {
  ir::Ir ir = corpus(
      "as-set: AS-OPEN\nmbrs-by-ref: ANY\n\n"
      "aut-num: AS9\nmember-of: AS-OPEN\nmnt-by: WHOEVER\n");
  Index index(ir);
  EXPECT_EQ(index.flattened("AS-OPEN")->asns, (std::vector<ir::Asn>{9}));
}

TEST(IrrIndex, MemberOfIgnoredWithoutMbrsByRef) {
  ir::Ir ir = corpus(
      "as-set: AS-CLOSED\nmembers: AS1\n\n"
      "aut-num: AS2\nmember-of: AS-CLOSED\nmnt-by: M\n");
  Index index(ir);
  EXPECT_EQ(index.flattened("AS-CLOSED")->asns, (std::vector<ir::Asn>{1}));
}

TEST(IrrIndex, AsSetOriginates) {
  ir::Ir ir = corpus(
      "as-set: AS-CONE\nmembers: AS1, AS2\n\n"
      "route: 10.0.0.0/8\norigin: AS1\n\n"
      "route: 192.0.2.0/24\norigin: AS2\n\n"
      "as-set: AS-EMPTYISH\nmembers: AS3\n");
  Index index(ir);
  EXPECT_EQ(index.as_set_originates("AS-CONE", RangeOp::none(), pfx("192.0.2.0/24")),
            Lookup::kMatch);
  EXPECT_EQ(index.as_set_originates("AS-CONE", RangeOp::plus(), pfx("10.3.0.0/16")),
            Lookup::kMatch);
  EXPECT_EQ(index.as_set_originates("AS-CONE", RangeOp::none(), pfx("172.16.0.0/12")),
            Lookup::kNoMatch);
  // Undefined set.
  EXPECT_EQ(index.as_set_originates("AS-GONE", RangeOp::none(), pfx("10.0.0.0/8")),
            Lookup::kUnknown);
  // Defined set whose members all lack route objects: missing information.
  EXPECT_EQ(index.as_set_originates("AS-EMPTYISH", RangeOp::none(), pfx("10.0.0.0/8")),
            Lookup::kUnknown);
}

TEST(IrrIndex, RouteSetPrefixMembers) {
  ir::Ir ir = corpus(
      "route-set: RS-X\nmembers: 192.0.2.0/24^+, 10.0.0.0/8\n");
  Index index(ir);
  EXPECT_EQ(index.route_set_matches("RS-X", RangeOp::none(), pfx("192.0.2.0/25")),
            Lookup::kMatch);
  EXPECT_EQ(index.route_set_matches("RS-X", RangeOp::none(), pfx("10.0.0.0/8")), Lookup::kMatch);
  EXPECT_EQ(index.route_set_matches("RS-X", RangeOp::none(), pfx("10.0.0.0/9")),
            Lookup::kNoMatch);
  EXPECT_EQ(index.route_set_matches("RS-GONE", RangeOp::none(), pfx("10.0.0.0/8")),
            Lookup::kUnknown);
}

TEST(IrrIndex, RouteSetOuterOpNonStandard) {
  // Appendix B: "we allow a route-set to be followed by prefix-range
  // operators ^n and ^n-m, and apply the range to all prefixes in the set."
  ir::Ir ir = corpus("route-set: RS-X\nmembers: 10.0.0.0/8\n");
  Index index(ir);
  EXPECT_EQ(index.route_set_matches("RS-X", RangeOp::range(24, 32), pfx("10.1.2.0/24")),
            Lookup::kMatch);
  EXPECT_EQ(index.route_set_matches("RS-X", RangeOp::range(24, 32), pfx("10.0.0.0/8")),
            Lookup::kNoMatch);
  EXPECT_EQ(index.route_set_matches("RS-X", RangeOp::exact(16), pfx("10.55.0.0/16")),
            Lookup::kMatch);
}

TEST(IrrIndex, RouteSetNestedAndCyclic) {
  ir::Ir ir = corpus(
      "route-set: RS-TOP\nmembers: RS-SUB, 192.0.2.0/24\n\n"
      "route-set: RS-SUB\nmembers: 10.0.0.0/8^16, RS-TOP\n");
  Index index(ir);
  EXPECT_EQ(index.route_set_matches("RS-TOP", RangeOp::none(), pfx("10.7.0.0/16")),
            Lookup::kMatch);
  EXPECT_EQ(index.route_set_matches("RS-SUB", RangeOp::none(), pfx("192.0.2.0/24")),
            Lookup::kMatch);
  // The cycle terminates and unmatched prefixes come back NoMatch.
  EXPECT_EQ(index.route_set_matches("RS-TOP", RangeOp::none(), pfx("172.16.0.0/12")),
            Lookup::kNoMatch);
}

TEST(IrrIndex, RouteSetWithAsnAndAsSetMembers) {
  ir::Ir ir = corpus(
      "route-set: RS-MIX\nmembers: AS1, AS-CONE^+\n\n"
      "as-set: AS-CONE\nmembers: AS2\n\n"
      "route: 192.0.2.0/24\norigin: AS1\n\n"
      "route: 10.0.0.0/8\norigin: AS2\n");
  Index index(ir);
  // AS1's registered prefix.
  EXPECT_EQ(index.route_set_matches("RS-MIX", RangeOp::none(), pfx("192.0.2.0/24")),
            Lookup::kMatch);
  // AS-CONE^+ admits more specifics of AS2's prefix.
  EXPECT_EQ(index.route_set_matches("RS-MIX", RangeOp::none(), pfx("10.9.0.0/16")),
            Lookup::kMatch);
  EXPECT_EQ(index.route_set_matches("RS-MIX", RangeOp::none(), pfx("172.16.0.0/12")),
            Lookup::kNoMatch);
}

TEST(IrrIndex, RouteSetMembersByRef) {
  ir::Ir ir = corpus(
      "route-set: RS-COOP\nmbrs-by-ref: MAINT-A\n\n"
      "route: 10.0.0.0/8\norigin: AS1\nmember-of: RS-COOP\nmnt-by: MAINT-A\n\n"
      "route: 192.0.2.0/24\norigin: AS2\nmember-of: RS-COOP\nmnt-by: MAINT-B\n");
  Index index(ir);
  EXPECT_EQ(index.route_set_matches("RS-COOP", RangeOp::none(), pfx("10.0.0.0/8")),
            Lookup::kMatch);
  // Wrong maintainer: the claim is ignored.
  EXPECT_EQ(index.route_set_matches("RS-COOP", RangeOp::none(), pfx("192.0.2.0/24")),
            Lookup::kNoMatch);
}

TEST(IrrIndex, RouteSetZeroRouteAsnIsUnknown) {
  ir::Ir ir = corpus("route-set: RS-X\nmembers: AS42\n");
  Index index(ir);
  EXPECT_EQ(index.route_set_matches("RS-X", RangeOp::none(), pfx("10.0.0.0/8")),
            Lookup::kUnknown);
}

TEST(IrrIndex, RouteSetAnyMember) {
  ir::Ir ir = corpus("route-set: RS-WILD\nmembers: RS-ANY\n");
  Index index(ir);
  EXPECT_EQ(index.route_set_matches("RS-WILD", RangeOp::none(), pfx("203.0.113.0/24")),
            Lookup::kMatch);
}

TEST(IrrIndex, MpMembersMatchV6) {
  ir::Ir ir = corpus("route-set: RS-V6\nmp-members: 2001:db8::/32^+\n");
  Index index(ir);
  EXPECT_EQ(index.route_set_matches("RS-V6", RangeOp::none(), pfx("2001:db8:1::/48")),
            Lookup::kMatch);
  EXPECT_EQ(index.route_set_matches("RS-V6", RangeOp::none(), pfx("2001:db9::/32")),
            Lookup::kNoMatch);
}

TEST(IrrIndex, ObjectLookupsCaseInsensitive) {
  ir::Ir ir = corpus(
      "peering-set: PRNG-X\npeering: AS1\n\n"
      "filter-set: FLTR-Y\nfilter: ANY\n\n"
      "aut-num: AS5\n");
  Index index(ir);
  EXPECT_NE(index.peering_set("prng-x"), nullptr);
  EXPECT_NE(index.filter_set("fltr-y"), nullptr);
  EXPECT_EQ(index.peering_set("PRNG-Z"), nullptr);
  EXPECT_NE(index.aut_num(5), nullptr);
  EXPECT_EQ(index.aut_num(6), nullptr);
}

}  // namespace
}  // namespace rpslyzer::irr
