#include <gtest/gtest.h>

#include "rpslyzer/rpsl/expr_parser.hpp"

namespace rpslyzer::rpsl {
namespace {

using namespace rpslyzer::ir;

struct Fixture {
  util::Diagnostics diag;
  ParseContext ctx{&diag, "test", "TEST", 1};

  std::optional<AsPathRegex> parse(std::string_view text) {
    return parse_aspath_regex(text, ctx);
  }
};

TEST(RegexParser, SingleTokens) {
  Fixture f;
  auto re = f.parse("AS64500");
  ASSERT_TRUE(re);
  const auto* token = std::get_if<ReTokenNode>(&re->root->node);
  ASSERT_NE(token, nullptr);
  EXPECT_EQ(token->token.kind, ReToken::Kind::kAsn);
  EXPECT_EQ(token->token.asn, 64500u);

  auto dot = f.parse(".");
  ASSERT_TRUE(dot);
  EXPECT_EQ(std::get_if<ReTokenNode>(&dot->root->node)->token.kind, ReToken::Kind::kAny);

  auto peeras = f.parse("PeerAS");
  ASSERT_TRUE(peeras);
  EXPECT_EQ(std::get_if<ReTokenNode>(&peeras->root->node)->token.kind,
            ReToken::Kind::kPeerAs);

  auto set = f.parse("AS-FOO");
  ASSERT_TRUE(set);
  EXPECT_EQ(std::get_if<ReTokenNode>(&set->root->node)->token.as_set, "AS-FOO");
  EXPECT_TRUE(f.diag.empty());
}

TEST(RegexParser, AsAnyIsWildcard) {
  Fixture f;
  auto re = f.parse("AS-ANY");
  ASSERT_TRUE(re);
  EXPECT_EQ(std::get_if<ReTokenNode>(&re->root->node)->token.kind, ReToken::Kind::kAny);
}

TEST(RegexParser, EmptyRegex) {
  Fixture f;
  auto re = f.parse("   ");
  ASSERT_TRUE(re);
  EXPECT_TRUE(std::holds_alternative<ReEmpty>(re->root->node));
}

TEST(RegexParser, PostfixOperators) {
  Fixture f;
  struct Case {
    const char* text;
    std::uint32_t min;
    std::optional<std::uint32_t> max;
    bool same;
  };
  const Case cases[] = {
      {"AS1*", 0, std::nullopt, false}, {"AS1+", 1, std::nullopt, false},
      {"AS1?", 0, 1, false},            {"AS1{3}", 3, 3, false},
      {"AS1{2,5}", 2, 5, false},        {"AS1{2,}", 2, std::nullopt, false},
      {"AS1~*", 0, std::nullopt, true}, {"AS1~+", 1, std::nullopt, true},
  };
  for (const auto& c : cases) {
    auto re = f.parse(c.text);
    ASSERT_TRUE(re) << c.text;
    const auto* repeat = std::get_if<ReRepeatNode>(&re->root->node);
    ASSERT_NE(repeat, nullptr) << c.text;
    EXPECT_EQ(repeat->repeat.min, c.min) << c.text;
    EXPECT_EQ(repeat->repeat.max, c.max) << c.text;
    EXPECT_EQ(repeat->repeat.same_pattern, c.same) << c.text;
  }
  EXPECT_TRUE(f.diag.empty());
}

TEST(RegexParser, SetsAndRanges) {
  Fixture f;
  auto re = f.parse("[AS1 AS3-AS5 AS-FOO PeerAS]");
  ASSERT_TRUE(re);
  const auto* token = std::get_if<ReTokenNode>(&re->root->node);
  ASSERT_NE(token, nullptr);
  ASSERT_EQ(token->token.items.size(), 4u);
  EXPECT_EQ(token->token.items[0].kind, ReSetItem::Kind::kAsn);
  EXPECT_EQ(token->token.items[1].kind, ReSetItem::Kind::kAsnRange);
  EXPECT_EQ(token->token.items[1].asn, 3u);
  EXPECT_EQ(token->token.items[1].asn_hi, 5u);
  EXPECT_EQ(token->token.items[2].kind, ReSetItem::Kind::kAsSet);
  EXPECT_EQ(token->token.items[3].kind, ReSetItem::Kind::kPeerAs);
  EXPECT_FALSE(token->token.complemented);

  auto complemented = f.parse("[^AS1]");
  ASSERT_TRUE(complemented);
  EXPECT_TRUE(std::get_if<ReTokenNode>(&complemented->root->node)->token.complemented);
}

TEST(RegexParser, AsSetNameWithDashesIsNotARange) {
  Fixture f;
  auto re = f.parse("[AS-EAST-WEST]");
  ASSERT_TRUE(re);
  const auto& items = std::get_if<ReTokenNode>(&re->root->node)->token.items;
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].kind, ReSetItem::Kind::kAsSet);
  EXPECT_EQ(items[0].as_set, "AS-EAST-WEST");
}

TEST(RegexParser, AnchorsAndConcat) {
  Fixture f;
  auto re = f.parse("^AS1 AS2$");
  ASSERT_TRUE(re);
  const auto* concat = std::get_if<ReConcat>(&re->root->node);
  ASSERT_NE(concat, nullptr);
  ASSERT_EQ(concat->parts.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<ReBeginAnchor>(concat->parts[0]->node));
  EXPECT_TRUE(std::holds_alternative<ReEndAnchor>(concat->parts[3]->node));
}

TEST(RegexParser, AlternationAndGrouping) {
  Fixture f;
  auto re = f.parse("(AS1|AS2 AS3)+");
  ASSERT_TRUE(re);
  const auto* repeat = std::get_if<ReRepeatNode>(&re->root->node);
  ASSERT_NE(repeat, nullptr);
  const auto* alt = std::get_if<ReAlt>(&repeat->inner->node);
  ASSERT_NE(alt, nullptr);
  ASSERT_EQ(alt->options.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<ReConcat>(alt->options[1]->node));
}

TEST(RegexParser, NestedRepeats) {
  Fixture f;
  auto re = f.parse("((AS1+)*)?");
  ASSERT_TRUE(re);
  EXPECT_NE(std::get_if<ReRepeatNode>(&re->root->node), nullptr);
}

TEST(RegexParser, Errors) {
  Fixture f;
  EXPECT_FALSE(f.parse("("));
  EXPECT_FALSE(f.parse("AS1)"));
  EXPECT_FALSE(f.parse("[AS1"));
  EXPECT_FALSE(f.parse("AS1{,}"));
  EXPECT_FALSE(f.parse("AS1{5,2}"));  // inverted range
  EXPECT_FALSE(f.parse("AS1{2"));
  EXPECT_FALSE(f.parse("AS1 ~ "));    // dangling tilde
  EXPECT_FALSE(f.parse("lowercase-not-a-set"));
  EXPECT_FALSE(f.diag.empty());
}

TEST(RegexParser, EmptyAlternationBranchesParse) {
  // Empty alternatives are permitted ("(|AS1)", "|AS1|"): they match the
  // empty sequence, like POSIX ERE.
  Fixture f;
  auto re = f.parse("(|AS1)");
  ASSERT_TRUE(re);
  const auto* alt = std::get_if<ReAlt>(&re->root->node);
  ASSERT_NE(alt, nullptr);
  EXPECT_TRUE(std::holds_alternative<ReEmpty>(alt->options[0]->node));
  auto top = f.parse("|AS1|");
  ASSERT_TRUE(top);
  EXPECT_EQ(std::get_if<ReAlt>(&top->root->node)->options.size(), 3u);
}

TEST(RegexParser, ToStringRoundTrip) {
  Fixture f;
  const char* cases[] = {
      "^AS13911 AS6327+$",
      "^(AS1|AS2){1,3} [AS4 AS5-AS9 AS-X]* .$",
      "[^AS64512-AS65535]~+",
      "AS-FOO? PeerAS",
  };
  for (const char* text : cases) {
    auto first = f.parse(text);
    ASSERT_TRUE(first) << text;
    std::string rendered = to_string(*first);
    ASSERT_GE(rendered.size(), 2u);
    // Strip the angle brackets added by to_string(AsPathRegex).
    auto second = f.parse(rendered.substr(1, rendered.size() - 2));
    ASSERT_TRUE(second) << rendered;
    EXPECT_EQ(*first, *second) << text << " vs " << rendered;
  }
  EXPECT_TRUE(f.diag.empty());
}

TEST(RegexParser, SkippedConstructDetection) {
  Fixture f;
  EXPECT_FALSE(uses_skipped_constructs(*f.parse("^AS1 AS2*$")));
  EXPECT_TRUE(uses_skipped_constructs(*f.parse("[AS1-AS5]")));
  EXPECT_TRUE(uses_skipped_constructs(*f.parse("AS1~*")));
  EXPECT_TRUE(uses_skipped_constructs(*f.parse("(AS1 [AS2-AS3])+")));
  EXPECT_TRUE(uses_skipped_constructs(*f.parse("AS1|AS2~+")));
}

}  // namespace
}  // namespace rpslyzer::rpsl
