// Snapshot persistence must be invisible to correctness: an mmap-loaded
// snapshot has to produce the exact HopCheck sequences and query bytes of
// the in-memory snapshot it was serialized from, over the full synthetic
// corpus. The rest of the suite drives the failure half of the contract:
// corrupted, truncated, and version-mismatched files are refused with
// SnapshotError (never UB, never a partial load), write-side faults leave
// no file behind, a daemon reloading a bad snapshot quarantines itself on
// the last good generation, and the on-disk generation cache treats every
// defect as a miss.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <unistd.h>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/persist/arena.hpp"
#include "rpslyzer/persist/cache.hpp"
#include "rpslyzer/persist/snapshot_io.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/server/client.hpp"
#include "rpslyzer/server/server.hpp"
#include "rpslyzer/synth/generator.hpp"
#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer {
namespace {

namespace fp = util::failpoint;

// ---------------------------------------------------------------------------
// Round-trip differential over the synthesized corpus
// ---------------------------------------------------------------------------

struct Pipeline {
  synth::InternetGenerator generator;
  Rpslyzer lyzer;
  std::vector<bgp::Route> routes;
  std::filesystem::path snap_path;

  Pipeline()
      : generator([] {
          synth::SynthConfig config;
          config.seed = 33;
          config.tier1_count = 4;
          config.tier2_count = 10;
          config.tier3_count = 30;
          config.stub_count = 150;
          config.collectors = 6;
          return config;
        }()),
        lyzer([&] {
          std::vector<std::pair<std::string, std::string>> ordered;
          for (const auto& name : synth::irr_names()) {
            ordered.emplace_back(name, generator.irr_dumps().at(name));
          }
          return Rpslyzer::from_texts(ordered, generator.caida_serial1());
        }()) {
    for (const auto& dump : generator.bgp_dumps()) {
      for (auto& route : bgp::parse_table_dump(dump)) routes.push_back(std::move(route));
    }
    snap_path = std::filesystem::temp_directory_path() /
                ("rpslyzer-persist-" + std::to_string(::getpid()) + ".rps");
    persist::write_snapshot(*lyzer.snapshot(), snap_path);
  }
  ~Pipeline() { std::filesystem::remove(snap_path); }
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

void expect_same_hops(const std::vector<verify::HopCheck>& got,
                      const std::vector<verify::HopCheck>& want, std::size_t route) {
  ASSERT_EQ(got.size(), want.size()) << "route " << route;
  for (std::size_t h = 0; h < want.size(); ++h) {
    EXPECT_EQ(got[h].from, want[h].from) << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].to, want[h].to) << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].export_result.status, want[h].export_result.status)
        << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].export_result.items, want[h].export_result.items)
        << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].import_result.status, want[h].import_result.status)
        << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].import_result.items, want[h].import_result.items)
        << "route " << route << " hop " << h;
  }
}

TEST(PersistRoundTrip, LoadedSnapshotReportsSourceAndMetadata) {
  auto& p = pipeline();
  auto loaded = persist::open_snapshot(p.snap_path);
  ASSERT_NE(loaded, nullptr);
  auto memory = p.lyzer.snapshot();
  EXPECT_EQ(loaded->build_id(), memory->build_id());
  EXPECT_EQ(loaded->interned_symbols(), memory->interned_symbols());
  EXPECT_EQ(loaded->trie_nodes(), memory->trie_nodes());
  EXPECT_EQ(memory->source(), "memory");
  EXPECT_EQ(loaded->source(), "file:" + p.snap_path.string());
  EXPECT_EQ(persist::verify_snapshot(p.snap_path), memory->build_id());
}

TEST(PersistRoundTrip, VerifierMatchesInMemorySnapshotForEveryRoute) {
  auto& p = pipeline();
  ASSERT_GT(p.routes.size(), 1000u);
  auto loaded = persist::open_snapshot(p.snap_path);
  verify::Verifier memory(p.lyzer.snapshot());
  verify::Verifier mapped(loaded);
  for (std::size_t i = 0; i < p.routes.size(); ++i) {
    expect_same_hops(mapped.verify_route(p.routes[i]), memory.verify_route(p.routes[i]),
                     i);
    if (::testing::Test::HasFailure()) break;  // one detailed mismatch is enough
  }
}

TEST(PersistRoundTrip, VerifierReportsAreByteIdentical) {
  auto& p = pipeline();
  auto loaded = persist::open_snapshot(p.snap_path);
  verify::Verifier memory(p.lyzer.snapshot());
  verify::Verifier mapped(loaded);
  const std::size_t step = std::max<std::size_t>(1, p.routes.size() / 200);
  for (std::size_t i = 0; i < p.routes.size(); i += step) {
    EXPECT_EQ(mapped.report(p.routes[i]), memory.report(p.routes[i])) << "route " << i;
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(PersistRoundTrip, QueryResponsesAreByteIdentical) {
  auto& p = pipeline();
  auto loaded = persist::open_snapshot(p.snap_path);
  query::QueryEngine memory(*p.lyzer.snapshot());
  query::QueryEngine mapped(*loaded);
  std::size_t compared = 0;
  for (const auto& [name, set] : p.lyzer.ir().as_sets) {
    for (const std::string& q : {"!i" + name + ",1", "!a" + name, "!a4" + name,
                                 "!a6" + name}) {
      EXPECT_EQ(mapped.evaluate(q), memory.evaluate(q)) << q;
    }
    if (++compared >= 64) break;
  }
  for (const auto& [name, set] : p.lyzer.ir().route_sets) {
    const std::string q = "!i" + name + ",1";
    EXPECT_EQ(mapped.evaluate(q), memory.evaluate(q)) << q;
    if (++compared >= 96) break;
  }
  for (const auto& [asn, an] : p.lyzer.ir().aut_nums) {
    const std::string q = "!gAS" + std::to_string(asn);
    EXPECT_EQ(mapped.evaluate(q), memory.evaluate(q)) << q;
    if (++compared >= 160) break;
  }
  EXPECT_GT(compared, 96u);
}

// ---------------------------------------------------------------------------
// The checksum/cache-key digest must see every byte
// ---------------------------------------------------------------------------

TEST(Digest64, AnySingleByteFlipAtAnyPositionChangesTheDigest) {
  // Regression: the first word-wise FNV variant only diffused upward, so a
  // flip in the high bytes of a word near the end of the buffer could be
  // multiplied past bit 63 and erased. Exercise every byte position across
  // lane, word-tail, and byte-tail regions.
  std::string base(157, '\0');
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = static_cast<char>('a' + i % 26);
  const std::uint64_t want = persist::digest64(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (const char flip : {char(0x01), char(0x80)}) {
      std::string mutated = base;
      mutated[i] = static_cast<char>(mutated[i] ^ flip);
      EXPECT_NE(persist::digest64(mutated), want)
          << "byte " << i << " flip 0x" << std::hex << int(flip);
    }
  }
}

TEST(Digest64, LengthAndSeedAreSignificant) {
  EXPECT_NE(persist::digest64(std::string_view("abc")),
            persist::digest64(std::string_view("abc\0", 4)));
  EXPECT_NE(persist::digest64(std::string_view("abc"), 1),
            persist::digest64(std::string_view("abc"), 2));
  EXPECT_EQ(persist::digest64(std::string_view("abc")),
            persist::digest64(std::string_view("abc")));
}

// ---------------------------------------------------------------------------
// Corrupted, truncated, and mismatched files are refused
// ---------------------------------------------------------------------------

class PersistCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear_all();
    path_ = std::filesystem::temp_directory_path() /
            ("rpslyzer-persist-corrupt-" + std::to_string(::getpid()) + ".rps");
    std::filesystem::copy_file(pipeline().snap_path, path_,
                               std::filesystem::copy_options::overwrite_existing);
  }
  void TearDown() override {
    fp::clear_all();
    std::filesystem::remove(path_);
  }

  void flip_byte(std::size_t offset) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b ^= 0x5a;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  std::string open_error() {
    try {
      persist::open_snapshot(path_);
    } catch (const persist::SnapshotError& e) {
      return e.what();
    }
    return {};
  }

  std::filesystem::path path_;
};

TEST_F(PersistCorruption, ChecksumRegionByteFlipIsRejected) {
  // Anywhere past the fixed header is checksummed — section table included.
  const std::uint64_t size = std::filesystem::file_size(path_);
  for (const std::size_t offset :
       {persist::kFixedHeaderSize, static_cast<std::size_t>(size / 2),
        static_cast<std::size_t>(size - 1)}) {
    SetUp();  // fresh copy per flip
    flip_byte(offset);
    EXPECT_NE(open_error().find("checksum mismatch"), std::string::npos)
        << "offset " << offset;
  }
}

TEST_F(PersistCorruption, TruncationMidSectionIsRejected) {
  const std::uint64_t size = std::filesystem::file_size(path_);
  for (const std::uint64_t keep : {size - 1, size * 2 / 3, size / 5}) {
    SetUp();
    std::filesystem::resize_file(path_, keep);
    EXPECT_FALSE(open_error().empty()) << "kept " << keep << " of " << size;
  }
  // Even a header-only stub must be refused.
  SetUp();
  std::filesystem::resize_file(path_, 16);
  EXPECT_FALSE(open_error().empty());
}

TEST_F(PersistCorruption, FormatVersionBumpIsRejected) {
  flip_byte(8);  // format_version lives right after the u64 magic
  EXPECT_NE(open_error().find("format version mismatch"), std::string::npos);
}

TEST_F(PersistCorruption, BadMagicIsRejected) {
  flip_byte(0);
  EXPECT_NE(open_error().find("not a snapshot file"), std::string::npos);
}

TEST_F(PersistCorruption, MissingFileIsRejected) {
  std::filesystem::remove(path_);
  EXPECT_FALSE(open_error().empty());
}

// ---------------------------------------------------------------------------
// Section context in decode errors
// ---------------------------------------------------------------------------
// Whole-file corruption is caught by the checksum; these files are
// checksum-VALID but semantically broken, so the failure surfaces during
// section decode — and must name the section and its byte offset, not just
// say "corrupt snapshot".

TEST(PersistSectionContext, TruncatedPayloadNamesSectionAndOffset) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("rpslyzer-persist-section-" + std::to_string(::getpid()) + ".rps");
  persist::ArenaWriter writer;
  persist::ByteWriter ir;
  ir.u16(0xbeef);  // far too short for the IR codec's first count
  writer.add_section(persist::SectionId::kIr, std::move(ir));
  writer.write(path, 1);
  try {
    persist::open_snapshot(path);
    FAIL() << "expected SnapshotError";
  } catch (const persist::SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("section ir"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
  std::filesystem::remove(path);
}

TEST(PersistSectionContext, MissingSectionIsNamed) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("rpslyzer-persist-nosection-" + std::to_string(::getpid()) + ".rps");
  persist::ArenaWriter writer;  // no sections at all
  writer.write(path, 1);
  try {
    persist::open_snapshot(path);
    FAIL() << "expected SnapshotError";
  } catch (const persist::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("missing required section ir"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(PersistSectionContext, SectionNamesCoverEveryId) {
  for (std::uint32_t id = 1; id <= 12; ++id) {
    EXPECT_STRNE(persist::section_name(static_cast<persist::SectionId>(id)), "unknown");
  }
  EXPECT_STREQ(persist::section_name(static_cast<persist::SectionId>(99)), "unknown");
}

// ---------------------------------------------------------------------------
// Write-side and open-side failpoints
// ---------------------------------------------------------------------------

class PersistFault : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear_all();
    path_ = std::filesystem::temp_directory_path() /
            ("rpslyzer-persist-fault-" + std::to_string(::getpid()) + ".rps");
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    fp::clear_all();
    std::filesystem::remove(path_);
  }

  std::filesystem::path path_;
};

TEST_F(PersistFault, WriteErrorLeavesNoFileBehind) {
  ASSERT_TRUE(fp::set("persist.write", "error"));
  EXPECT_THROW(persist::write_snapshot(*pipeline().lyzer.snapshot(), path_),
               persist::SnapshotError);
  EXPECT_FALSE(std::filesystem::exists(path_));
  // Disarmed, the same write succeeds.
  fp::clear_all();
  EXPECT_GT(persist::write_snapshot(*pipeline().lyzer.snapshot(), path_), 0u);
  EXPECT_TRUE(std::filesystem::exists(path_));
}

TEST_F(PersistFault, WriteTruncationProducesAFileTheLoaderRefuses) {
  ASSERT_TRUE(fp::set("persist.write", "truncate(4096)"));
  persist::write_snapshot(*pipeline().lyzer.snapshot(), path_);
  ASSERT_TRUE(std::filesystem::exists(path_));
  EXPECT_EQ(std::filesystem::file_size(path_), 4096u);
  EXPECT_THROW(persist::open_snapshot(path_), persist::SnapshotError);
}

TEST_F(PersistFault, OpenFailpointRefusesBeforeMapping) {
  persist::write_snapshot(*pipeline().lyzer.snapshot(), path_);
  ASSERT_TRUE(fp::set("persist.open", "error"));
  EXPECT_THROW(persist::open_snapshot(path_), persist::SnapshotError);
  fp::clear_all();
  EXPECT_NE(persist::open_snapshot(path_), nullptr);
}

TEST_F(PersistFault, VerifyFailpointForcesChecksumMismatch) {
  persist::write_snapshot(*pipeline().lyzer.snapshot(), path_);
  ASSERT_TRUE(fp::set("persist.verify", "error"));
  try {
    persist::open_snapshot(path_);
    FAIL() << "expected SnapshotError";
  } catch (const persist::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Server reload: a bad snapshot quarantines on the last good generation
// ---------------------------------------------------------------------------

server::ServerConfig test_config() {
  server::ServerConfig config;
  config.port = 0;
  config.worker_threads = 2;
  config.cache_capacity = 64;
  config.idle_timeout = std::chrono::milliseconds(0);
  return config;
}

TEST_F(PersistFault, ServerFallsBackToLastGoodOnCorruptSnapshotReload) {
  persist::write_snapshot(*pipeline().lyzer.snapshot(), path_);
  const std::filesystem::path snap = path_;
  server::Server daemon(test_config(), [snap] { return persist::open_snapshot(snap); });
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  auto client = server::Client::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.has_value());

  const std::string query =
      "!gAS" + std::to_string(pipeline().lyzer.ir().aut_nums.begin()->first);
  ASSERT_TRUE(client->send_line(query));
  auto first = client->read_response();
  ASSERT_TRUE(first.has_value());

  // Corrupt the file in place (checksum region) and ask for a reload: the
  // loader throws SnapshotError, so the daemon must refuse the generation
  // and keep answering from the one it already has.
  {
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(persist::kFixedHeaderSize + 7));
    char b = 0x7f;
    f.write(&b, 1);
  }
  ASSERT_TRUE(client->send_line("!reload"));
  auto refused = client->read_response();
  ASSERT_TRUE(refused.has_value());
  EXPECT_NE(refused->find("F reload failed"), std::string::npos) << *refused;
  EXPECT_EQ(daemon.generation(), 1u);
  EXPECT_EQ(daemon.health().state, server::Health::kDegraded);
  ASSERT_TRUE(client->send_line(query));
  EXPECT_EQ(client->read_response(), first);

  // Repair the file; the next reload publishes a fresh generation.
  persist::write_snapshot(*pipeline().lyzer.snapshot(), snap);
  ASSERT_TRUE(client->send_line("!reload"));
  EXPECT_EQ(client->read_response(), "C\n");
  EXPECT_EQ(daemon.generation(), 2u);
  EXPECT_EQ(daemon.health().state, server::Health::kHealthy);
  ASSERT_TRUE(client->send_line(query));
  EXPECT_EQ(client->read_response(), first);

  client->send_line("!q");
  daemon.stop();
}

// ---------------------------------------------------------------------------
// Generation cache: content-keyed, defect-tolerant
// ---------------------------------------------------------------------------

class PersistCache : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear_all();
    dir_ = std::filesystem::temp_directory_path() /
           ("rpslyzer-persist-cache-" + std::to_string(::getpid()));
    corpus_ = dir_ / "corpus";
    cache_dir_ = dir_ / "cache";
    std::filesystem::create_directories(corpus_);
    write("ripe.db",
          "aut-num: AS64500\n"
          "import: from AS64501 accept ANY\n"
          "export: to AS64501 announce AS64500\n\n"
          "route: 10.0.0.0/8\norigin: AS64500\n");
    write("relationships.txt", "64500|64501|-1|irr\n");
  }
  void TearDown() override {
    fp::clear_all();
    std::filesystem::remove_all(dir_);
  }

  void write(const std::string& name, const std::string& text) {
    std::ofstream out(corpus_ / name, std::ios::binary);
    out << text;
  }

  std::filesystem::path dir_;
  std::filesystem::path corpus_;
  std::filesystem::path cache_dir_;
};

TEST_F(PersistCache, KeyIsStableAndTracksEveryInput) {
  const irr::LoadOptions options;
  const persist::CacheKey base = persist::derive_cache_key(corpus_, options);
  EXPECT_EQ(base, persist::derive_cache_key(corpus_, options));
  EXPECT_EQ(base.hex().size(), 16u);

  // One changed byte in a dump, a new dump, a changed relationships file,
  // and a changed load option each derive a different key.
  write("ripe.db",
        "aut-num: AS64500\n"
        "import: from AS64501 accept ANY\n"
        "export: to AS64501 announce AS64500\n\n"
        "route: 10.0.0.0/9\norigin: AS64500\n");
  const persist::CacheKey changed_dump = persist::derive_cache_key(corpus_, options);
  EXPECT_NE(changed_dump, base);

  write("radb.db", "aut-num: AS64502\n");
  const persist::CacheKey added_dump = persist::derive_cache_key(corpus_, options);
  EXPECT_NE(added_dump, changed_dump);

  write("relationships.txt", "64500|64501|0|irr\n");
  const persist::CacheKey changed_rel = persist::derive_cache_key(corpus_, options);
  EXPECT_NE(changed_rel, added_dump);

  irr::LoadOptions bigger;
  bigger.max_object_bytes = 1 << 20;
  EXPECT_NE(persist::derive_cache_key(corpus_, bigger), changed_rel);
}

TEST_F(PersistCache, MissThenStoreThenHit) {
  auto& hits = obs::MetricsRegistry::global().counter(
      "rpslyzer_persist_cache_hits_total", "");
  auto& misses = obs::MetricsRegistry::global().counter(
      "rpslyzer_persist_cache_misses_total", "");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();

  persist::SnapshotCache cache(cache_dir_);
  const persist::CacheKey key = persist::derive_cache_key(corpus_, {});
  EXPECT_EQ(cache.try_load(key), nullptr);
  EXPECT_EQ(misses.value(), misses0 + 1);

  cache.store(key, *pipeline().lyzer.snapshot());
  ASSERT_TRUE(std::filesystem::exists(cache.entry_path(key)));
  auto cached = cache.try_load(key);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(hits.value(), hits0 + 1);
  EXPECT_EQ(cached->source(), "cache:" + key.hex());
  EXPECT_EQ(cached->build_id(), pipeline().lyzer.snapshot()->build_id());

  // A different key does not see the entry.
  EXPECT_EQ(cache.try_load(persist::CacheKey{key.value + 1}), nullptr);
}

TEST_F(PersistCache, CorruptEntryIsAMissNotAnError) {
  persist::SnapshotCache cache(cache_dir_);
  const persist::CacheKey key = persist::derive_cache_key(corpus_, {});
  cache.store(key, *pipeline().lyzer.snapshot());
  {
    std::fstream f(cache.entry_path(key),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(persist::kFixedHeaderSize + 3));
    char b = 0x11;
    f.write(&b, 1);
  }
  EXPECT_EQ(cache.try_load(key), nullptr);
  // store() overwrites the bad entry and the next load hits again.
  cache.store(key, *pipeline().lyzer.snapshot());
  EXPECT_NE(cache.try_load(key), nullptr);
}

TEST_F(PersistCache, StoreFailureIsSwallowed) {
  persist::SnapshotCache cache(cache_dir_);
  const persist::CacheKey key = persist::derive_cache_key(corpus_, {});
  // Materialize the shared pipeline before arming the failpoint: its lazy
  // constructor writes a snapshot of its own, which must not hit the fault.
  const auto snap = pipeline().lyzer.snapshot();
  ASSERT_TRUE(fp::set("persist.write", "error"));
  EXPECT_NO_THROW(cache.store(key, *snap));
  EXPECT_FALSE(std::filesystem::exists(cache.entry_path(key)));
}

}  // namespace
}  // namespace rpslyzer
