#include "rpslyzer/net/ip.hpp"

#include <gtest/gtest.h>

namespace rpslyzer::net {
namespace {

TEST(IpAddress, ParseV4) {
  auto a = IpAddress::parse("192.0.2.1");
  ASSERT_TRUE(a);
  EXPECT_TRUE(a->is_v4());
  EXPECT_EQ(a->v4_value(), 0xC0000201u);
  EXPECT_EQ(a->to_string(), "192.0.2.1");
}

TEST(IpAddress, ParseV4Invalid) {
  EXPECT_FALSE(IpAddress::parse("192.0.2"));
  EXPECT_FALSE(IpAddress::parse("192.0.2.256"));
  EXPECT_FALSE(IpAddress::parse("192.0.2.1.5"));
  EXPECT_FALSE(IpAddress::parse("a.b.c.d"));
  EXPECT_FALSE(IpAddress::parse(""));
  EXPECT_FALSE(IpAddress::parse("192.0.2.1 "));
  EXPECT_FALSE(IpAddress::parse("0192.0.2.1"));  // >3 digits
}

TEST(IpAddress, ParseV6Full) {
  auto a = IpAddress::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a);
  EXPECT_FALSE(a->is_v4());
  EXPECT_EQ(a->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(a->lo(), 0x0000000000000001ULL);
  EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(IpAddress, ParseV6Compressed) {
  EXPECT_EQ(IpAddress::parse("::")->to_string(), "::");
  EXPECT_EQ(IpAddress::parse("::1")->to_string(), "::1");
  EXPECT_EQ(IpAddress::parse("2001:db8::")->to_string(), "2001:db8::");
  EXPECT_EQ(IpAddress::parse("fe80::1:2")->to_string(), "fe80::1:2");
  // Longest zero-run wins the compression.
  EXPECT_EQ(IpAddress::parse("1:0:0:2:0:0:0:3")->to_string(), "1:0:0:2::3");
}

TEST(IpAddress, ParseV6EmbeddedV4) {
  auto a = IpAddress::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->lo(), 0x0000ffffc0000201ULL);
}

TEST(IpAddress, ParseV6Invalid) {
  EXPECT_FALSE(IpAddress::parse(":::"));
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7"));        // too few groups
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9"));    // too many groups
  EXPECT_FALSE(IpAddress::parse("1::2::3"));              // two compressions
  EXPECT_FALSE(IpAddress::parse("12345::"));              // group too wide
  EXPECT_FALSE(IpAddress::parse("g::1"));                 // bad hex
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8::"));    // :: covering zero groups
  EXPECT_FALSE(IpAddress::parse("::ffff:192.0.2.1:17"));  // v4 tail not last
}

TEST(IpAddress, Bit) {
  auto a = IpAddress::v4(0x80000001u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
  auto b = IpAddress::v6(0, 1);
  EXPECT_TRUE(b.bit(127));
  EXPECT_FALSE(b.bit(126));
  auto c = IpAddress::v6(1ULL << 63, 0);
  EXPECT_TRUE(c.bit(0));
}

TEST(IpAddress, Masked) {
  auto a = *IpAddress::parse("192.0.2.255");
  EXPECT_EQ(a.masked(24).to_string(), "192.0.2.0");
  EXPECT_EQ(a.masked(0).to_string(), "0.0.0.0");
  EXPECT_EQ(a.masked(32).to_string(), "192.0.2.255");

  auto b = *IpAddress::parse("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff");
  EXPECT_EQ(b.masked(32).to_string(), "2001:db8::");
  EXPECT_EQ(b.masked(64).to_string(), "2001:db8:ffff:ffff::");
  EXPECT_EQ(b.masked(65).to_string(), "2001:db8:ffff:ffff:8000::");
  EXPECT_EQ(b.masked(128), b);
}

TEST(IpAddress, Ordering) {
  auto v4 = *IpAddress::parse("255.255.255.255");
  auto v6 = *IpAddress::parse("::");
  EXPECT_LT(v4, v6);  // families sort v4 < v6
  EXPECT_LT(*IpAddress::parse("10.0.0.1"), *IpAddress::parse("10.0.0.2"));
  EXPECT_LT(*IpAddress::parse("2001:db8::1"), *IpAddress::parse("2001:db8::2"));
}

}  // namespace
}  // namespace rpslyzer::net
