// End-to-end pipeline test: synthetic Internet -> RPSL text -> parse ->
// index -> verify BGP dumps -> aggregate, checking that the phenomena the
// generator planted are recovered by the analyses (the repo-level analogue
// of the paper's §4/§5 experiments, at small scale).

#include <gtest/gtest.h>

#include "rpslyzer/report/aggregate.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/stats/census.hpp"
#include "rpslyzer/synth/generator.hpp"

namespace rpslyzer {
namespace {

synth::SynthConfig small_config() {
  synth::SynthConfig config;
  config.seed = 7;
  config.tier1_count = 4;
  config.tier2_count = 10;
  config.tier3_count = 30;
  config.stub_count = 120;
  config.collectors = 4;
  config.decorative_empty_sets = 6;
  config.decorative_singleton_sets = 10;
  config.syntax_error_objects = 8;
  return config;
}

struct Pipeline {
  synth::InternetGenerator generator;
  Rpslyzer lyzer;
  std::vector<std::string> bgp;

  explicit Pipeline(const synth::SynthConfig& config)
      : generator(config),
        lyzer([&] {
          std::vector<std::pair<std::string, std::string>> ordered;
          for (const auto& name : synth::irr_names()) {
            ordered.emplace_back(name, generator.irr_dumps().at(name));
          }
          return Rpslyzer::from_texts(ordered, generator.caida_serial1());
        }()),
        bgp(generator.bgp_dumps()) {}
};

Pipeline& pipeline() {
  static Pipeline p(small_config());
  return p;
}

TEST(Integration, TopologyShape) {
  const auto& topo = pipeline().generator.topology();
  EXPECT_EQ(topo.size(), 4u + 10u + 30u + 120u);
  // Everyone except Tier-1 has at least one provider.
  for (const auto& as : topo.ases()) {
    if (as.tier == synth::Tier::kTier1) {
      EXPECT_TRUE(as.providers.empty());
      EXPECT_EQ(as.peers.size(), 3u);  // clique of 4
    } else {
      EXPECT_FALSE(as.providers.empty());
    }
    EXPECT_FALSE(as.prefixes.empty());
  }
  // Tier-1 clique is the relationship DB's clique.
  EXPECT_EQ(topo.relations().tier1().size(), 4u);
}

TEST(Integration, DumpsParseWithPlannedAdoptionGaps) {
  const auto& p = pipeline();
  const auto& plan = p.generator.plan();
  const auto& ir = p.lyzer.ir();

  // Every AS with a planned aut-num parses into the IR; missing ones don't.
  for (const auto& as : p.generator.topology().ases()) {
    const bool missing = plan.missing_aut_num.contains(as.asn);
    EXPECT_EQ(ir.aut_nums.contains(as.asn), !missing) << as.asn;
  }
  // Planned zero-rule aut-nums really have no rules.
  for (synth::Asn asn : plan.zero_rules) {
    auto it = ir.aut_nums.find(asn);
    ASSERT_NE(it, ir.aut_nums.end());
    EXPECT_TRUE(it->second.imports.empty());
    EXPECT_TRUE(it->second.exports.empty());
  }
  // Syntax errors were injected and diagnosed.
  stats::ErrorCensus errors = stats::ErrorCensus::compute(p.lyzer.diagnostics(), ir);
  EXPECT_GE(errors.syntax_errors, plan.syntax_errors_injected / 2);
  EXPECT_GE(errors.invalid_as_set_names, 3u);
  EXPECT_GE(errors.invalid_route_set_names, 4u);
}

TEST(Integration, Table1CountsAddUp) {
  const auto& p = pipeline();
  std::size_t aut_nums = 0;
  std::size_t routes = 0;
  std::size_t imports = 0;
  for (const auto& counts : p.lyzer.irr_counts()) {
    aut_nums += counts.aut_nums;
    routes += counts.routes;
    imports += counts.imports;
  }
  EXPECT_GT(aut_nums, 0u);
  EXPECT_GT(imports, 0u);
  // Raw route objects (with cross-IRR duplicates) vs deduped corpus.
  EXPECT_EQ(routes, p.lyzer.raw_route_objects());
  EXPECT_GE(p.lyzer.raw_route_objects(), p.lyzer.ir().routes.size());
  // 13 IRRs reported even if some dumps are small.
  EXPECT_EQ(p.lyzer.irr_counts().size(), 13u);
}

TEST(Integration, BgpDumpsFollowValleyFreePaths) {
  const auto& p = pipeline();
  const auto& relations = p.generator.relations();
  std::size_t routes_seen = 0;
  for (const auto& dump : p.bgp) {
    for (const auto& route : bgp::parse_table_dump(dump)) {
      ++routes_seen;
      // Valley-free: once the path goes downhill (provider->customer) or
      // flat (peer), it never goes uphill again. Walk origin -> collector.
      bool seen_downhill_or_peer = false;
      for (std::size_t i = route.path.size() - 1; i > 0; --i) {
        const auto from = route.path[i];      // exporter
        const auto to = route.path[i - 1];    // importer
        auto rel = relations.between(from, to);
        ASSERT_NE(rel, relations::Relationship::kNone)
            << from << "->" << to << " not adjacent";
        if (rel == relations::Relationship::kCustomer) {
          // exporting to one's provider: uphill, must be before any turn
          EXPECT_FALSE(seen_downhill_or_peer) << "valley in path";
        } else {
          seen_downhill_or_peer = true;
        }
      }
    }
  }
  EXPECT_GT(routes_seen, 1000u);
}

TEST(Integration, VerificationRecoversPlantedPhenomena) {
  const auto& p = pipeline();
  verify::Verifier verifier = p.lyzer.verifier();
  report::Aggregator agg;
  for (const auto& dump : p.bgp) {
    for (const auto& route : bgp::parse_table_dump(dump)) {
      agg.add(route, verifier.verify_route(route));
    }
  }
  ASSERT_GT(agg.total_checks(), 0u);

  // All six statuses appear somewhere.
  report::StatusCounts totals;
  for (const auto& [asn, counts] : agg.as_combined()) totals.merge(counts);
  EXPECT_GT(totals.of(verify::Status::kVerified), 0u);
  EXPECT_GT(totals.of(verify::Status::kUnrecorded), 0u);
  EXPECT_GT(totals.of(verify::Status::kRelaxed), 0u);
  EXPECT_GT(totals.of(verify::Status::kSafelisted), 0u);
  EXPECT_GT(totals.of(verify::Status::kUnverified), 0u);

  // The paper's headline shape: sizable unrecorded share; verified beats
  // unverified among covered interconnections is not guaranteed at this
  // scale, but verified must be a substantial share.
  const double verified_share =
      double(totals.of(verify::Status::kVerified)) / double(totals.total());
  EXPECT_GT(verified_share, 0.10);

  // Per-AS unrecorded categories (Figure 5): missing aut-nums dominate.
  std::size_t missing_autnum_ases = 0;
  for (const auto& [asn, categories] : agg.unrecorded()) {
    if (categories[size_t(report::UnrecordedCategory::kMissingAutNum)] > 0) {
      ++missing_autnum_ases;
      EXPECT_TRUE(p.generator.plan().missing_aut_num.contains(asn)) << asn;
    }
  }
  EXPECT_GT(missing_autnum_ases, 0u);

  // Special cases (Figure 6): export-self and import-customer fire only
  // for ASes that planted those shapes.
  std::size_t export_self_ases = 0;
  std::size_t import_customer_ases = 0;
  for (const auto& [asn, categories] : agg.special_cases()) {
    if (categories[size_t(report::SpecialCategory::kExportSelf)] > 0) {
      ++export_self_ases;
      EXPECT_TRUE(p.generator.plan().export_self_misuse.contains(asn)) << asn;
    }
    if (categories[size_t(report::SpecialCategory::kImportCustomer)] > 0) {
      ++import_customer_ases;
      EXPECT_TRUE(p.generator.plan().import_customer_misuse.contains(asn)) << asn;
    }
  }
  EXPECT_GT(export_self_ases, 0u);
  EXPECT_GT(import_customer_ases, 0u);

  // Appendix E extraction agrees with the plan (subset: only declared
  // rules survive neighbor-coverage sampling).
  stats::MisusePatterns patterns = stats::MisusePatterns::compute(p.lyzer.ir());
  for (synth::Asn asn : patterns.export_self) {
    const auto& topo_as = *p.generator.topology().find(asn);
    if (topo_as.is_transit()) {
      EXPECT_TRUE(p.generator.plan().export_self_misuse.contains(asn)) << asn;
    }
  }
}

TEST(Integration, StrictModeNeverUpgrades) {
  // Disabling relaxations/safelists can only move checks toward
  // Unverified — the §5.1 ablation.
  const auto& p = pipeline();
  verify::VerifyOptions strict;
  strict.relaxations = false;
  strict.safelists = false;
  verify::Verifier relaxed_verifier = p.lyzer.verifier();
  verify::Verifier strict_verifier = p.lyzer.verifier(strict);

  std::size_t relaxed_unverified = 0;
  std::size_t strict_unverified = 0;
  std::size_t checked = 0;
  for (const auto& route : bgp::parse_table_dump(p.bgp.front())) {
    if (++checked > 500) break;
    auto relaxed_hops = relaxed_verifier.verify_route(route);
    auto strict_hops = strict_verifier.verify_route(route);
    ASSERT_EQ(relaxed_hops.size(), strict_hops.size());
    for (std::size_t i = 0; i < relaxed_hops.size(); ++i) {
      for (auto which : {&verify::HopCheck::export_result, &verify::HopCheck::import_result}) {
        const auto relaxed_status = (relaxed_hops[i].*which).status;
        const auto strict_status = (strict_hops[i].*which).status;
        if (relaxed_status == verify::Status::kUnverified) ++relaxed_unverified;
        if (strict_status == verify::Status::kUnverified) ++strict_unverified;
        // A strict Verified/Skip/Unrecorded must be identical in both.
        if (strict_status == verify::Status::kVerified ||
            strict_status == verify::Status::kSkip) {
          EXPECT_EQ(relaxed_status, strict_status);
        }
        // Relaxed/Safelisted only exist with the special cases on.
        EXPECT_NE(strict_status, verify::Status::kRelaxed);
        EXPECT_NE(strict_status, verify::Status::kSafelisted);
      }
    }
  }
  EXPECT_GT(strict_unverified, relaxed_unverified);
}

TEST(Integration, IrJsonRoundTripOnRealCorpus) {
  const auto& p = pipeline();
  json::Value exported = p.lyzer.export_ir();
  ir::Ir round_tripped = ir::ir_from_json(exported);
  EXPECT_EQ(round_tripped, p.lyzer.ir());
}

TEST(Integration, WriteToDiskAndReload) {
  const auto& p = pipeline();
  const auto dir = std::filesystem::temp_directory_path() / "rpslyzer-itest";
  std::filesystem::remove_all(dir);
  const std::size_t files = p.generator.write_to(dir);
  EXPECT_EQ(files, 13u + 1u + p.generator.collector_peers().size());

  Rpslyzer reloaded = Rpslyzer::from_files(dir, dir / "relationships.txt");
  EXPECT_EQ(reloaded.ir(), p.lyzer.ir());
  EXPECT_EQ(reloaded.relations().tier1(), p.lyzer.relations().tier1());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rpslyzer
