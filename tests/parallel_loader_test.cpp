// Differential proof for the parallel sharded ingestion pipeline: for any
// thread count and shard size — down to one object per shard — the parallel
// loader's merged Ir, per-source outcomes/counts, diagnostics, and
// serialized index must be byte-identical to the serial (threads == 1)
// reference on the synthetic 13-IRR corpus, with and without failpoint
// injection at "irr.read"/"irr.parse". Runs under TSan via
// scripts/sanitize_check.sh to catch shard-merge races.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "rpslyzer/ir/json_io.hpp"
#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/json/json.hpp"
#include "rpslyzer/synth/generator.hpp"
#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::irr {
namespace {

namespace fp = util::failpoint;

class ParallelLoader : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rpslyzer-parallel-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    synth::SynthConfig config;
    config.scale = 0.05;
    config.seed = 11;
    synth::InternetGenerator generator(config);
    for (const auto& [name, text] : generator.irr_dumps()) {
      std::ofstream out(dir_ / (util::lower(name) + ".db"), std::ios::binary);
      out << text;
    }
  }
  void TearDown() override {
    fp::clear_all();
    std::filesystem::remove_all(dir_);
  }

  LoadResult load_with(unsigned threads, std::size_t shard_bytes) {
    LoadOptions options;
    options.threads = threads;
    options.shard_target_bytes = shard_bytes;
    return load_irrs(table1_sources(dir_), options);
  }

  static void expect_identical(const LoadResult& serial, const LoadResult& parallel,
                               const std::string& label) {
    SCOPED_TRACE(label);
    EXPECT_TRUE(serial.ir == parallel.ir);
    EXPECT_EQ(serial.raw_route_objects, parallel.raw_route_objects);

    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(serial.outcomes[i].name, parallel.outcomes[i].name);
      EXPECT_EQ(serial.outcomes[i].status, parallel.outcomes[i].status);
      EXPECT_EQ(serial.outcomes[i].detail, parallel.outcomes[i].detail);
    }

    ASSERT_EQ(serial.counts.size(), parallel.counts.size());
    for (std::size_t i = 0; i < serial.counts.size(); ++i) {
      const IrrCounts& a = serial.counts[i];
      const IrrCounts& b = parallel.counts[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.bytes, b.bytes);
      EXPECT_EQ(a.objects, b.objects);
      EXPECT_EQ(a.aut_nums, b.aut_nums);
      EXPECT_EQ(a.routes, b.routes);
      EXPECT_EQ(a.imports, b.imports);
      EXPECT_EQ(a.exports, b.exports);
      EXPECT_EQ(a.as_sets, b.as_sets);
      EXPECT_EQ(a.route_sets, b.route_sets);
      EXPECT_EQ(a.peering_sets, b.peering_sets);
      EXPECT_EQ(a.filter_sets, b.filter_sets);
    }

    // Diagnostics must agree entry for entry, including line numbers (the
    // shard lexer offsets them) and ordering (the merge is deterministic).
    ASSERT_EQ(serial.diagnostics.all().size(), parallel.diagnostics.all().size());
    for (std::size_t i = 0; i < serial.diagnostics.all().size(); ++i) {
      const util::Diagnostic& a = serial.diagnostics.all()[i];
      const util::Diagnostic& b = parallel.diagnostics.all()[i];
      EXPECT_EQ(a.severity, b.severity) << "diagnostic " << i;
      EXPECT_EQ(a.kind, b.kind) << "diagnostic " << i;
      EXPECT_EQ(a.message, b.message) << "diagnostic " << i;
      EXPECT_EQ(a.object_key, b.object_key) << "diagnostic " << i;
      EXPECT_EQ(a.location, b.location) << "diagnostic " << i;
    }

    // The exported (serialized) index: byte-identical JSON.
    EXPECT_EQ(json::dump(ir::to_json(serial.ir)), json::dump(ir::to_json(parallel.ir)));
  }

  std::filesystem::path dir_;
};

TEST_F(ParallelLoader, ThreadsAndShardSizesAreByteIdentical) {
  const LoadResult serial = load_with(1, 1u << 20);
  ASSERT_GT(serial.ir.object_count(), 0u);
  // Shard targets from "whole dump in one shard" down to one object per
  // shard (target 1 cuts at every blank-line boundary).
  for (unsigned threads : {2u, 8u}) {
    for (std::size_t shard_bytes : {std::size_t{1} << 20, std::size_t{4096},
                                    std::size_t{64}, std::size_t{1}}) {
      const LoadResult parallel = load_with(threads, shard_bytes);
      expect_identical(serial, parallel,
                       "threads=" + std::to_string(threads) +
                           " shard_bytes=" + std::to_string(shard_bytes));
    }
  }
}

TEST_F(ParallelLoader, IndexQueriesAgree) {
  const LoadResult serial = load_with(1, 1u << 20);
  const LoadResult parallel = load_with(8, 512);
  Index serial_index(serial.ir);
  Index parallel_index(parallel.ir);
  for (const auto& [asn, an] : serial.ir.aut_nums) {
    const auto a = serial_index.origins_of(asn);
    const auto b = parallel_index.origins_of(asn);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << asn;
  }
}

TEST_F(ParallelLoader, MissingAndExtraDumpsMatchSerial) {
  // Knock out two dumps (degraded) and corrupt one into a pathological
  // object (quarantined): the parallel path must report the exact same
  // per-source outcomes and corpus as serial.
  std::filesystem::remove(dir_ / "ripe.db");
  std::filesystem::remove(dir_ / "altdb.db");
  {
    std::ofstream out(dir_ / "radb.db", std::ios::binary);  // overwrite
    out << std::string(1u << 20, 'x') << ":\n";             // one endless pseudo-object
  }
  LoadOptions small_guard;
  small_guard.max_object_bytes = 256u << 10;  // far above any legit object
  small_guard.threads = 1;
  const LoadResult serial = load_irrs(table1_sources(dir_), small_guard);
  small_guard.threads = 4;
  small_guard.shard_target_bytes = 256;
  const LoadResult parallel = load_irrs(table1_sources(dir_), small_guard);
  EXPECT_EQ(serial.count_with(SourceStatus::kDegraded), 2u);
  EXPECT_EQ(serial.count_with(SourceStatus::kQuarantined), 1u);
  expect_identical(serial, parallel, "degraded+quarantined corpus");
}

// Failpoint injection: unbounded actions fire on every evaluation, so the
// serial and parallel pipelines observe the same faults regardless of
// worker scheduling (N* budgets would land nondeterministically — see the
// load_irrs contract).
TEST_F(ParallelLoader, FailpointInjectionMatchesSerial) {
  const struct {
    const char* spec;
    std::size_t quarantined;
  } cases[] = {
      {"irr.read=error", 13u},
      {"irr.read=truncate(1000)", 13u},
      {"irr.parse=error", 13u},
      {"irr.parse=truncate(4096)", 0u},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.spec);
    std::string error;
    ASSERT_TRUE(fp::configure(c.spec, &error)) << error;
    const LoadResult serial = load_with(1, 1u << 20);
    fp::clear_all();
    ASSERT_TRUE(fp::configure(c.spec, &error)) << error;
    for (unsigned threads : {2u, 8u}) {
      const LoadResult parallel = load_with(threads, 2048);
      expect_identical(serial, parallel, "threads=" + std::to_string(threads));
      EXPECT_EQ(parallel.count_with(SourceStatus::kQuarantined), c.quarantined);
    }
    fp::clear_all();
  }
}

// A fault tripping in one source's shards must quarantine only that source:
// the blast radius of a shard exception is the source, never the load.
TEST_F(ParallelLoader, ShardFaultQuarantinesOnlyItsSource) {
  {
    std::ofstream out(dir_ / "ripe.db", std::ios::binary);  // overwrite
    out << std::string(1u << 20, 'y') << ":\n";
  }
  LoadOptions options;
  options.threads = 4;
  options.shard_target_bytes = 128;
  options.max_object_bytes = 256u << 10;
  const LoadResult result = load_irrs(table1_sources(dir_), options);
  EXPECT_EQ(result.count_with(SourceStatus::kQuarantined), 1u);
  EXPECT_EQ(result.outcome("RIPE")->status, SourceStatus::kQuarantined);
  EXPECT_EQ(result.count_with(SourceStatus::kOk), 12u);
  EXPECT_GT(result.ir.object_count(), 0u);
}

TEST_F(ParallelLoader, ParseDumpParallelMatchesParseDump) {
  // Direct equivalence of the two parse entry points on one dump text,
  // exercising the counts and diagnostics plumbing without load_irrs.
  std::string text;
  {
    std::ifstream in(dir_ / "radb.db", std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = std::move(buffer).str();
  }
  util::Diagnostics serial_diag;
  IrrCounts serial_counts;
  const ir::Ir serial = parse_dump(text, "RADB", serial_diag, &serial_counts);
  for (std::size_t shard_bytes : {std::size_t{1}, std::size_t{777}}) {
    util::Diagnostics parallel_diag;
    IrrCounts parallel_counts;
    const ir::Ir parallel =
        parse_dump_parallel(text, "RADB", parallel_diag, &parallel_counts, 4, shard_bytes);
    EXPECT_TRUE(serial == parallel) << shard_bytes;
    EXPECT_EQ(serial_counts.objects, parallel_counts.objects);
    EXPECT_EQ(serial_counts.bytes, parallel_counts.bytes);
    EXPECT_EQ(serial_counts.routes, parallel_counts.routes);
    ASSERT_EQ(serial_diag.all().size(), parallel_diag.all().size());
  }
}

}  // namespace
}  // namespace rpslyzer::irr
