#include "rpslyzer/stats/census.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/rpsl/expr_parser.hpp"
#include "rpslyzer/rpsl/object_parser.hpp"
#include "rpslyzer/stats/bgpq4.hpp"

namespace rpslyzer::stats {
namespace {

ir::Ir corpus(std::string_view text, util::Diagnostics* out_diag = nullptr) {
  util::Diagnostics diag;
  ir::Ir ir = irr::parse_dump(text, "TEST", diag);
  if (out_diag != nullptr) *out_diag = std::move(diag);
  return ir;
}

TEST(Bgpq4, CompatibleFilters) {
  util::Diagnostics diag;
  rpsl::ParseContext ctx{&diag, "t", "TEST", 1};
  EXPECT_TRUE(bgpq4_compatible(rpsl::parse_filter("ANY", ctx)));
  EXPECT_TRUE(bgpq4_compatible(rpsl::parse_filter("AS1", ctx)));
  EXPECT_TRUE(bgpq4_compatible(rpsl::parse_filter("AS-FOO", ctx)));
  EXPECT_TRUE(bgpq4_compatible(rpsl::parse_filter("RS-BAR", ctx)));
  EXPECT_TRUE(bgpq4_compatible(rpsl::parse_filter("{10.0.0.0/8^+}", ctx)));
  EXPECT_TRUE(bgpq4_compatible(rpsl::parse_filter("PeerAS", ctx)));
}

TEST(Bgpq4, IncompatibleFilters) {
  // §4: filter-set, AS-path regex, communities, composite filters.
  util::Diagnostics diag;
  rpsl::ParseContext ctx{&diag, "t", "TEST", 1};
  EXPECT_FALSE(bgpq4_compatible(rpsl::parse_filter("FLTR-BOGONS", ctx)));
  EXPECT_FALSE(bgpq4_compatible(rpsl::parse_filter("<^AS1$>", ctx)));
  EXPECT_FALSE(bgpq4_compatible(rpsl::parse_filter("community(65535:666)", ctx)));
  EXPECT_FALSE(bgpq4_compatible(rpsl::parse_filter("AS1 AND AS2", ctx)));
  EXPECT_FALSE(bgpq4_compatible(rpsl::parse_filter("AS1 OR AS2", ctx)));
  EXPECT_FALSE(bgpq4_compatible(rpsl::parse_filter("NOT AS1", ctx)));
}

TEST(Bgpq4, StructuredPoliciesIncompatible) {
  util::Diagnostics diag;
  rpsl::ParseContext ctx{&diag, "t", "TEST", 1};
  ir::Rule simple = rpsl::parse_rule("from AS1 accept ANY", ir::Rule::Direction::kImport,
                                     false, ctx);
  EXPECT_TRUE(bgpq4_compatible(simple));
  ir::Rule structured = rpsl::parse_rule(
      "{ from AS1 accept ANY; } REFINE { from AS-ANY accept ANY; }",
      ir::Rule::Direction::kImport, false, ctx);
  EXPECT_FALSE(bgpq4_compatible(structured));
}

TEST(RulesPerAutNum, HistogramAndBuckets) {
  ir::Ir ir = corpus(
      "aut-num: AS1\n\n"  // zero rules
      "aut-num: AS2\nimport: from AS1 accept ANY\n\n"
      "aut-num: AS3\n"
      "import: from AS1 accept ANY\nimport: from AS2 accept ANY\n"
      "import: from AS4 accept ANY\nimport: from AS5 accept ANY\n"
      "import: from AS6 accept ANY\nexport: to AS1 announce AS3\n"
      "export: to AS2 announce AS3\nexport: to AS4 announce AS3\n"
      "export: to AS5 announce AS3\nexport: to AS6 announce AS3\n");
  RulesPerAutNum stats = RulesPerAutNum::compute(ir);
  EXPECT_EQ(stats.aut_num_count, 3u);
  EXPECT_EQ(stats.zero_rule_aut_nums, 1u);
  EXPECT_EQ(stats.ten_plus_rule_aut_nums, 1u);
  EXPECT_EQ(stats.all.at(0), 1u);
  EXPECT_EQ(stats.all.at(1), 1u);
  EXPECT_EQ(stats.all.at(10), 1u);
}

TEST(RulesPerAutNum, Ccdf) {
  std::map<std::size_t, std::size_t> hist{{0, 2}, {1, 1}, {5, 1}};
  auto points = RulesPerAutNum::ccdf(hist);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].first, 0u);
  EXPECT_DOUBLE_EQ(points[0].second, 1.0);     // P[X >= 0] = 1
  EXPECT_DOUBLE_EQ(points[1].second, 0.5);     // P[X >= 1] = 2/4
  EXPECT_DOUBLE_EQ(points[2].second, 0.25);    // P[X >= 5] = 1/4
  EXPECT_TRUE(RulesPerAutNum::ccdf({}).empty());
}

TEST(RulesPerAutNum, Bgpq4HistogramCountsCompatibleOnly) {
  ir::Ir ir = corpus(
      "aut-num: AS1\n"
      "import: from AS2 accept ANY\n"
      "import: from AS2 accept <^AS2$>\n");  // regex: not bgpq4-compatible
  RulesPerAutNum stats = RulesPerAutNum::compute(ir);
  EXPECT_EQ(stats.all.at(2), 1u);
  EXPECT_EQ(stats.bgpq4_compatible.at(1), 1u);
}

TEST(ReferenceCensus, Table2Categories) {
  ir::Ir ir = corpus(
      "aut-num: AS1\n"
      "import: from AS2 accept AS3\n"
      "import: from AS-PEERS accept AS-CONES\n"
      "import: from PRNG-X accept RS-ROUTES\n"
      "export: to AS2 announce FLTR-OUT\n\n"
      "as-set: AS-PEERS\nmembers: AS2\n\n"
      "as-set: AS-UNUSED\nmembers: AS9\n\n"
      "route-set: RS-ROUTES\nmembers: 10.0.0.0/8\n\n"
      "peering-set: PRNG-X\npeering: AS5\n\n"
      "filter-set: FLTR-OUT\nfilter: ANY\n");
  ReferenceCensus census = ReferenceCensus::compute(ir);
  EXPECT_EQ(census.aut_nums.defined, 1u);
  EXPECT_EQ(census.aut_nums.referenced_in_peering, 1u);  // AS2
  EXPECT_EQ(census.aut_nums.referenced_in_filter, 1u);   // AS3
  EXPECT_EQ(census.aut_nums.referenced_overall, 2u);
  EXPECT_EQ(census.as_sets.defined, 2u);
  EXPECT_EQ(census.as_sets.referenced_in_peering, 1u);
  EXPECT_EQ(census.as_sets.referenced_in_filter, 1u);
  EXPECT_EQ(census.as_sets.referenced_overall, 2u);
  EXPECT_EQ(census.route_sets.referenced_in_filter, 1u);
  EXPECT_EQ(census.peering_sets.referenced_in_peering, 1u);
  EXPECT_EQ(census.filter_sets.referenced_in_filter, 1u);
}

TEST(ShapeCensus, PeeringAndFilterShapes) {
  ir::Ir ir = corpus(
      "aut-num: AS1\n"
      "import: from AS2 accept AS-CONE\n"       // single ASN peering, as-set filter
      "import: from AS-GROUP accept AS2\n"      // set peering, ASN filter
      "import: from AS-ANY accept ANY\n"        // ANY peering, ANY filter
      "export: to AS2 announce AS1 AND NOT AS3\n");  // compound filter
  ShapeCensus census = ShapeCensus::compute(ir);
  EXPECT_EQ(census.peerings_total, 4u);
  EXPECT_EQ(census.peerings_single_asn_or_any, 3u);
  EXPECT_EQ(census.filters_as_set, 1u);
  EXPECT_EQ(census.filters_asn, 1u);
  EXPECT_EQ(census.filters_any, 1u);
  EXPECT_EQ(census.filters_compound, 1u);
  EXPECT_EQ(census.rules_total, 4u);
  EXPECT_EQ(census.rules_bgpq4_compatible, 3u);
  EXPECT_EQ(census.ases_with_rules, 1u);
  EXPECT_EQ(census.ases_all_rules_bgpq4_compatible, 0u);
}

TEST(RouteObjectStats, Multiplicity) {
  ir::Ir ir = corpus(
      "route: 10.0.0.0/8\norigin: AS1\nmnt-by: M1\n\n"
      "route: 10.0.0.0/8\norigin: AS2\nmnt-by: M2\n\n"  // multi-origin + multi-mnt
      "route: 192.0.2.0/24\norigin: AS1\nmnt-by: M1\n\n"
      "route: 198.51.100.0/24\norigin: AS3\nmnt-by: M1\n\n"
      "route: 198.51.100.0/24\norigin: AS3\nmnt-by: M9\n");  // same origin, two maintainers
  // Note: irr::parse_dump keeps all parsed objects; (prefix, origin) dedup
  // happens at merge time, so build stats over the parsed corpus directly.
  RouteObjectStats stats = RouteObjectStats::compute(ir);
  EXPECT_EQ(stats.route_objects, 5u);
  EXPECT_EQ(stats.unique_prefixes, 3u);
  EXPECT_EQ(stats.prefixes_with_multiple_objects, 2u);
  EXPECT_EQ(stats.prefixes_with_multiple_origins, 1u);
  EXPECT_EQ(stats.prefixes_with_multiple_maintainers, 2u);
}

TEST(AsSetStats, OpacityCensus) {
  util::Diagnostics diag;
  ir::Ir ir = corpus(
      "as-set: AS-EMPTY\n\n"
      "as-set: AS-SINGLE\nmembers: AS1\n\n"
      "as-set: AS-WILD\nmembers: ANY\n\n"
      "as-set: AS-D1\nmembers: AS-D2\n\n"
      "as-set: AS-D2\nmembers: AS-D3\n\n"
      "as-set: AS-D3\nmembers: AS-D4\n\n"
      "as-set: AS-D4\nmembers: AS-D5\n\n"
      "as-set: AS-D5\nmembers: AS-LOOP\n\n"
      "as-set: AS-LOOP\nmembers: AS-D1, AS2\n");
  irr::Index index(ir);
  AsSetStats stats = AsSetStats::compute(ir, index);
  EXPECT_EQ(stats.total, 9u);
  EXPECT_EQ(stats.empty, 1u);
  EXPECT_EQ(stats.single_member, 1u);
  EXPECT_EQ(stats.with_any_keyword, 1u);
  EXPECT_EQ(stats.recursive, 6u);  // D1..D5 and LOOP
  EXPECT_GE(stats.in_loops, 6u);   // the whole chain participates
  EXPECT_GE(stats.depth_5_plus, 1u);
  EXPECT_EQ(stats.huge, 0u);
}

TEST(ErrorCensus, CountsByKind) {
  util::Diagnostics diag;
  ir::Ir ir = irr::parse_dump(
      "aut-num: AS1\nimport: fron AS2 accept ANY\n\n"
      "as-set: NOT-VALID\nmembers: AS1\n\n"
      "route-set: ALSO-BAD\nmembers: 10.0.0.0/8\n\n"
      "route-set: RS-FINE\nmembers: 10.0.0.0/8\n",
      "TEST", diag);
  ErrorCensus census = ErrorCensus::compute(diag, ir);
  EXPECT_GE(census.syntax_errors, 1u);
  EXPECT_EQ(census.invalid_as_set_names, 1u);
  EXPECT_EQ(census.invalid_route_set_names, 1u);
}

TEST(MisusePatterns, AppendixEShapes) {
  ir::Ir ir = corpus(
      "aut-num: AS1\n"
      "import: from AS2 accept AS2\n"      // import-customer shape
      "export: to AS3 announce AS1\n\n"    // export-self shape
      "aut-num: AS4\n"
      "import: from AS5 accept PeerAS\n\n"  // PeerAS variant
      "aut-num: AS6\n"
      "import: from AS7 accept AS8\n"       // not a shape (different AS)
      "export: to AS7 announce AS-CONE\n");
  MisusePatterns patterns = MisusePatterns::compute(ir);
  EXPECT_TRUE(patterns.import_customer.contains(1));
  EXPECT_TRUE(patterns.import_customer.contains(4));
  EXPECT_FALSE(patterns.import_customer.contains(6));
  EXPECT_TRUE(patterns.export_self.contains(1));
  EXPECT_FALSE(patterns.export_self.contains(6));
}

}  // namespace
}  // namespace rpslyzer::stats
