#include "rpslyzer/util/box.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/util/diagnostics.hpp"

namespace rpslyzer::util {
namespace {

TEST(Box, ValueSemantics) {
  Box<int> a(5);
  Box<int> b = a;  // deep copy
  *b = 7;
  EXPECT_EQ(*a, 5);
  EXPECT_EQ(*b, 7);
  EXPECT_FALSE(a == b);
  *a = 7;
  EXPECT_TRUE(a == b);
}

TEST(Box, CopyAssignment) {
  Box<std::string> a(std::string("hello"));
  Box<std::string> b(std::string("world"));
  b = a;
  EXPECT_EQ(*b, "hello");
  *a = "changed";
  EXPECT_EQ(*b, "hello");  // deep copy, not aliasing
  b = b;                   // self-assignment is a no-op
  EXPECT_EQ(*b, "hello");
}

TEST(Box, MoveLeavesSourceUnusedButDoesNotLeak) {
  Box<std::vector<int>> a(std::vector<int>{1, 2, 3});
  Box<std::vector<int>> b = std::move(a);
  EXPECT_EQ(b->size(), 3u);
}

TEST(Box, DefaultConstructsValue) {
  Box<int> a;
  EXPECT_EQ(*a, 0);
  Box<std::string> s;
  EXPECT_TRUE(s->empty());
}

struct Node {
  int value = 0;
  // Recursive structure through Box, the IR's use case.
  std::vector<Box<Node>> children;
  friend bool operator==(const Node&, const Node&) = default;
};

TEST(Box, RecursiveStructures) {
  Node root;
  root.value = 1;
  Node child;
  child.value = 2;
  root.children.emplace_back(child);
  Node copy = root;  // deep copies the whole tree
  root.children[0]->value = 99;
  EXPECT_EQ(copy.children[0]->value, 2);
  EXPECT_FALSE(copy == root);
}

TEST(Diagnostics, CountsAndMerge) {
  Diagnostics a;
  a.error(DiagnosticKind::kSyntaxError, "one");
  a.warning(DiagnosticKind::kOther, "two");
  EXPECT_EQ(a.error_count(), 1u);
  EXPECT_EQ(a.count(DiagnosticKind::kSyntaxError), 1u);
  EXPECT_EQ(a.count(DiagnosticKind::kOther), 1u);

  Diagnostics b;
  b.error(DiagnosticKind::kInvalidSetName, "three", "as-set:AS-X", {"RIPE", 42});
  a.merge(std::move(b));
  EXPECT_EQ(a.all().size(), 3u);
  EXPECT_EQ(a.all()[2].object_key, "as-set:AS-X");
  EXPECT_EQ(a.all()[2].location.line, 42u);
  a.clear();
  EXPECT_TRUE(a.empty());
}

TEST(Diagnostics, ToStringNames) {
  EXPECT_STREQ(to_string(Severity::kError), "error");
  EXPECT_STREQ(to_string(Severity::kWarning), "warning");
  EXPECT_STREQ(to_string(DiagnosticKind::kSyntaxError), "syntax-error");
  EXPECT_STREQ(to_string(DiagnosticKind::kInvalidSetName), "invalid-set-name");
}

}  // namespace
}  // namespace rpslyzer::util
