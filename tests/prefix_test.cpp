#include "rpslyzer/net/prefix.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/net/martians.hpp"
#include "rpslyzer/net/prefix_set.hpp"
#include "rpslyzer/net/prefix_trie.hpp"

namespace rpslyzer::net {
namespace {

Prefix pfx(std::string_view text) {
  auto p = Prefix::parse(text);
  EXPECT_TRUE(p) << text;
  return *p;
}

TEST(Prefix, ParseAndNormalize) {
  EXPECT_EQ(pfx("192.0.2.129/25").to_string(), "192.0.2.128/25");  // host bits masked
  EXPECT_EQ(pfx("192.0.2.1").to_string(), "192.0.2.1/32");         // bare address
  EXPECT_EQ(pfx("2001:db8::/32").to_string(), "2001:db8::/32");
  EXPECT_EQ(pfx("::/0").to_string(), "::/0");
}

TEST(Prefix, ParseInvalid) {
  EXPECT_FALSE(Prefix::parse("192.0.2.0/33"));
  EXPECT_FALSE(Prefix::parse("2001:db8::/129"));
  EXPECT_FALSE(Prefix::parse("192.0.2.0/"));
  EXPECT_FALSE(Prefix::parse("192.0.2.0/-1"));
  EXPECT_FALSE(Prefix::parse("bogus/24"));
  EXPECT_FALSE(Prefix::parse(""));
}

TEST(Prefix, Covers) {
  EXPECT_TRUE(pfx("10.0.0.0/8").covers(pfx("10.1.0.0/16")));
  EXPECT_TRUE(pfx("10.0.0.0/8").covers(pfx("10.0.0.0/8")));
  EXPECT_FALSE(pfx("10.1.0.0/16").covers(pfx("10.0.0.0/8")));
  EXPECT_FALSE(pfx("10.0.0.0/8").covers(pfx("11.0.0.0/16")));
  EXPECT_FALSE(pfx("0.0.0.0/0").covers(pfx("::/0")));  // families differ
  EXPECT_TRUE(pfx("::/0").covers(pfx("2001:db8::/32")));
}

TEST(Prefix, ContainsAddress) {
  EXPECT_TRUE(pfx("192.0.2.0/24").contains(*IpAddress::parse("192.0.2.77")));
  EXPECT_FALSE(pfx("192.0.2.0/24").contains(*IpAddress::parse("192.0.3.77")));
}

TEST(RangeOp, Parse) {
  EXPECT_EQ(RangeOp::parse("-"), RangeOp::minus());
  EXPECT_EQ(RangeOp::parse("+"), RangeOp::plus());
  EXPECT_EQ(RangeOp::parse("24"), RangeOp::exact(24));
  EXPECT_EQ(RangeOp::parse("24-32"), RangeOp::range(24, 32));
  EXPECT_FALSE(RangeOp::parse("32-24"));  // inverted
  EXPECT_FALSE(RangeOp::parse(""));
  EXPECT_FALSE(RangeOp::parse("x"));
}

TEST(RangeOp, NoneMatchesExactOnly) {
  auto base = pfx("10.0.0.0/16");
  EXPECT_TRUE(matches(base, RangeOp::none(), pfx("10.0.0.0/16")));
  EXPECT_FALSE(matches(base, RangeOp::none(), pfx("10.0.0.0/17")));
  EXPECT_FALSE(matches(base, RangeOp::none(), pfx("10.0.0.0/15")));
}

TEST(RangeOp, MinusExcludesSelf) {
  auto base = pfx("10.0.0.0/16");
  EXPECT_FALSE(matches(base, RangeOp::minus(), pfx("10.0.0.0/16")));
  EXPECT_TRUE(matches(base, RangeOp::minus(), pfx("10.0.0.0/17")));
  EXPECT_TRUE(matches(base, RangeOp::minus(), pfx("10.0.1.1/32")));
  // A host prefix has no strict more-specifics.
  EXPECT_FALSE(matches(pfx("10.0.0.1/32"), RangeOp::minus(), pfx("10.0.0.1/32")));
}

TEST(RangeOp, PlusIncludesSelf) {
  auto base = pfx("10.0.0.0/16");
  EXPECT_TRUE(matches(base, RangeOp::plus(), pfx("10.0.0.0/16")));
  EXPECT_TRUE(matches(base, RangeOp::plus(), pfx("10.0.128.0/17")));
  EXPECT_FALSE(matches(base, RangeOp::plus(), pfx("10.0.0.0/15")));
  EXPECT_FALSE(matches(base, RangeOp::plus(), pfx("11.0.0.0/24")));
}

TEST(RangeOp, ExactLength) {
  auto base = pfx("10.0.0.0/16");
  EXPECT_TRUE(matches(base, RangeOp::exact(24), pfx("10.0.55.0/24")));
  EXPECT_FALSE(matches(base, RangeOp::exact(24), pfx("10.0.55.0/25")));
  // ^16 applied to a /16 selects the prefix itself (RFC 2622 example).
  EXPECT_TRUE(matches(base, RangeOp::exact(16), pfx("10.0.0.0/16")));
  // ^8 applied to a /16 selects nothing.
  EXPECT_FALSE(matches(base, RangeOp::exact(8), pfx("10.0.0.0/16")));
  EXPECT_FALSE(matches(base, RangeOp::exact(8), pfx("10.0.0.0/8")));
}

TEST(RangeOp, RangeClampsLowerBound) {
  auto base = pfx("10.0.0.0/16");
  // ^8-24 on a /16 behaves like ^16-24.
  EXPECT_TRUE(matches(base, RangeOp::range(8, 24), pfx("10.0.0.0/16")));
  EXPECT_TRUE(matches(base, RangeOp::range(8, 24), pfx("10.0.55.0/24")));
  EXPECT_FALSE(matches(base, RangeOp::range(8, 24), pfx("10.0.55.0/25")));
}

TEST(RangeOp, LengthIntervalEdgeCases) {
  EXPECT_EQ(length_interval(RangeOp::minus(), 32, Family::kIpv4), std::nullopt);
  EXPECT_EQ(length_interval(RangeOp::plus(), 128, Family::kIpv6),
            std::make_pair(std::uint8_t{128}, std::uint8_t{128}));
  // Upper bound clamps to the family maximum.
  EXPECT_EQ(length_interval(RangeOp::range(24, 200), 16, Family::kIpv4),
            std::make_pair(std::uint8_t{24}, std::uint8_t{32}));
}

TEST(RangeOp, Composition) {
  auto base = pfx("10.0.0.0/8");
  // {10/8^10-12}^14-16 == 10/8^14-16
  EXPECT_TRUE(matches_composed(base, RangeOp::range(10, 12), RangeOp::range(14, 16),
                               pfx("10.1.0.0/16")));
  EXPECT_FALSE(matches_composed(base, RangeOp::range(10, 12), RangeOp::range(14, 16),
                                pfx("10.64.0.0/12")));
  // {10/8^14-16}^10-12 is empty.
  EXPECT_EQ(composed_interval(RangeOp::range(14, 16), RangeOp::range(10, 12), 8, Family::kIpv4),
            std::nullopt);
  // ^+ on ^- stays exclusive of the base.
  EXPECT_FALSE(matches_composed(base, RangeOp::minus(), RangeOp::plus(), pfx("10.0.0.0/8")));
  EXPECT_TRUE(matches_composed(base, RangeOp::minus(), RangeOp::plus(), pfx("10.0.0.0/9")));
  // ^- on ^- requires two levels deeper.
  EXPECT_FALSE(matches_composed(base, RangeOp::minus(), RangeOp::minus(), pfx("10.0.0.0/9")));
  EXPECT_TRUE(matches_composed(base, RangeOp::minus(), RangeOp::minus(), pfx("10.0.0.0/10")));
  // Outer none keeps the inner interval.
  EXPECT_TRUE(matches_composed(base, RangeOp::plus(), RangeOp::none(), pfx("10.0.0.0/8")));
}

TEST(PrefixRange, Parse) {
  auto r = PrefixRange::parse("5.0.0.0/8^24-32");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->prefix.to_string(), "5.0.0.0/8");
  EXPECT_EQ(r->op, RangeOp::range(24, 32));
  EXPECT_TRUE(r->matches(pfx("5.5.5.0/24")));
  EXPECT_FALSE(r->matches(pfx("5.5.0.0/16")));

  EXPECT_FALSE(PrefixRange::parse("5.0.0.0/8^bogus"));
  EXPECT_FALSE(PrefixRange::parse("^24"));
  ASSERT_TRUE(PrefixRange::parse(" 10.0.0.0/8 "));  // whitespace tolerated
}

TEST(PrefixSet, Matching) {
  PrefixSet set;
  set.add(*PrefixRange::parse("10.0.0.0/8^+"));
  set.add(*PrefixRange::parse("2001:db8::/32"));
  EXPECT_TRUE(set.matches(pfx("10.2.3.0/24")));
  EXPECT_TRUE(set.matches(pfx("2001:db8::/32")));
  EXPECT_FALSE(set.matches(pfx("2001:db8::/48")));  // no op: exact only
  EXPECT_FALSE(set.matches(pfx("11.0.0.0/8")));
  EXPECT_EQ(set.to_string(), "{10.0.0.0/8^+, 2001:db8::/32}");
}

TEST(PrefixSet, MatchesWithOuterOp) {
  PrefixSet set;
  set.add(*PrefixRange::parse("10.0.0.0/8"));
  // {10.0.0.0/8}^24 — the non-standard set-level operator.
  EXPECT_TRUE(set.matches_with(RangeOp::exact(24), pfx("10.1.2.0/24")));
  EXPECT_FALSE(set.matches_with(RangeOp::exact(24), pfx("10.0.0.0/8")));
}

TEST(PrefixTrie, ExactAndLongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(pfx("2001:db8::/32"), 6);

  EXPECT_EQ(*trie.exact(pfx("10.0.0.0/8")), 8);
  EXPECT_EQ(trie.exact(pfx("10.0.0.0/9")), nullptr);

  auto lm = trie.longest_match(pfx("10.1.2.0/24"));
  ASSERT_TRUE(lm);
  EXPECT_EQ(lm->first.to_string(), "10.1.0.0/16");
  EXPECT_EQ(*lm->second, 16);

  lm = trie.longest_match(pfx("10.200.0.0/16"));
  ASSERT_TRUE(lm);
  EXPECT_EQ(*lm->second, 8);

  EXPECT_FALSE(trie.longest_match(pfx("11.0.0.0/8")));
  EXPECT_EQ(trie.size(), 3u);
}

TEST(PrefixTrie, ForEachCover) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 0);
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  std::vector<int> seen;
  trie.for_each_cover(pfx("10.1.0.0/16"), [&](const Prefix&, int v) {
    seen.push_back(v);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 8, 16}));
}

TEST(Martians, V4) {
  EXPECT_TRUE(is_martian(pfx("10.1.2.0/24")));
  EXPECT_TRUE(is_martian(pfx("192.168.0.0/16")));
  EXPECT_TRUE(is_martian(pfx("127.0.0.1/32")));
  EXPECT_TRUE(is_martian(pfx("224.0.0.0/4")));
  EXPECT_TRUE(is_martian(pfx("240.0.0.0/4")));
  EXPECT_FALSE(is_martian(pfx("8.8.8.0/24")));
  EXPECT_FALSE(is_martian(pfx("193.0.0.0/8")));
}

TEST(Martians, V6) {
  EXPECT_TRUE(is_martian(pfx("fc00::/8")));
  EXPECT_TRUE(is_martian(pfx("fe80::/10")));
  EXPECT_TRUE(is_martian(pfx("ff00::/8")));      // multicast: outside 2000::/3
  EXPECT_TRUE(is_martian(pfx("::/0")));          // covers non-global space
  EXPECT_TRUE(is_martian(pfx("2001:db8::/32")));  // documentation
  EXPECT_FALSE(is_martian(pfx("2001:db7::/32")));
  EXPECT_FALSE(is_martian(pfx("2600::/12")));
}

}  // namespace
}  // namespace rpslyzer::net
