// File-based loading: table1_sources ordering, missing-dump tolerance, and
// cross-IRR priority resolution through actual files on disk.

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"

namespace rpslyzer::irr {
namespace {

class LoaderFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rpslyzer-loader-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write(const std::string& name, const std::string& text) {
    std::ofstream out(dir_ / name, std::ios::binary);
    out << text;
  }

  std::filesystem::path dir_;
};

TEST_F(LoaderFiles, LoadsInPriorityOrderFirstWins) {
  // APNIC outranks RIPE outranks RADB (Table 1 order).
  write("apnic.db", "aut-num: AS1\nas-name: FROM-APNIC\n");
  write("ripe.db",
        "aut-num: AS1\nas-name: FROM-RIPE\n\n"
        "aut-num: AS2\nas-name: RIPE-ONLY\n");
  write("radb.db",
        "aut-num: AS2\nas-name: FROM-RADB\n\n"
        "route: 10.0.0.0/8\norigin: AS1\n");

  LoadResult result = load_irrs(table1_sources(dir_));
  ASSERT_EQ(result.ir.aut_nums.size(), 2u);
  EXPECT_EQ(ir::sym_view(result.ir.aut_nums.at(1).as_name), "FROM-APNIC");
  EXPECT_EQ(ir::sym_view(result.ir.aut_nums.at(1).source), "APNIC");
  EXPECT_EQ(ir::sym_view(result.ir.aut_nums.at(2).as_name), "RIPE-ONLY");
  EXPECT_EQ(result.ir.routes.size(), 1u);

  // Per-IRR counts keep raw (pre-merge) numbers.
  ASSERT_EQ(result.counts.size(), 13u);
  EXPECT_EQ(result.counts[0].name, "APNIC");
  EXPECT_EQ(result.counts[0].aut_nums, 1u);
  EXPECT_EQ(result.counts[4].name, "RIPE");
  EXPECT_EQ(result.counts[4].aut_nums, 2u);
}

TEST_F(LoaderFiles, MissingDumpsAreWarnedAndSkipped) {
  write("ripe.db", "aut-num: AS1\n");
  LoadResult result = load_irrs(table1_sources(dir_));
  EXPECT_EQ(result.ir.aut_nums.size(), 1u);
  // 12 missing-dump warnings, no hard errors.
  std::size_t warnings = 0;
  for (const auto& d : result.diagnostics.all()) {
    if (d.severity == util::Severity::kWarning) ++warnings;
  }
  EXPECT_EQ(warnings, 12u);
  EXPECT_EQ(result.diagnostics.error_count(), 0u);
}

TEST_F(LoaderFiles, RouteDedupAcrossIrrsKeepsFirst) {
  write("apnic.db", "route: 10.0.0.0/8\norigin: AS1\nmnt-by: APNIC-MNT\n");
  write("radb.db",
        "route: 10.0.0.0/8\norigin: AS1\nmnt-by: RADB-MNT\n\n"
        "route: 10.0.0.0/8\norigin: AS2\n");
  LoadResult result = load_irrs(table1_sources(dir_));
  EXPECT_EQ(result.raw_route_objects, 3u);
  ASSERT_EQ(result.ir.routes.size(), 2u);  // (10/8, AS1) deduped
  // The higher-priority (APNIC) registration survives.
  for (const auto& route : result.ir.routes) {
    if (route.origin == 1) {
      EXPECT_EQ(ir::sym_view(route.source), "APNIC");
    }
  }
}

TEST_F(LoaderFiles, EmptyDirectoryYieldsEmptyCorpus) {
  LoadResult result = load_irrs(table1_sources(dir_));
  EXPECT_EQ(result.ir.object_count(), 0u);
  EXPECT_EQ(result.counts.size(), 13u);
}

TEST_F(LoaderFiles, OutcomesMirrorAvailability) {
  write("ripe.db", "aut-num: AS1\n");
  LoadResult result = load_irrs(table1_sources(dir_));
  ASSERT_EQ(result.outcomes.size(), 13u);
  EXPECT_EQ(result.count_with(SourceStatus::kOk), 1u);
  EXPECT_EQ(result.count_with(SourceStatus::kDegraded), 12u);
  EXPECT_EQ(result.count_with(SourceStatus::kQuarantined), 0u);
  const SourceOutcome* ripe = result.outcome("RIPE");
  ASSERT_NE(ripe, nullptr);
  EXPECT_EQ(ripe->status, SourceStatus::kOk);
  EXPECT_EQ(to_string(SourceStatus::kDegraded), std::string("degraded"));
  EXPECT_EQ(result.outcome("NOPE"), nullptr);
}

TEST_F(LoaderFiles, MergeIntoAndLoadIrrsAgreeOnRouteDedup) {
  // The same duplicated registrations loaded two ways — file-based
  // (load_irrs, persistent key set) and by hand (merge_into, per-call
  // rebuild) — must produce the identical deduplicated route set.
  const std::string apnic =
      "route: 10.0.0.0/8\norigin: AS1\nmnt-by: APNIC-MNT\n\n"
      "route: 192.0.2.0/24\norigin: AS3\n";
  const std::string radb =
      "route: 10.0.0.0/8\norigin: AS1\nmnt-by: RADB-MNT\n\n"
      "route: 10.0.0.0/8\norigin: AS2\n\n"
      "route: 192.0.2.0/24\norigin: AS3\n";
  write("apnic.db", apnic);
  write("radb.db", radb);
  LoadResult from_files = load_irrs(table1_sources(dir_));

  util::Diagnostics diag;
  ir::Ir merged = parse_dump(apnic, "APNIC", diag);
  merge_into(merged, parse_dump(radb, "RADB", diag));  // standalone rebuild path

  ASSERT_EQ(from_files.ir.routes.size(), merged.routes.size());
  for (std::size_t i = 0; i < merged.routes.size(); ++i) {
    EXPECT_EQ(from_files.ir.routes[i].prefix, merged.routes[i].prefix);
    EXPECT_EQ(from_files.ir.routes[i].origin, merged.routes[i].origin);
    EXPECT_EQ(from_files.ir.routes[i].source, merged.routes[i].source);
  }
  // Both keep the higher-priority registration for the duplicated key.
  for (const auto& route : merged.routes) {
    if (route.origin == 1) {
      EXPECT_EQ(ir::sym_view(route.source), "APNIC");
    }
  }
}

}  // namespace
}  // namespace rpslyzer::irr
