// Round-trip property tests for the IR's JSON export (§3: the IR "can
// export it to JSON files for integration with other tools").

#include <gtest/gtest.h>

#include "rpslyzer/ir/json_io.hpp"
#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/rpsl/object_parser.hpp"

namespace rpslyzer::ir {
namespace {

/// Parse RPSL text into an Ir via the real pipeline.
Ir corpus(std::string_view text) {
  util::Diagnostics diag;
  Ir ir;
  for (const auto& raw : rpsl::lex_objects(text, "TEST", diag)) {
    rpsl::ParsedObject parsed = rpsl::parse_object(raw, diag);
    std::visit(util::overloaded{
                   [](std::monostate) {},
                   [&](AutNum& an) { ir.aut_nums.emplace(an.asn, std::move(an)); },
                   [&](AsSet& s) { ir.as_sets.emplace(to_string(s.name), std::move(s)); },
                   [&](RouteSet& s) { ir.route_sets.emplace(to_string(s.name), std::move(s)); },
                   [&](PeeringSet& s) { ir.peering_sets.emplace(to_string(s.name), std::move(s)); },
                   [&](FilterSet& s) { ir.filter_sets.emplace(to_string(s.name), std::move(s)); },
                   [&](RouteObject& r) { ir.routes.push_back(std::move(r)); },
               },
               parsed);
  }
  return ir;
}

/// Round-trip through serialized JSON text (not just the Value tree).
Ir round_trip(const Ir& ir) {
  return ir_from_json(json::parse(json::dump(to_json(ir))));
}

// Parameterized over RPSL snippets covering every IR node kind.
class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, Lossless) {
  Ir ir = corpus(GetParam());
  ASSERT_GT(ir.object_count(), 0u) << GetParam();
  EXPECT_EQ(round_trip(ir), ir) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JsonRoundTrip,
    ::testing::Values(
        "aut-num: AS1\nas-name: X\nimport: from AS2 accept ANY\n",
        "aut-num: AS1\nexport: to AS2 announce AS-FOO^24-32\n",
        "aut-num: AS1\nimport: from AS2 action pref=100; med=50; accept AS2\n",
        "aut-num: AS1\nimport: from AS2 action community.delete(1:2, 3:4); accept ANY\n",
        "aut-num: AS1\nimport: from AS-A OR AS-B EXCEPT AS3 accept ANY\n",
        "aut-num: AS1\nimport: from PRNG-SET accept ANY\n",
        "aut-num: AS1\nimport: from AS2 192.0.2.1 at 192.0.2.2 accept ANY\n",
        "aut-num: AS1\nmp-import: afi ipv4.unicast, ipv6.unicast from AS2 accept ANY\n",
        "aut-num: AS1\nimport: from AS2 accept <^AS2 (AS3|AS4)* AS5{1,3} [AS6 AS7-AS9 "
        "AS-X]+ .? PeerAS~*$>\n",
        "aut-num: AS1\nimport: from AS2 accept {10.0.0.0/8^+, 2001:db8::/32^33-48}\n",
        "aut-num: AS1\nimport: from AS2 accept ANY AND NOT (AS3 OR fltr-martian)\n",
        "aut-num: AS1\nimport: from AS2 accept community(65535:666)\n",
        "aut-num: AS1\nimport: from AS2 accept FLTR-MARTIANS OR RS-ROUTES^+\n",
        "aut-num: AS1\nimport: from AS2 accept PeerAS\n",
        "aut-num: AS1\nimport: { from AS2 accept ANY; from AS3 accept AS3; } EXCEPT afi "
        "ipv6.unicast { from AS4 accept ANY; }\n",
        "aut-num: AS1\nmp-import: afi any.unicast { from AS2 accept ANY; } REFINE afi "
        "ipv4.unicast { from AS-ANY accept NOT {0.0.0.0/0}; }\n",
        "aut-num: AS1\nimport: protocol BGP4 into OSPF from AS2 accept ANY\n",
        "aut-num: AS1\nimport: from AS2 accept THIS-IS-GARBAGE\n",  // FilterUnknown
        "aut-num: AS1\nmember-of: AS-FOO, AS-BAR\nmnt-by: M1, M2\n",
        "as-set: AS-X\nmembers: AS1, AS2:AS-SUB, ANY\nmbrs-by-ref: M1\nmnt-by: M2\n",
        "as-set: AS-EMPTY\n",
        "route-set: RS-X\nmembers: 10.0.0.0/8^16-24, RS-Y^+, AS-Z^24, AS5, "
        "RS-ANY\nmp-members: 2001:db8::/32\nmbrs-by-ref: ANY\n",
        "peering-set: PRNG-X\npeering: AS1 at 192.0.2.1\nmp-peering: AS-GROUP\n",
        "filter-set: FLTR-X\nfilter: { 192.0.2.0/24^+ }\nmp-filter: NOT fltr-martian\n",
        "route: 192.0.2.0/24\norigin: AS1\nmember-of: RS-X\nmnt-by: M\n",
        "route6: 2001:db8::/32\norigin: AS1\n"));

TEST(IrJson, CompositeCorpus) {
  Ir ir = corpus(
      "aut-num: AS1\nimport: from AS2 accept ANY\n\n"
      "as-set: AS-X\nmembers: AS1\n\n"
      "route-set: RS-X\nmembers: 10.0.0.0/8\n\n"
      "peering-set: PRNG-X\npeering: AS1\n\n"
      "filter-set: FLTR-X\nfilter: ANY\n\n"
      "route: 192.0.2.0/24\norigin: AS1\n");
  EXPECT_EQ(ir.object_count(), 6u);
  EXPECT_EQ(round_trip(ir), ir);
  // The export is a JSON object with all six top-level collections.
  json::Value v = to_json(ir);
  for (const char* key :
       {"aut-nums", "as-sets", "route-sets", "peering-sets", "filter-sets", "routes"}) {
    EXPECT_NE(v.find(key), nullptr) << key;
  }
}

TEST(IrJson, EmptyIr) {
  Ir ir;
  EXPECT_EQ(round_trip(ir), ir);
}

TEST(IrJson, MalformedJsonRejected) {
  EXPECT_THROW(ir_from_json(json::parse(R"({"aut-nums":{"notanumber":{}}})")),
               json::JsonError);
  EXPECT_THROW(ir_from_json(json::parse(R"({})")), json::JsonError);
}

}  // namespace
}  // namespace rpslyzer::ir
