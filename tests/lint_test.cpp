#include "rpslyzer/lint/linter.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/lint/classify.hpp"

namespace rpslyzer::lint {
namespace {

ir::Ir corpus(std::string_view text) {
  util::Diagnostics diag;
  return irr::parse_dump(text, "TEST", diag);
}

std::vector<LintFinding> lint_text(std::string_view text, LintOptions options = {}) {
  static std::vector<ir::Ir> keep_alive;  // Index holds references
  keep_alive.push_back(corpus(text));
  static std::vector<std::unique_ptr<irr::Index>> indexes;
  indexes.push_back(std::make_unique<irr::Index>(keep_alive.back()));
  return lint(keep_alive.back(), *indexes.back(), options);
}

bool has(const std::vector<LintFinding>& findings, LintCode code,
         std::string_view object = {}) {
  for (const auto& f : findings) {
    if (f.code == code && (object.empty() || f.object == object)) return true;
  }
  return false;
}

TEST(Linter, NoRules) {
  auto findings = lint_text("aut-num: AS1\n");
  EXPECT_TRUE(has(findings, LintCode::kNoRules, "aut-num:AS1"));
}

TEST(Linter, ExportSelfShape) {
  auto findings = lint_text(
      "aut-num: AS1\nexport: to AS2 announce AS1\nimport: from AS2 accept ANY\n\n"
      "route: 10.0.0.0/8\norigin: AS1\n");
  EXPECT_TRUE(has(findings, LintCode::kExportSelfShape, "aut-num:AS1"));
}

TEST(Linter, ImportCustomerShape) {
  auto findings = lint_text(
      "aut-num: AS1\nimport: from AS3 accept AS3\n\nroute: 10.0.0.0/8\norigin: AS3\n");
  EXPECT_TRUE(has(findings, LintCode::kImportCustomerShape, "aut-num:AS1"));
  // PeerAS variant too.
  auto findings2 = lint_text(
      "aut-num: AS1\nimport: from AS3 accept PeerAS\n\nroute: 10.0.0.0/8\norigin: AS3\n");
  EXPECT_TRUE(has(findings2, LintCode::kImportCustomerShape));
}

TEST(Linter, MissingSetReferences) {
  auto findings = lint_text(
      "aut-num: AS1\n"
      "import: from AS-GONE accept ANY\n"
      "export: to AS2 announce RS-GONE\n"
      "import: from PRNG-GONE accept ANY\n"
      "import: from AS2 accept FLTR-GONE\n");
  EXPECT_TRUE(has(findings, LintCode::kRuleReferencesMissingSet));
  std::size_t count = 0;
  for (const auto& f : findings) {
    if (f.code == LintCode::kRuleReferencesMissingSet) ++count;
  }
  EXPECT_EQ(count, 4u);  // one per missing set class
}

TEST(Linter, ZeroRouteAsReference) {
  auto findings = lint_text("aut-num: AS1\nexport: to AS2 announce AS1\n");
  EXPECT_TRUE(has(findings, LintCode::kRuleReferencesZeroRouteAs, "aut-num:AS1"));
  // With a route object registered, the finding disappears.
  auto clean = lint_text(
      "aut-num: AS1\nexport: to AS2 announce AS1\n\nroute: 10.0.0.0/8\norigin: AS1\n");
  EXPECT_FALSE(has(clean, LintCode::kRuleReferencesZeroRouteAs));
}

TEST(Linter, SkippedConstructsAndUnparseable) {
  auto findings = lint_text(
      "aut-num: AS1\n"
      "import: from AS2 accept community(65535:666)\n"
      "import: from AS3 accept <^[AS64512-AS65535]+$>\n"
      "import: from AS4 accept UTTER-GARBAGE\n");
  EXPECT_TRUE(has(findings, LintCode::kSkippedConstruct));
  EXPECT_TRUE(has(findings, LintCode::kUnparseableFilter));
}

TEST(Linter, AsSetFindings) {
  auto findings = lint_text(
      "as-set: AS-EMPTY\n\n"
      "as-set: AS-ONE\nmembers: AS5\n\n"
      "as-set: AS-WILD\nmembers: ANY\n\n"
      "as-set: AS-LOOPA\nmembers: AS-LOOPB\n\n"
      "as-set: AS-LOOPB\nmembers: AS-LOOPA\n\n"
      "as-set: AS-DANGLING\nmembers: AS-NOWHERE\n");
  EXPECT_TRUE(has(findings, LintCode::kEmptyAsSet, "as-set:AS-EMPTY"));
  EXPECT_TRUE(has(findings, LintCode::kSingleMemberAsSet, "as-set:AS-ONE"));
  EXPECT_TRUE(has(findings, LintCode::kAsSetContainsAny, "as-set:AS-WILD"));
  EXPECT_TRUE(has(findings, LintCode::kAsSetLoop, "as-set:AS-LOOPA"));
  EXPECT_TRUE(has(findings, LintCode::kAsSetMissingMember, "as-set:AS-DANGLING"));
}

TEST(Linter, DeepNesting) {
  auto findings = lint_text(
      "as-set: AS-D0\nmembers: AS-D1\n\nas-set: AS-D1\nmembers: AS-D2\n\n"
      "as-set: AS-D2\nmembers: AS-D3\n\nas-set: AS-D3\nmembers: AS-D4\n\n"
      "as-set: AS-D4\nmembers: AS-D5\n\nas-set: AS-D5\nmembers: AS9\n");
  EXPECT_TRUE(has(findings, LintCode::kAsSetDeepNesting, "as-set:AS-D0"));
  EXPECT_FALSE(has(findings, LintCode::kAsSetDeepNesting, "as-set:AS-D4"));
}

TEST(Linter, ReservedSetName) {
  auto findings = lint_text("as-set: AS-ANY\n");
  EXPECT_TRUE(has(findings, LintCode::kReservedSetName, "as-set:AS-ANY"));
}

TEST(Linter, UnreferencedRouteSet) {
  auto findings = lint_text(
      "aut-num: AS1\nexport: to AS2 announce RS-USED\n\n"
      "route-set: RS-USED\nmembers: 10.0.0.0/8\n\n"
      "route-set: RS-IDLE\nmembers: 192.0.2.0/24\n");
  EXPECT_TRUE(has(findings, LintCode::kRouteSetUnreferenced, "route-set:RS-IDLE"));
  EXPECT_FALSE(has(findings, LintCode::kRouteSetUnreferenced, "route-set:RS-USED"));
}

TEST(Linter, MultiOriginPrefix) {
  auto findings = lint_text(
      "route: 10.0.0.0/8\norigin: AS1\n\nroute: 10.0.0.0/8\norigin: AS2\n\n"
      "route: 192.0.2.0/24\norigin: AS3\n");
  EXPECT_TRUE(has(findings, LintCode::kMultiOriginPrefix, "route:10.0.0.0/8"));
  EXPECT_FALSE(has(findings, LintCode::kMultiOriginPrefix, "route:192.0.2.0/24"));
}

TEST(Linter, OptionsDisableChecks) {
  LintOptions options;
  options.include_info = false;
  auto findings = lint_text("aut-num: AS1\n", options);
  EXPECT_FALSE(has(findings, LintCode::kNoRules));  // info-level suppressed

  LintOptions no_sets;
  no_sets.check_as_sets = false;
  auto findings2 = lint_text("as-set: AS-EMPTY\n", no_sets);
  EXPECT_FALSE(has(findings2, LintCode::kEmptyAsSet));
}

TEST(Linter, RenderFormat) {
  auto findings = lint_text("as-set: AS-EMPTY\n");
  std::string text = render(findings);
  EXPECT_NE(text.find("warning [empty-as-set] as-set:AS-EMPTY:"), std::string::npos);
}

TEST(Classify, Buckets) {
  EXPECT_EQ(classify(nullptr).usage, UsageClass::kAbsent);

  ir::Ir ir = corpus(
      "aut-num: AS1\n\n"  // silent
      "aut-num: AS2\nimport: from AS9 accept ANY\n\n"  // minimal
      "aut-num: AS3\n"
      "import: from AS9 accept ANY\nimport: from AS8 accept AS8\n"
      "export: to AS9 announce AS-ME\nexport: to AS8 announce ANY\n\n"  // basic + sets
      "aut-num: AS4\nimport: from AS9 accept <^AS9$>\n"
      "import: from AS9 accept ANY\nimport: from AS7 accept ANY\n");  // expressive
  auto all = classify_all(ir, {999});
  EXPECT_EQ(all.at(1).usage, UsageClass::kSilent);
  EXPECT_EQ(all.at(2).usage, UsageClass::kMinimal);
  EXPECT_EQ(all.at(3).usage, UsageClass::kBasic);
  EXPECT_TRUE(all.at(3).uses_sets);
  EXPECT_EQ(all.at(4).usage, UsageClass::kExpressive);
  EXPECT_EQ(all.at(4).compound_rules, 1u);
  EXPECT_EQ(all.at(999).usage, UsageClass::kAbsent);

  auto hist = histogram(all);
  EXPECT_EQ(hist[UsageClass::kSilent], 1u);
  EXPECT_EQ(hist[UsageClass::kAbsent], 1u);
}

TEST(Classify, PolicyRichThreshold) {
  std::string text = "aut-num: AS1\n";
  for (int i = 0; i < 201; ++i) {
    text += "import: from AS" + std::to_string(1000 + i) + " accept ANY\n";
  }
  ir::Ir ir = corpus(text);
  EXPECT_EQ(classify(&ir.aut_nums.at(1)).usage, UsageClass::kPolicyRich);
}

}  // namespace
}  // namespace rpslyzer::lint
