#include "rpslyzer/rpsl/cursor.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/rpsl/expr_parser.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::rpsl {
namespace {

TEST(Cursor, KeywordMatching) {
  Cursor cur("  FROM AS1 accept");
  EXPECT_TRUE(cur.peek_keyword("from"));
  EXPECT_FALSE(cur.peek_keyword("fro"));  // word boundary required
  EXPECT_TRUE(cur.eat_keyword("FROM"));
  EXPECT_FALSE(cur.eat_keyword("accept"));  // AS1 comes first
  EXPECT_EQ(cur.next_atom(), "AS1");
  EXPECT_TRUE(cur.eat_keyword("ACCEPT"));
  EXPECT_TRUE(cur.at_end());
}

TEST(Cursor, KeywordNotInsideWords) {
  Cursor cur("fromage");
  EXPECT_FALSE(cur.peek_keyword("from"));
  Cursor cur2("accept-list");
  EXPECT_FALSE(cur2.peek_keyword("accept"));
}

TEST(Cursor, AtomCharset) {
  Cursor cur("AS8267:AS-Krakow-1014^24-32 , next");
  EXPECT_EQ(cur.next_atom(), "AS8267:AS-Krakow-1014^24-32");
  EXPECT_TRUE(cur.eat_char(','));
  EXPECT_EQ(cur.next_atom(), "next");
}

TEST(Cursor, Ipv6AtomsAndPrefixes) {
  Cursor cur("2001:db8::/32^+ AND");
  EXPECT_EQ(cur.next_atom(), "2001:db8::/32^+");
  EXPECT_TRUE(cur.eat_keyword("AND"));
}

TEST(Cursor, BalancedDelimiters) {
  Cursor cur("{a, {b, c}, d} rest");
  auto inside = cur.take_braced();
  ASSERT_TRUE(inside);
  EXPECT_EQ(*inside, "a, {b, c}, d");
  EXPECT_EQ(cur.next_atom(), "rest");

  Cursor cur2("(x (y) z)");
  auto parens = cur2.take_parenthesized();
  ASSERT_TRUE(parens);
  EXPECT_EQ(*parens, "x (y) z");
  EXPECT_TRUE(cur2.at_end());

  Cursor cur3("<^AS1 .* $> tail");
  auto angled = cur3.take_angled();
  ASSERT_TRUE(angled);
  EXPECT_EQ(*angled, "^AS1 .* $");
}

TEST(Cursor, UnbalancedDelimitersReturnNullopt) {
  Cursor cur("{a, b");
  EXPECT_FALSE(cur.take_braced());
  Cursor cur2("(x");
  EXPECT_FALSE(cur2.take_parenthesized());
  // Not at the delimiter: also nullopt, cursor unmoved.
  Cursor cur3("abc");
  EXPECT_FALSE(cur3.take_braced());
  EXPECT_EQ(cur3.next_atom(), "abc");
}

TEST(Cursor, TakeUntilCharRespectsNesting) {
  Cursor cur("accept {1.2.3.0/24, 0.0.0.0/0}; rest");
  std::string_view text = cur.take_until_char(';');
  EXPECT_EQ(text, "accept {1.2.3.0/24, 0.0.0.0/0}");
  EXPECT_TRUE(cur.eat_char(';'));
  EXPECT_EQ(cur.next_atom(), "rest");

  // Never escapes an enclosing block. (The raw text, untrimmed, is
  // returned; downstream parsers trim.)
  Cursor cur2("a b } outside");
  EXPECT_EQ(cur2.take_until_char(';'), "a b ");
  EXPECT_EQ(cur2.peek(), '}');
}

TEST(Cursor, SeekAndRemaining) {
  Cursor cur("one two");
  std::size_t mark = cur.pos();
  EXPECT_EQ(cur.next_atom(), "one");
  cur.seek(mark);
  EXPECT_EQ(cur.next_atom(), "one");
  EXPECT_EQ(util::trim(cur.remaining()), "two");
}

TEST(TakeUntilKeywords, StopsAtKeywordBoundary) {
  Cursor cur("192.0.2.1 at 192.0.2.2 action pref=1");
  util::Diagnostics diag;
  std::string_view text = take_until_keywords(cur, {"at", "action"});
  EXPECT_EQ(text, "192.0.2.1");
  EXPECT_TRUE(cur.eat_keyword("at"));
  text = take_until_keywords(cur, {"action"});
  EXPECT_EQ(text, "192.0.2.2");
}

TEST(TakeUntilKeywords, IgnoresKeywordsInsideBlocks) {
  Cursor cur("{ accept inside } accept outside");
  std::string_view text = take_until_keywords(cur, {"accept"});
  EXPECT_EQ(text, "{ accept inside }");
}

TEST(TakeUntilKeywords, StopCharWins) {
  Cursor cur("value; accept");
  std::string_view text = take_until_keywords(cur, {"accept"}, ';');
  EXPECT_EQ(text, "value");
  EXPECT_EQ(cur.peek(), ';');
}

TEST(AfiList, ParseVariants) {
  util::Diagnostics diag;
  ParseContext ctx{&diag, "t", "TEST", 1};
  Cursor cur("ipv4.unicast, ipv6.unicast, any rest");
  auto afis = parse_afi_list(cur, ctx);
  ASSERT_EQ(afis.size(), 3u);
  EXPECT_EQ(afis[0], ir::Afi::ipv4_unicast());
  EXPECT_EQ(afis[2], ir::Afi::any());
  EXPECT_EQ(cur.next_atom(), "rest");
  EXPECT_TRUE(diag.empty());

  Cursor bad("bogus.unicast");
  parse_afi_list(bad, ctx);
  EXPECT_FALSE(diag.empty());
}

TEST(AsExprParser, Precedence) {
  util::Diagnostics diag;
  ParseContext ctx{&diag, "t", "TEST", 1};
  // AND binds tighter than OR.
  Cursor cur("AS1 OR AS2 AND AS3");
  auto expr = parse_as_expr(cur, ctx);
  ASSERT_TRUE(expr);
  const auto* orn = std::get_if<ir::AsExprOr>(&expr->node);
  ASSERT_NE(orn, nullptr);
  EXPECT_NE(std::get_if<ir::AsExprAnd>(&orn->right->node), nullptr);
  // EXCEPT has AND's precedence (RFC 2622 §5.6).
  Cursor cur2("AS1 EXCEPT AS2 OR AS3");
  auto expr2 = parse_as_expr(cur2, ctx);
  ASSERT_TRUE(expr2);
  const auto* orn2 = std::get_if<ir::AsExprOr>(&expr2->node);
  ASSERT_NE(orn2, nullptr);
  EXPECT_NE(std::get_if<ir::AsExprExcept>(&orn2->left->node), nullptr);
  EXPECT_TRUE(diag.empty());
}

TEST(AsExprParser, StopsBeforeNonExpressionTokens) {
  util::Diagnostics diag;
  ParseContext ctx{&diag, "t", "TEST", 1};
  Cursor cur("AS1 accept ANY");
  auto expr = parse_as_expr(cur, ctx);
  ASSERT_TRUE(expr);
  EXPECT_NE(std::get_if<ir::AsExprAsn>(&expr->node), nullptr);
  EXPECT_TRUE(cur.peek_keyword("accept"));
}

}  // namespace
}  // namespace rpslyzer::rpsl
