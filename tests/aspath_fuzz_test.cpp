// Randomized engine-equivalence fuzzing: generate random regex ASTs and
// random AS paths with a fixed seed; the NFA, backtracking, and symbolic
// engines must agree wherever each supports the construct. This
// complements the hand-picked grid in aspath_engine_test.cpp.

#include <random>

#include <gtest/gtest.h>

#include "rpslyzer/aspath/engine.hpp"

namespace rpslyzer::aspath {
namespace {

using ir::AsPathRegex;
using ir::AsPathRegexNode;

class RegexGen {
 public:
  explicit RegexGen(std::uint32_t seed) : rng_(seed) {}

  AsPathRegex generate() {
    AsPathRegex out;
    *out.root = node(3);
    out.text = ir::to_string(*out.root);
    return out;
  }

  std::vector<Asn> path() {
    std::vector<Asn> p(size_t(pick(0, 6)));
    for (auto& asn : p) asn = small_asn();
    return p;
  }

 private:
  std::mt19937 rng_;

  std::size_t pick(std::size_t lo, std::size_t hi) {
    return std::uniform_int_distribution<std::size_t>(lo, hi)(rng_);
  }
  Asn small_asn() { return static_cast<Asn>(pick(1, 5)); }

  ir::ReToken token() {
    ir::ReToken t;
    switch (pick(0, 3)) {
      case 0:
        t.kind = ir::ReToken::Kind::kAsn;
        t.asn = small_asn();
        break;
      case 1:
        t.kind = ir::ReToken::Kind::kAny;
        break;
      case 2:
        t.kind = ir::ReToken::Kind::kPeerAs;
        break;
      default: {
        t.kind = ir::ReToken::Kind::kSet;
        t.complemented = pick(0, 1) == 1;
        const std::size_t items = pick(1, 3);
        for (std::size_t i = 0; i < items; ++i) {
          ir::ReSetItem item;
          item.kind = ir::ReSetItem::Kind::kAsn;
          item.asn = small_asn();
          t.items.push_back(item);
        }
        break;
      }
    }
    return t;
  }

  AsPathRegexNode node(int depth) {
    if (depth <= 0) return AsPathRegexNode{ir::ReTokenNode{token()}};
    switch (pick(0, 6)) {
      case 0:
        return AsPathRegexNode{ir::ReTokenNode{token()}};
      case 1: {
        ir::ReConcat c;
        const std::size_t parts = pick(1, 3);
        for (std::size_t i = 0; i < parts; ++i) c.parts.emplace_back(node(depth - 1));
        return AsPathRegexNode{std::move(c)};
      }
      case 2: {
        ir::ReAlt a;
        const std::size_t options = pick(2, 3);
        for (std::size_t i = 0; i < options; ++i) a.options.emplace_back(node(depth - 1));
        return AsPathRegexNode{std::move(a)};
      }
      case 3: {
        ir::ReRepeatNode r;
        *r.inner = node(depth - 1);
        switch (pick(0, 3)) {
          case 0:
            r.repeat = {0, std::nullopt, false};  // *
            break;
          case 1:
            r.repeat = {1, std::nullopt, false};  // +
            break;
          case 2:
            r.repeat = {0, 1, false};  // ?
            break;
          default:
            r.repeat = {static_cast<std::uint32_t>(pick(0, 2)),
                        static_cast<std::uint32_t>(pick(2, 4)), false};
        }
        return AsPathRegexNode{std::move(r)};
      }
      case 4:
        return AsPathRegexNode{ir::ReBeginAnchor{}};
      case 5:
        return AsPathRegexNode{ir::ReEndAnchor{}};
      default:
        return AsPathRegexNode{ir::ReTokenNode{token()}};
    }
  }
};

class FuzzSeeds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuzzSeeds, EnginesAgree) {
  RegexGen gen(GetParam());
  for (int round = 0; round < 60; ++round) {
    AsPathRegex regex = gen.generate();
    for (int p = 0; p < 8; ++p) {
      std::vector<Asn> path = gen.path();
      MatchEnv env{path, 2, nullptr};
      RegexMatch nfa = match_nfa(regex, env);
      RegexMatch bt = match_backtrack(regex, env);
      ASSERT_NE(bt, RegexMatch::kUnsupported) << regex.text;
      if (nfa != RegexMatch::kUnsupported) {
        ASSERT_EQ(nfa, bt) << "regex <" << regex.text << "> path size " << path.size();
      }
      RegexMatch sym = match_symbolic(regex, env, 1u << 14);
      if (sym != RegexMatch::kUnsupported) {
        ASSERT_EQ(sym, bt) << "regex <" << regex.text << "> (symbolic)";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace rpslyzer::aspath
