#include "rpslyzer/stats/evolution.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"

namespace rpslyzer::stats {
namespace {

ir::Ir corpus(std::string_view text) {
  util::Diagnostics diag;
  return irr::parse_dump(text, "TEST", diag);
}

TEST(Evolution, IdenticalSnapshotsAreEmpty) {
  const char* text =
      "aut-num: AS1\nimport: from AS2 accept ANY\n\n"
      "as-set: AS-X\nmembers: AS1\n\n"
      "route: 10.0.0.0/8\norigin: AS1\n";
  IrDiff diff = IrDiff::compute(corpus(text), corpus(text));
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.rules_before, diff.rules_after);
}

TEST(Evolution, DetectsAdditionsRemovalsAndRuleChurn) {
  ir::Ir before = corpus(
      "aut-num: AS1\nimport: from AS2 accept ANY\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n\n"
      "aut-num: AS3\n\n"
      "as-set: AS-GOES\nmembers: AS1\n\n"
      "as-set: AS-STAYS\nmembers: AS1\n\n"
      "route-set: RS-OLD\nmembers: 10.0.0.0/8\n\n"
      "route: 10.0.0.0/8\norigin: AS1\n\n"
      "route: 192.0.2.0/24\norigin: AS2\n");
  ir::Ir after = corpus(
      "aut-num: AS1\nimport: from AS2 accept ANY\nimport: from AS9 accept ANY\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n\n"
      "aut-num: AS4\nexport: to AS1 announce AS4\n\n"
      "as-set: AS-STAYS\nmembers: AS1, AS2\n\n"
      "as-set: AS-NEW\nmembers: AS4\n\n"
      "route: 10.0.0.0/8\norigin: AS1\n\n"
      "route: 10.0.0.0/8\norigin: AS9\n\n"
      "route: 198.51.100.0/24\norigin: AS4\n");

  IrDiff diff = IrDiff::compute(before, after);
  EXPECT_EQ(diff.aut_nums_added, (std::vector<ir::Asn>{4}));
  EXPECT_EQ(diff.aut_nums_removed, (std::vector<ir::Asn>{3}));
  EXPECT_EQ(diff.aut_nums_rules_changed, (std::vector<ir::Asn>{1}));
  EXPECT_EQ(diff.rules_before, 2u);
  EXPECT_EQ(diff.rules_after, 4u);

  EXPECT_EQ(diff.as_sets_added, (std::vector<std::string>{"AS-NEW"}));
  EXPECT_EQ(diff.as_sets_removed, (std::vector<std::string>{"AS-GOES"}));
  EXPECT_EQ(diff.as_sets_changed, (std::vector<std::string>{"AS-STAYS"}));
  EXPECT_EQ(diff.route_sets_removed, (std::vector<std::string>{"RS-OLD"}));

  // Routes keyed by (prefix, origin): (10/8, AS9) and (198.51.100/24, AS4)
  // added; (192.0.2/24, AS2) removed; (10/8, AS1) unchanged.
  EXPECT_EQ(diff.routes_added, 2u);
  EXPECT_EQ(diff.routes_removed, 1u);

  EXPECT_EQ(diff.summary(),
            "aut-nums: +1 -1 ~1; rules: 2 -> 4; as-sets: +1 -1 ~1; route-sets: +0 -1 ~0; "
            "routes: +2 -1");
}

TEST(Evolution, NonRuleAttributeChangesAreNotRuleChurn) {
  ir::Ir before = corpus("aut-num: AS1\nas-name: OLD\nimport: from AS2 accept ANY\n");
  ir::Ir after = corpus("aut-num: AS1\nas-name: NEW\nimport: from AS2 accept ANY\n");
  IrDiff diff = IrDiff::compute(before, after);
  EXPECT_TRUE(diff.aut_nums_rules_changed.empty());
}

}  // namespace
}  // namespace rpslyzer::stats
