// Incremental delta pipeline: journal semantics, dirty-set rebuilds, and the
// differential-equivalence spine.
//
// The central property under test is byte equality: after every applied
// churn batch, the incrementally rebuilt CompiledPolicySnapshot must answer
// every probe — set expansions, origin queries, Appendix-C verification
// reports — byte-for-byte identically to a from-scratch compile of the
// mutated corpus. Seeded churn sequences exercise add/del/modify of policy
// and set objects, serial gaps, duplicate serials (replay), and DELs of
// nonexistent objects; failpoint runs prove the same equality under
// delta.apply refusals and delta.dirty degradation.

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rpslyzer/delta/corpus_store.hpp"
#include "rpslyzer/delta/equiv.hpp"
#include "rpslyzer/delta/journal.hpp"
#include "rpslyzer/delta/pipeline.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/churn.hpp"
#include "rpslyzer/synth/generator.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer::delta {
namespace {

namespace fp = util::failpoint;

std::uint32_t seed_from_env() {
  if (const char* env = std::getenv("RPSLYZER_FUZZ_SEED")) {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 20260806u;
}

/// One small synthetic corpus shared by every test in the binary: the
/// generator is deterministic, and the pipelines under test copy the texts.
struct Corpus {
  std::vector<std::pair<std::string, std::string>> dumps;  // priority order
  std::map<std::string, std::string> dump_map;             // churn catalog
  std::string relationships;
};

const Corpus& corpus() {
  static const Corpus c = [] {
    synth::SynthConfig config;
    config.scale = 0.05;
    config.seed = 11;
    synth::InternetGenerator generator(config);
    Corpus built;
    built.dump_map = generator.irr_dumps();
    for (const auto& name : synth::irr_names()) {
      built.dumps.emplace_back(name, generator.irr_dumps().at(name));
    }
    built.relationships = generator.caida_serial1();
    return built;
  }();
  return c;
}

/// Probe caps sized for test runtime; equality over a capped probe set is
/// still equality over every surface class (queries, tries, reports).
EquivalenceOptions test_equiv_options() {
  EquivalenceOptions options;
  options.max_sets = 60;
  options.max_asns = 60;
  options.max_routes = 40;
  return options;
}

void expect_equivalent(const DeltaPipeline& incremental, const DeltaPipeline& full,
                       const std::string& context) {
  const EquivalenceResult eq = compare_snapshots(
      incremental.current_snapshot(), full.current_snapshot(), test_equiv_options());
  EXPECT_TRUE(eq.equal) << context << ": " << eq.mismatches << "/" << eq.probes
                        << " probes mismatched\n"
                        << eq.first_mismatch;
  EXPECT_EQ(eq.digest_left, eq.digest_right) << context;
}

JournalBatch single_op_batch(std::uint64_t serial, JournalOp::Kind kind,
                             std::string source, std::string paragraph) {
  JournalBatch batch;
  batch.first_serial = batch.last_serial = serial;
  batch.ops.push_back({kind, serial, std::move(source), std::move(paragraph)});
  return batch;
}

class DeltaTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear_all(); }
  void TearDown() override { fp::clear_all(); }
};

// ---------------------------------------------------------------------------
// Journal format
// ---------------------------------------------------------------------------

TEST(JournalFormat, RenderParseRoundTrip) {
  JournalBatch batch;
  batch.first_serial = 7;
  batch.last_serial = 12;
  batch.ops.push_back({JournalOp::Kind::kAdd, 7, "RADB",
                       "aut-num: AS64500\nimport: from AS64501 accept ANY\n"});
  batch.ops.push_back(
      {JournalOp::Kind::kDel, 12, "RIPE", "route: 192.0.2.0/24\norigin: AS64500\n"});
  std::string error;
  const auto parsed = parse_journal(render_journal(batch), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, batch);
}

TEST(JournalFormat, RefusalsAreAtomicWithReasons) {
  const std::string valid =
      "%START 3\n\nADD 3 RADB\n\naut-num: AS1\n\n%END 3\n";
  ASSERT_TRUE(parse_journal(valid).has_value());

  const std::pair<std::string, std::string> cases[] = {
      {"missing %START", "ADD 3 RADB\n\naut-num: AS1\n\n%END 3\n"},
      {"truncated (no %END)", "%START 3\n\nADD 3 RADB\n\naut-num: AS1\n"},
      {"CRLF endings", "%START 3\r\n\r\nADD 3 RADB\r\n\r\naut-num: AS1\r\n\r\n%END 3\r\n"},
      {"trailing content", valid + "leftover\n"},
      {"empty batch", "%START 3\n\n%END 3\n"},
      {"non-increasing serials",
       "%START 3\n\nADD 3 RADB\n\naut-num: AS1\n\nADD 3 RADB\n\naut-num: AS2\n\n%END 3\n"},
      {"%END serial mismatch", "%START 3\n\nADD 3 RADB\n\naut-num: AS1\n\n%END 9\n"},
      {"garbage paragraph", "%START 3\n\nADD 3 RADB\n\nnot an rpsl object\n\n%END 3\n"},
  };
  for (const auto& [label, text] : cases) {
    std::string error;
    EXPECT_FALSE(parse_journal(text, &error).has_value()) << label;
    EXPECT_FALSE(error.empty()) << label;
  }
}

TEST(JournalFormat, FileNamesSortInSerialOrder) {
  EXPECT_EQ(journal_file_name(42), "batch-000000042.nrtm");
  EXPECT_LT(journal_file_name(999), journal_file_name(1000));
}

// ---------------------------------------------------------------------------
// Differential equivalence under seeded churn
// ---------------------------------------------------------------------------

TEST_F(DeltaTest, ChurnBatchesStayByteIdenticalToFullCompile) {
  DeltaPipeline incremental(corpus().dumps, corpus().relationships);
  PipelineOptions full_options;
  full_options.always_full = true;
  DeltaPipeline full(corpus().dumps, corpus().relationships, full_options);

  synth::ChurnConfig churn_config;
  churn_config.seed = seed_from_env();
  churn_config.ops_per_batch = 12;
  synth::ChurnGenerator churn(corpus().dump_map, churn_config);

  for (int b = 0; b < 40; ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    const JournalBatch batch = churn.next_batch();
    const ApplyResult inc_result = incremental.apply(batch);
    const ApplyResult full_result = full.apply(batch);
    ASSERT_FALSE(inc_result.refused) << inc_result.error;
    ASSERT_FALSE(full_result.refused) << full_result.error;
    EXPECT_EQ(inc_result.ops_applied, full_result.ops_applied);
    EXPECT_EQ(inc_result.ops_skipped, full_result.ops_skipped);
    expect_equivalent(incremental, full, "batch " + std::to_string(b));
  }
  // The incremental side must actually be incremental: across 40 batches of
  // 12-op churn, at least one apply reused previous-generation tables.
  EXPECT_FALSE(incremental.current()->stats.full_rebuild);
  EXPECT_GT(incremental.current()->stats.as_sets_seeded +
                incremental.current()->stats.route_sets_reused +
                incremental.current()->stats.regexes_reused,
            0u);
}

TEST_F(DeltaTest, IncrementalMatchesLoaderFromScratchCompile) {
  DeltaPipeline incremental(corpus().dumps, corpus().relationships);
  synth::ChurnConfig churn_config;
  churn_config.seed = seed_from_env() ^ 0x5bd1e995u;
  churn_config.ops_per_batch = 10;
  synth::ChurnGenerator churn(corpus().dump_map, churn_config);
  for (int b = 0; b < 5; ++b) {
    const ApplyResult result = incremental.apply(churn.next_batch());
    ASSERT_FALSE(result.refused) << result.error;
  }
  // Reference side through the ordinary batch loader, not the pipeline: the
  // store's canonical texts must round-trip to the same compiled artifact.
  auto lyzer = std::make_shared<Rpslyzer>(Rpslyzer::from_texts(
      incremental.store().source_texts(), corpus().relationships));
  auto snapshot = lyzer->snapshot();
  const std::shared_ptr<const compile::CompiledPolicySnapshot> reference{
      std::move(lyzer), snapshot.get()};
  const EquivalenceResult eq = compare_snapshots(incremental.current_snapshot(),
                                                 reference, test_equiv_options());
  EXPECT_TRUE(eq.equal) << eq.mismatches << "/" << eq.probes
                        << " probes mismatched\n"
                        << eq.first_mismatch;
}

// ---------------------------------------------------------------------------
// Journal semantics: replay, gaps, nonexistent DELs
// ---------------------------------------------------------------------------

TEST_F(DeltaTest, DuplicateSerialsAreSkippedIdempotently) {
  DeltaPipeline pipeline(corpus().dumps, corpus().relationships);
  const auto batch = single_op_batch(5, JournalOp::Kind::kAdd, "RADB",
                                     "as-set: AS-DELTATEST\nmembers: AS64500\n");
  const ApplyResult first = pipeline.apply(batch);
  ASSERT_TRUE(first.applied);
  EXPECT_EQ(first.ops_applied, 1u);
  const std::uint64_t generation = pipeline.current()->number;

  // Same batch again: pure replay. Success, no new generation published.
  const ApplyResult again = pipeline.apply(batch);
  EXPECT_FALSE(again.applied);
  EXPECT_FALSE(again.refused);
  EXPECT_EQ(again.ops_skipped, 1u);
  EXPECT_EQ(pipeline.current()->number, generation);
  EXPECT_EQ(pipeline.applied_serial(), 5u);
}

TEST_F(DeltaTest, SerialGapsBetweenBatchesAreLegal) {
  DeltaPipeline pipeline(corpus().dumps, corpus().relationships);
  ASSERT_TRUE(pipeline
                  .apply(single_op_batch(10, JournalOp::Kind::kAdd, "RADB",
                                         "as-set: AS-GAP-A\nmembers: AS64500\n"))
                  .applied);
  // Serial jumps from 10 to 1000: NRTM serials are sparse in the wild.
  ASSERT_TRUE(pipeline
                  .apply(single_op_batch(1000, JournalOp::Kind::kAdd, "RADB",
                                         "as-set: AS-GAP-B\nmembers: AS-GAP-A\n"))
                  .applied);
  EXPECT_EQ(pipeline.applied_serial(), 1000u);
}

TEST_F(DeltaTest, DelOfNonexistentObjectIsANoOpNotARefusal) {
  DeltaPipeline pipeline(corpus().dumps, corpus().relationships);
  const std::uint64_t generation = pipeline.current()->number;
  const ApplyResult result = pipeline.apply(single_op_batch(
      3, JournalOp::Kind::kDel, "RADB", "as-set: AS-NEVER-EXISTED\n"));
  ASSERT_FALSE(result.refused) << result.error;
  EXPECT_TRUE(result.applied);
  // The object was absent before and after: the merged-view diff finds no
  // change, so nothing recompiles.
  EXPECT_EQ(result.dirty_objects, 0u);
  EXPECT_GT(pipeline.current()->number, generation);
}

TEST_F(DeltaTest, UnknownSourceRefusesAtomically) {
  DeltaPipeline pipeline(corpus().dumps, corpus().relationships);
  const auto before = pipeline.current();
  const ApplyResult result = pipeline.apply(single_op_batch(
      4, JournalOp::Kind::kAdd, "NO-SUCH-IRR", "as-set: AS-X\nmembers: AS1\n"));
  EXPECT_TRUE(result.refused);
  EXPECT_FALSE(result.error.empty());
  // Last-good generation still serving, store untouched, serial unchanged.
  EXPECT_EQ(pipeline.current().get(), before.get());
  EXPECT_EQ(pipeline.applied_serial(), 0u);

  // The pipeline is not poisoned: a valid batch still applies.
  EXPECT_TRUE(pipeline
                  .apply(single_op_batch(4, JournalOp::Kind::kAdd, "RADB",
                                         "as-set: AS-X\nmembers: AS64500\n"))
                  .applied);
}

// ---------------------------------------------------------------------------
// Failpoints: delta.apply refusal, delta.dirty degradation
// ---------------------------------------------------------------------------

TEST_F(DeltaTest, ApplyFailpointRefusesBeforeAnyMutation) {
  DeltaPipeline pipeline(corpus().dumps, corpus().relationships);
  const auto before = pipeline.current();
  ASSERT_TRUE(fp::set("delta.apply", "1*error(injected apply fault)"));
  const auto batch = single_op_batch(6, JournalOp::Kind::kAdd, "RADB",
                                     "as-set: AS-FAULTED\nmembers: AS64500\n");
  const ApplyResult faulted = pipeline.apply(batch);
  EXPECT_TRUE(faulted.refused);
  EXPECT_EQ(faulted.error, "injected apply fault");
  EXPECT_EQ(pipeline.current().get(), before.get());

  // The refusal is transient: the identical batch applies once the fault
  // clears (the 1* budget above is already spent).
  const ApplyResult retried = pipeline.apply(batch);
  EXPECT_TRUE(retried.applied) << retried.error;
  EXPECT_EQ(pipeline.applied_serial(), 6u);
}

TEST_F(DeltaTest, DirtyFailpointDegradesToFullRebuildStillEquivalent) {
  DeltaPipeline incremental(corpus().dumps, corpus().relationships);
  PipelineOptions full_options;
  full_options.always_full = true;
  DeltaPipeline full(corpus().dumps, corpus().relationships, full_options);

  synth::ChurnConfig churn_config;
  churn_config.seed = seed_from_env() ^ 0x27d4eb2fu;
  churn_config.ops_per_batch = 8;
  synth::ChurnGenerator churn(corpus().dump_map, churn_config);

  ASSERT_TRUE(fp::set("delta.dirty", "error"));
  for (int b = 0; b < 3; ++b) {
    SCOPED_TRACE("degraded batch " + std::to_string(b));
    const JournalBatch batch = churn.next_batch();
    const ApplyResult result = incremental.apply(batch);
    ASSERT_TRUE(result.applied) << result.error;
    // Degraded dirty computation = full, still-correct rebuild.
    EXPECT_TRUE(incremental.current()->stats.full_rebuild);
    ASSERT_TRUE(full.apply(batch).applied);
    expect_equivalent(incremental, full, "degraded batch " + std::to_string(b));
  }
  fp::clear("delta.dirty");

  // Back to incremental service after the fault clears, equivalence intact.
  for (int b = 0; b < 3; ++b) {
    SCOPED_TRACE("recovered batch " + std::to_string(b));
    const JournalBatch batch = churn.next_batch();
    ASSERT_TRUE(incremental.apply(batch).applied);
    ASSERT_TRUE(full.apply(batch).applied);
    EXPECT_FALSE(incremental.current()->stats.full_rebuild);
    expect_equivalent(incremental, full, "recovered batch " + std::to_string(b));
  }
}

TEST_F(DeltaTest, ChurnUnderIntermittentFaultsStaysEquivalent) {
  DeltaPipeline incremental(corpus().dumps, corpus().relationships);
  PipelineOptions full_options;
  full_options.always_full = true;
  DeltaPipeline full(corpus().dumps, corpus().relationships, full_options);

  synth::ChurnConfig churn_config;
  churn_config.seed = seed_from_env() ^ 0x165667b1u;
  churn_config.ops_per_batch = 10;
  synth::ChurnGenerator churn(corpus().dump_map, churn_config);

  for (int b = 0; b < 20; ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    const JournalBatch batch = churn.next_batch();
    if (b % 5 == 1) {
      // A one-shot apply fault: the batch refuses, then the retry applies.
      ASSERT_TRUE(fp::set("delta.apply", "1*error"));
      EXPECT_TRUE(incremental.apply(batch).refused);
    }
    if (b % 7 == 3) ASSERT_TRUE(fp::set("delta.dirty", "1*error"));
    ASSERT_TRUE(incremental.apply(batch).applied);
    ASSERT_TRUE(full.apply(batch).applied);
    expect_equivalent(incremental, full, "batch " + std::to_string(b));
  }
}

// ---------------------------------------------------------------------------
// Store and stats surfaces
// ---------------------------------------------------------------------------

TEST_F(DeltaTest, StatsLineCarriesSerialAndDirtySize) {
  DeltaPipeline pipeline(corpus().dumps, corpus().relationships);
  EXPECT_NE(pipeline.stats_line().find("serial=0"), std::string::npos);
  ASSERT_TRUE(pipeline
                  .apply(single_op_batch(9, JournalOp::Kind::kAdd, "RADB",
                                         "as-set: AS-STATS\nmembers: AS64500\n"))
                  .applied);
  const std::string line = pipeline.stats_line();
  EXPECT_NE(line.find("serial=9"), std::string::npos) << line;
  EXPECT_NE(line.find("batches=1"), std::string::npos) << line;
  EXPECT_NE(line.find("dirty="), std::string::npos) << line;
}

TEST_F(DeltaTest, StoreRoundTripsModifyAndDelete) {
  CorpusStore store;
  store.init({{"RADB", "as-set: AS-ONE\nmembers: AS1\n\naut-num: AS1\n"},
              {"RIPE", "as-set: AS-ONE\nmembers: AS2\n"}});
  // Priority: RADB's definition shadows RIPE's.
  ASSERT_NE(store.merged_as_set("AS-ONE"), nullptr);
  ASSERT_EQ(store.merged_as_set("AS-ONE")->members.size(), 1u);
  EXPECT_EQ(store.merged_as_set("AS-ONE")->members[0].asn, 1u);

  // DEL the RADB copy: the RIPE definition becomes the merged view.
  JournalBatch del = single_op_batch(1, JournalOp::Kind::kDel, "RADB",
                                     "as-set: AS-ONE\n");
  std::size_t skipped = 0;
  std::string error;
  auto prepared = store.prepare(del, 0, &skipped, &error);
  ASSERT_TRUE(prepared.has_value()) << error;
  auto undo = store.apply(*prepared);
  ASSERT_NE(store.merged_as_set("AS-ONE"), nullptr);
  EXPECT_EQ(store.merged_as_set("AS-ONE")->members[0].asn, 2u);

  // revert() restores the pre-batch world exactly.
  store.revert(std::move(undo));
  ASSERT_NE(store.merged_as_set("AS-ONE"), nullptr);
  EXPECT_EQ(store.merged_as_set("AS-ONE")->members[0].asn, 1u);
}

}  // namespace
}  // namespace rpslyzer::delta
