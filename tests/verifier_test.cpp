#include "rpslyzer/verify/verifier.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"

namespace rpslyzer::verify {
namespace {

using bgp::Route;

struct World {
  ir::Ir ir;
  irr::Index index;
  relations::AsRelations relations;

  World(std::string_view rpsl, std::string_view serial1, util::Diagnostics& diag)
      : ir(irr::parse_dump(rpsl, "TEST", diag)),
        index(ir),
        relations(relations::AsRelations::parse(serial1, diag)) {}
};

Route route(std::string_view prefix, std::vector<bgp::Asn> path) {
  return Route{*net::Prefix::parse(prefix), std::move(path)};
}

TEST(Verifier, StrictMatchAnyFilter) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept ANY\nexport: to AS1 announce ANY\n\n"
      "aut-num: AS1\nexport: to AS2 announce ANY\nimport: from AS2 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {2, 1}));
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].from, 1u);
  EXPECT_EQ(hops[0].to, 2u);
  EXPECT_EQ(hops[0].export_result.status, Status::kVerified);
  EXPECT_EQ(hops[0].import_result.status, Status::kVerified);
}

TEST(Verifier, StrictMatchAsnFilterViaRouteObject) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept AS1\n\n"
      "aut-num: AS1\nexport: to AS2 announce AS1\n\n"
      "route: 10.1.0.0/16\norigin: AS1\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.1.0.0/16", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kVerified);
  EXPECT_EQ(hops[0].import_result.status, Status::kVerified);
  // A prefix without a route object is not strictly verified.
  auto hops2 = v.verify_route(route("10.2.0.0/16", {2, 1}));
  EXPECT_NE(hops2[0].import_result.status, Status::kVerified);
}

TEST(Verifier, UnrecordedAutNum) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nimport: from AS1 accept ANY\n", "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kUnrecorded);
  ASSERT_EQ(hops[0].export_result.items.size(), 1u);
  EXPECT_EQ(hops[0].export_result.items[0].reason, Reason::kUnrecordedAutNum);
  EXPECT_EQ(hops[0].import_result.status, Status::kVerified);
}

TEST(Verifier, UnrecordedNoRulesForDirection) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nimport: from AS2 accept ANY\n\n"  // no export rules
      "aut-num: AS2\nimport: from AS1 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kUnrecorded);
  EXPECT_EQ(hops[0].export_result.items[0].reason, Reason::kUnrecordedNoRules);
}

TEST(Verifier, UnrecordedMissingAsSetInFilter) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nexport: to AS2 announce AS-GONE\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kUnrecorded);
  EXPECT_EQ(hops[0].export_result.items[0].reason, Reason::kUnrecordedAsSet);
  EXPECT_EQ(hops[0].export_result.items[0].name, "AS-GONE");
}

TEST(Verifier, UnrecordedZeroRouteAs) {
  // Filter references AS1, which has no route objects at all.
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nexport: to AS2 announce AS1\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kUnrecorded);
  EXPECT_EQ(hops[0].export_result.items[0].reason, Reason::kUnrecordedZeroRouteAs);
}

TEST(Verifier, UnverifiedPeeringMismatchWithItems) {
  // Appendix C: AS141893 exports only to AS58552/AS131755; exporting to
  // AS56239 is unverified with both remotes reported.
  util::Diagnostics diag;
  World w(
      "aut-num: AS141893\n"
      "export: to AS58552 announce AS141893\n"
      "export: to AS131755 announce AS141893\n"
      "import: from AS58552 accept ANY\n\n"
      "aut-num: AS56239\nimport: from AS141893 accept ANY\n",
      "", diag);
  VerifyOptions options;
  options.safelists = false;
  Verifier v(w.index, w.relations, options);
  auto hops = v.verify_route(route("103.162.114.0/23", {56239, 141893}));
  const CheckResult& exp = hops[0].export_result;
  EXPECT_EQ(exp.status, Status::kUnverified);
  ASSERT_EQ(exp.items.size(), 2u);
  EXPECT_EQ(exp.items[0], (ReportItem{Reason::kMatchRemoteAsNum, 58552, {}}));
  EXPECT_EQ(exp.items[1], (ReportItem{Reason::kMatchRemoteAsNum, 131755, {}}));
}

TEST(Verifier, SkipCommunityFilter) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nexport: to AS2 announce community(65535:666)\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kSkip);
  EXPECT_EQ(hops[0].export_result.items[0].reason, Reason::kSkipCommunityFilter);
}

TEST(Verifier, SkipRegexConstructOnlyInFaithfulMode) {
  util::Diagnostics diag;
  const char* rpsl =
      "aut-num: AS1\nexport: to AS2 announce <^[AS64512-AS65535]+$>\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n";
  World w(rpsl, "", diag);
  Verifier faithful(w.index, w.relations);
  auto hops = faithful.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kSkip);
  EXPECT_EQ(hops[0].export_result.items[0].reason, Reason::kSkipRegexConstruct);

  VerifyOptions extended;
  extended.paper_faithful_skips = false;
  Verifier evaluating(w.index, w.relations, extended);
  // aut-num AS1 does not exist for 64512; craft the route so AS1 exports.
  auto hops2 = evaluating.verify_route(route("8.8.8.0/24", {2, 1}));
  // Path announced by AS1 is {1}: not in the private range -> filter fails.
  EXPECT_EQ(hops2[0].export_result.status, Status::kUnverified);
}

TEST(Verifier, SkipBeatsUnrecordedAndMismatch) {
  // One community rule (skip) plus one mismatching rule: Skip wins (§5
  // ordering puts Skip right after Verified).
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\n"
      "export: to AS9 announce ANY\n"
      "export: to AS2 announce community(65535:666)\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kSkip);
}

TEST(Verifier, VerifiedBeatsEverything) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\n"
      "export: to AS2 announce community(65535:666)\n"
      "export: to AS2 announce ANY\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kVerified);
}

TEST(Verifier, RelaxedExportSelf) {
  // AS1 announces "itself" but the prefix belongs to its customer AS3,
  // whose route object exists: Export Self relaxation (§5.1.1, App. C).
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nexport: to AS2 announce AS1\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n\n"
      "route: 10.0.0.0/8\norigin: AS1\n\n"
      "route: 10.3.0.0/16\norigin: AS3\n",
      "1|3|-1\n",  // AS1 is AS3's provider
      diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.3.0.0/16", {2, 1, 3}));
  const CheckResult& exp = hops[1].export_result;  // AS1 -> AS2 hop
  EXPECT_EQ(exp.status, Status::kRelaxed);
  EXPECT_EQ(exp.items.back().reason, Reason::kRelaxedExportSelf);
}

TEST(Verifier, ExportSelfRequiresConeRouteObject) {
  // Same topology but no route object for the customer prefix: the
  // relaxation must NOT fire (Appendix C's AS56239 example); uphill
  // safelisting is also disabled here to observe the raw result.
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nexport: to AS2 announce AS1\n\n"
      "route: 10.0.0.0/8\norigin: AS1\n",
      "1|3|-1\n", diag);
  VerifyOptions options;
  options.safelists = false;
  Verifier v(w.index, w.relations, options);
  auto hops = v.verify_route(route("10.99.0.0/16", {2, 1, 3}));
  // 10.99/16 is inside AS1's aggregate but has no exact route object from
  // the cone; strict filter fails, relaxation fails.
  EXPECT_EQ(hops[1].export_result.status, Status::kUnverified);
}

TEST(Verifier, RelaxedImportCustomer) {
  // "import: from AS3 accept AS3" by AS3's provider AS1: treated as ANY.
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nimport: from AS3 accept AS3\n\n"
      "route: 10.3.0.0/16\norigin: AS3\n",
      "1|3|-1\n", diag);
  Verifier v(w.index, w.relations);
  // AS3 announces a route originated by its own customer (AS4), so the
  // strict filter (AS3's route objects) fails.
  auto hops = v.verify_route(route("10.44.0.0/16", {1, 3, 4}));
  const CheckResult& imp = hops[1].import_result;  // AS1 imports from AS3
  EXPECT_EQ(imp.status, Status::kRelaxed);
  EXPECT_EQ(imp.items.back().reason, Reason::kRelaxedImportCustomer);
}

TEST(Verifier, ImportCustomerRequiresCustomerRelationship) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nimport: from AS3 accept AS3\n\n"
      "route: 10.3.0.0/16\norigin: AS3\n",
      "",  // no relationship data
      diag);
  VerifyOptions options;
  options.safelists = false;
  Verifier v(w.index, w.relations, options);
  auto hops = v.verify_route(route("10.44.0.0/16", {1, 3, 4}));
  EXPECT_EQ(hops[1].import_result.status, Status::kUnverified);
}

TEST(Verifier, RelaxedImportCustomerViaPeerAs) {
  // Appendix A: a PeerAS filter under the import-customer relaxation.
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nimport: from AS3 accept PeerAS\n\n"
      "route: 10.3.0.0/16\norigin: AS3\n",
      "1|3|-1\n", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.44.0.0/16", {1, 3, 4}));
  EXPECT_EQ(hops[1].import_result.status, Status::kRelaxed);
  EXPECT_EQ(hops[1].import_result.items.back().reason, Reason::kRelaxedImportCustomer);
}

TEST(Verifier, RelaxedMissingRoutes) {
  // Filter references the path origin AS4 (which has SOME route objects,
  // just not this prefix): Missing Routes relaxation.
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nimport: from AS3 accept AS4\n\n"
      "route: 10.4.0.0/16\norigin: AS4\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.77.0.0/16", {1, 3, 4}));
  EXPECT_EQ(hops[1].import_result.status, Status::kRelaxed);
  EXPECT_EQ(hops[1].import_result.items.back().reason, Reason::kRelaxedMissingRoutes);
}

TEST(Verifier, RelaxedMissingRoutesViaAsSet) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nimport: from AS3 accept AS-CONE\n\n"
      "as-set: AS-CONE\nmembers: AS3, AS4\n\n"
      "route: 10.4.0.0/16\norigin: AS4\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.77.0.0/16", {1, 3, 4}));
  EXPECT_EQ(hops[1].import_result.status, Status::kRelaxed);
  EXPECT_EQ(hops[1].import_result.items.back().reason, Reason::kRelaxedMissingRoutes);
}

TEST(Verifier, RelaxationsCanBeDisabled) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nimport: from AS3 accept AS4\n\n"
      "route: 10.4.0.0/16\norigin: AS4\n",
      "", diag);
  VerifyOptions options;
  options.relaxations = false;
  options.safelists = false;
  Verifier v(w.index, w.relations, options);
  auto hops = v.verify_route(route("10.77.0.0/16", {1, 3, 4}));
  EXPECT_EQ(hops[1].import_result.status, Status::kUnverified);
}

TEST(Verifier, SafelistOnlyProviderPolicies) {
  // AS5 only has rules for its provider AS6; an import from customer AS7
  // is safelisted.
  util::Diagnostics diag;
  World w(
      "aut-num: AS5\nimport: from AS6 accept ANY\nexport: to AS6 announce AS5\n\n"
      "route: 10.5.0.0/16\norigin: AS5\n",
      "6|5|-1\n5|7|-1\n", diag);
  Verifier v(w.index, w.relations);
  EXPECT_TRUE(v.only_provider_policies(5));
  auto hops = v.verify_route(route("10.77.0.0/16", {5, 7}));
  const CheckResult& imp = hops[0].import_result;
  EXPECT_EQ(imp.status, Status::kSafelisted);
  EXPECT_EQ(imp.items.back().reason, Reason::kSpecCustomerOnlyProviderPolicies);
}

TEST(Verifier, OnlyProviderPoliciesRejectsCatchAll) {
  util::Diagnostics diag;
  World w("aut-num: AS5\nimport: from AS-ANY accept ANY\n", "6|5|-1\n", diag);
  Verifier v(w.index, w.relations);
  EXPECT_FALSE(v.only_provider_policies(5));
}

TEST(Verifier, SafelistTier1Pair) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS10\nexport: to AS99 announce AS10\nimport: from AS99 accept AS99\n\n"
      "aut-num: AS20\nexport: to AS99 announce AS20\nimport: from AS99 accept AS99\n",
      "# inferred clique: 10 20\n10|20|0\n10|1|-1\n20|1|-1\n", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {10, 20}));
  EXPECT_EQ(hops[0].export_result.status, Status::kSafelisted);
  EXPECT_EQ(hops[0].export_result.items.back().reason, Reason::kSpecTier1Pair);
  EXPECT_EQ(hops[0].import_result.status, Status::kSafelisted);
}

TEST(Verifier, SafelistUphill) {
  // Customer AS3 exporting to provider AS1 with no matching rules.
  util::Diagnostics diag;
  World w(
      "aut-num: AS3\nexport: to AS9 announce AS3\nimport: from AS9 accept ANY\n\n"
      "aut-num: AS1\nimport: from AS9 accept ANY\nexport: to AS9 announce ANY\n",
      "1|3|-1\n", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("8.8.8.0/24", {1, 3}));
  EXPECT_EQ(hops[0].export_result.status, Status::kSafelisted);
  EXPECT_EQ(hops[0].export_result.items.back().reason, Reason::kSpecUphill);
  EXPECT_EQ(hops[0].import_result.status, Status::kSafelisted);
  EXPECT_EQ(hops[0].import_result.items.back().reason, Reason::kSpecUphill);
}

TEST(Verifier, DownhillIsNotSafelisted) {
  // The paper "considered similarly safelisting downhill propagation but
  // decided against it".
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nexport: to AS9 announce ANY\nimport: from AS9 accept ANY\n\n"
      "aut-num: AS3\nimport: from AS9 accept ANY\nexport: to AS9 announce ANY\n",
      "1|3|-1\n", diag);
  Verifier v(w.index, w.relations);
  // Route flows downhill: provider AS1 exports to customer AS3.
  auto hops = v.verify_route(route("8.8.8.0/24", {3, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kUnverified);
  EXPECT_EQ(hops[0].import_result.status, Status::kUnverified);
}

TEST(Verifier, AfiGatesRuleApplicability) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nmp-export: afi ipv6.unicast to AS2 announce ANY\n\n"
      "aut-num: AS2\nmp-import: afi ipv6.unicast from AS1 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto v6 = v.verify_route(route("2001:db8::/32", {2, 1}));
  EXPECT_EQ(v6[0].export_result.status, Status::kVerified);
  EXPECT_EQ(v6[0].import_result.status, Status::kVerified);
  auto v4 = v.verify_route(route("8.8.8.0/24", {2, 1}));
  EXPECT_EQ(v4[0].export_result.status, Status::kUnverified);
}

TEST(Verifier, PlainImportDoesNotCoverV6) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS1\nexport: to AS2 announce ANY\n\n"
      "aut-num: AS2\nimport: from AS1 accept ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("2001:db8::/32", {2, 1}));
  EXPECT_EQ(hops[0].export_result.status, Status::kUnverified);
  EXPECT_EQ(hops[0].import_result.status, Status::kUnverified);
}

TEST(Verifier, AsPathRegexFilterMatches) {
  // The paper's §2 example: accept routes from AS13911 originated by
  // AS6327 only.
  util::Diagnostics diag;
  World w(
      "aut-num: AS14595\n"
      "mp-import: afi any.unicast from AS13911 accept <^AS13911 AS6327+$>\n\n"
      "aut-num: AS13911\nexport: to AS14595 announce ANY\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto good = v.verify_route(route("8.8.8.0/24", {14595, 13911, 6327}));
  EXPECT_EQ(good[1].import_result.status, Status::kVerified);
  auto bad = v.verify_route(route("8.8.8.0/24", {14595, 13911, 7777}));
  EXPECT_EQ(bad[1].import_result.status, Status::kUnverified);
}

TEST(Verifier, StructuredRefineRule) {
  // Both sides of a REFINE must match.
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\n"
      "mp-import: afi any { from AS1 accept ANY; } REFINE afi any { from AS-ANY accept "
      "<AS3$>; }\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto ok = v.verify_route(route("8.8.8.0/24", {2, 1, 3}));
  EXPECT_EQ(ok[1].import_result.status, Status::kVerified);
  auto fail = v.verify_route(route("8.8.8.0/24", {2, 1, 4}));
  EXPECT_EQ(fail[1].import_result.status, Status::kUnverified);
}

TEST(Verifier, StructuredExceptRule) {
  // EXCEPT semantics (RFC 2622 §6.6): routes matching the exception's
  // peering AND filter take the exception; everything else falls back to
  // the base policy.
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\n"
      "import: { from AS-ANY accept <AS9$>; } EXCEPT { from AS1 accept ANY; }\n",
      "", diag);
  Verifier v(w.index, w.relations);
  // From AS1: the exception accepts anything.
  auto via_exception = v.verify_route(route("8.8.8.0/24", {2, 1, 4}));
  EXPECT_EQ(via_exception[1].import_result.status, Status::kVerified);
  // From AS3: only the base policy applies, requiring origin AS9.
  auto via_base = v.verify_route(route("8.8.8.0/24", {2, 3, 9}));
  EXPECT_EQ(via_base[1].import_result.status, Status::kVerified);
  auto fail = v.verify_route(route("8.8.8.0/24", {2, 3, 4}));
  EXPECT_EQ(fail[1].import_result.status, Status::kUnverified);
}

TEST(Verifier, AppendixCScenario) {
  // The full 6-hop example: prefix 103.162.114.0/23, path
  // {3257 1299 6939 133840 56239 141893}.
  util::Diagnostics diag;
  World w(
      // AS141893: two export rules, none covering AS56239.
      "aut-num: AS141893\n"
      "export: to AS58552 announce AS141893\n"
      "export: to AS131755 announce AS141893\n"
      "import: from AS58552 accept ANY\n\n"
      // AS56239: rules only for providers AS55685 (and the export below).
      "aut-num: AS56239\n"
      "import: from AS55685 accept ANY\n"
      "export: to AS133840 announce AS56239\n\n"
      // AS133840: rules only for its provider AS55685.
      "aut-num: AS133840\n"
      "import: from AS55685 accept ANY\n"
      "export: to AS55685 announce AS133840\n\n"
      // AS6939: open policy.
      "aut-num: AS6939\n"
      "import: from AS-ANY accept ANY\n"
      "export: to AS-ANY announce ANY\n\n"
      // AS1299: strict import; exports reference as-sets missing from the
      // IRRs.
      "aut-num: AS1299\n"
      "export: to AS3257 announce AS1299:AS-TWELVE99-CUSTOMER-V4 OR "
      "AS1299:AS-TWELVE99-PEER-V4\n"
      "import: from AS6939 accept ANY\n\n"
      // AS3257: a rule for a different remote only.
      "aut-num: AS3257\n"
      "import: from AS12 accept ANY\n"
      "export: to AS12 announce ANY\n\n"
      // Route object for AS56239's own space (not the verified prefix).
      "route: 103.123.0.0/16\norigin: AS56239\n",
      // Relationships: 55685 is the provider the small ASes wrote rules
      // for; 133840 provider of 56239; 6939 provider of 133840; 1299/3257
      // Tier-1 clique; 6939 customer of 1299. AS141893 has NO inferred
      // relationship with AS56239 — Appendix C notes AS137296 is "the only
      // AS in AS56239's customer cone".
      "# inferred clique: 1299 3257\n"
      "1299|3257|0\n"
      "56239|137296|-1\n"
      "55685|56239|-1\n"
      "55685|133840|-1\n"
      "133840|56239|-1\n"
      "6939|133840|-1\n"
      "1299|6939|-1\n",
      diag);
  Verifier v(w.index, w.relations);
  Route r = route("103.162.114.0/23", {3257, 1299, 6939, 133840, 56239, 141893});
  auto hops = v.verify_route(r);
  ASSERT_EQ(hops.size(), 5u);

  // Hop 0 (origin side): AS141893 -> AS56239.
  EXPECT_EQ(hops[0].export_result.status, Status::kUnverified);  // BadExport
  EXPECT_EQ(hops[0].import_result.status, Status::kSafelisted);  // MehImport (OPP)
  EXPECT_EQ(hops[0].import_result.items.back().reason,
            Reason::kSpecOtherOnlyProviderPolicies);

  // Hop 1: AS56239 -> AS133840: export filter fails even relaxed -> uphill.
  EXPECT_EQ(hops[1].export_result.status, Status::kSafelisted);
  EXPECT_EQ(hops[1].export_result.items.back().reason, Reason::kSpecUphill);
  EXPECT_EQ(hops[1].import_result.status, Status::kSafelisted);
  EXPECT_EQ(hops[1].import_result.items.back().reason,
            Reason::kSpecCustomerOnlyProviderPolicies);

  // Hop 2: AS133840 -> AS6939: uphill export; strict import (AS-ANY/ANY).
  EXPECT_EQ(hops[2].export_result.status, Status::kSafelisted);
  EXPECT_EQ(hops[2].export_result.items.back().reason, Reason::kSpecUphill);
  EXPECT_EQ(hops[2].import_result.status, Status::kVerified);  // OkImport

  // Hop 3: AS6939 -> AS1299: both strict.
  EXPECT_EQ(hops[3].export_result.status, Status::kVerified);
  EXPECT_EQ(hops[3].import_result.status, Status::kVerified);

  // Hop 4: AS1299 -> AS3257: unrecorded as-sets; Tier-1 pair import.
  EXPECT_EQ(hops[4].export_result.status, Status::kUnrecorded);  // UnrecExport
  ASSERT_GE(hops[4].export_result.items.size(), 1u);
  EXPECT_EQ(hops[4].export_result.items[0].reason, Reason::kUnrecordedAsSet);
  EXPECT_EQ(hops[4].import_result.status, Status::kSafelisted);  // MehImport
  EXPECT_EQ(hops[4].import_result.items.back().reason, Reason::kSpecTier1Pair);

  // The textual report renders Appendix-C style lines.
  std::string report = v.report(r);
  EXPECT_NE(report.find("BadExport { from: 141893, to: 56239"), std::string::npos);
  EXPECT_NE(report.find("MatchRemoteAsNum(58552)"), std::string::npos);
  EXPECT_NE(report.find("OkImport { from: 133840, to: 6939 }"), std::string::npos);
  EXPECT_NE(report.find("UnrecordedAsSet(\"AS1299:AS-TWELVE99-CUSTOMER-V4\")"),
            std::string::npos);
  EXPECT_NE(report.find("SpecTier1Pair"), std::string::npos);
}

TEST(Verifier, ShortPathsHaveNoHops) {
  util::Diagnostics diag;
  World w("", "", diag);
  Verifier v(w.index, w.relations);
  EXPECT_TRUE(v.verify_route(route("8.8.8.0/24", {1})).empty());
  EXPECT_TRUE(v.verify_route(route("8.8.8.0/24", {})).empty());
}

}  // namespace
}  // namespace rpslyzer::verify
