// Telemetry layer tests: metrics registry (concurrency, Prometheus golden
// format, collectors), structured logging (levels, JSON, rate limiting), and
// trace spans (nesting, chrome-trace export validated with src/json).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "rpslyzer/json/json.hpp"
#include "rpslyzer/obs/failpoint_bridge.hpp"
#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer::obs {
namespace {

namespace fp = util::failpoint;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterConcurrencyExactTotals) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolving the handle from every thread exercises the idempotent
      // lookup path; all threads must land on the same storage.
      Counter& counter = registry.counter("obs_test_total", "test");
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("obs_test_total", "test").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistry, LabeledInstancesAreDistinct) {
  MetricsRegistry registry;
  Counter& a = registry.counter("obs_ops_total", "ops", {{"op", "a"}});
  Counter& b = registry.counter("obs_ops_total", "ops", {{"op", "b"}});
  EXPECT_NE(&a, &b);
  a.inc(3);
  b.inc(5);
  EXPECT_EQ(registry.counter("obs_ops_total", "ops", {{"op", "a"}}).value(), 3u);
  EXPECT_EQ(registry.counter("obs_ops_total", "ops", {{"op", "b"}}).value(), 5u);
}

TEST(MetricsRegistry, HistogramConcurrentObservationsStayCoherent) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("obs_seconds", "test", exponential_bounds(0.001, 2.0, 10));
  constexpr int kThreads = 4;
  constexpr int kObservations = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&histogram, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kObservations; ++i) {
        histogram.observe(0.0005 * static_cast<double>((i + t) % 8));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots must always account for every bucket increment
  // belonging to the count they report.
  for (int i = 0; i < 200; ++i) {
    const Histogram::Snapshot snap = histogram.snapshot();
    std::uint64_t bucket_total = 0;
    for (std::uint64_t bucket : snap.buckets) bucket_total += bucket;
    ASSERT_EQ(bucket_total, snap.count);
  }
  for (auto& writer : writers) writer.join();
  const Histogram::Snapshot final_snap = histogram.snapshot();
  EXPECT_EQ(final_snap.count, static_cast<std::uint64_t>(kThreads) * kObservations);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t bucket : final_snap.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, final_snap.count);
}

TEST(MetricsRegistry, PrometheusGoldenFormat) {
  MetricsRegistry registry;
  registry.counter("rpslyzer_test_requests_total", "Requests served", {{"op", "g"}})
      .inc(42);
  registry.gauge("rpslyzer_test_depth", "Queue depth").set(-3);
  Histogram& histogram =
      registry.histogram("rpslyzer_test_seconds", "Latency", {0.1, 1.0});
  histogram.observe(0.05);
  histogram.observe(0.5);
  histogram.observe(5.0);

  const std::string expected =
      "# HELP rpslyzer_test_depth Queue depth\n"
      "# TYPE rpslyzer_test_depth gauge\n"
      "rpslyzer_test_depth -3\n"
      "# HELP rpslyzer_test_requests_total Requests served\n"
      "# TYPE rpslyzer_test_requests_total counter\n"
      "rpslyzer_test_requests_total{op=\"g\"} 42\n"
      "# HELP rpslyzer_test_seconds Latency\n"
      "# TYPE rpslyzer_test_seconds histogram\n"
      "rpslyzer_test_seconds_bucket{le=\"0.1\"} 1\n"
      "rpslyzer_test_seconds_bucket{le=\"1\"} 2\n"
      "rpslyzer_test_seconds_bucket{le=\"+Inf\"} 3\n"
      "rpslyzer_test_seconds_sum 5.5499999999999998\n"
      "rpslyzer_test_seconds_count 3\n";
  EXPECT_EQ(registry.to_prometheus(), expected);
}

TEST(MetricsRegistry, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("obs_escape_total", "test", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string page = registry.to_prometheus();
  EXPECT_NE(page.find("obs_escape_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistry, CollectorsRunAtScrapeTime) {
  MetricsRegistry registry;
  std::uint64_t source = 7;
  registry.register_collector([&source](CollectSink& sink) {
    sink.counter("obs_mirrored_total", "mirrored", {{"site", "x"}},
                 static_cast<double>(source));
    sink.gauge("obs_live", "live", {}, 1.5);
  });
  source = 9;  // the scrape must see the value at scrape time, not registration
  const std::string page = registry.to_prometheus();
  EXPECT_NE(page.find("obs_mirrored_total{site=\"x\"} 9\n"), std::string::npos);
  EXPECT_NE(page.find("obs_live 1.5\n"), std::string::npos);
  EXPECT_NE(page.find("# TYPE obs_live gauge\n"), std::string::npos);
}

TEST(MetricsRegistry, MergedExpositionSpansRegistries) {
  MetricsRegistry first;
  MetricsRegistry second;
  first.counter("obs_first_total", "first").inc(1);
  second.counter("obs_second_total", "second").inc(2);
  const std::string page = to_prometheus({&first, &second});
  EXPECT_NE(page.find("obs_first_total 1\n"), std::string::npos);
  EXPECT_NE(page.find("obs_second_total 2\n"), std::string::npos);
}

TEST(MetricsRegistry, DisabledRecordingIsSkipped) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("obs_gated_total", "test");
  set_metrics_enabled(false);
  counter.inc(100);
  set_metrics_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  EXPECT_EQ(counter.value(), 1u);
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

class LogCapture {
 public:
  LogCapture() {
    set_log_sink([this](std::string_view line) { lines_.emplace_back(line); });
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
    set_log_json(false);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(Log, LevelGateFiltersBelowThreshold) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  log_info("test", "dropped info");
  log_debug("test", "dropped debug");
  log_warn("test", "kept warn", {{"key", "value"}, {"n", 42}});
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("test"), std::string::npos);
  EXPECT_NE(line.find("kept warn"), std::string::npos);
  EXPECT_NE(line.find("key=value"), std::string::npos);
  EXPECT_NE(line.find("n=42"), std::string::npos);
}

TEST(Log, TextValuesWithSpacesAreQuoted) {
  LogCapture capture;
  set_log_level(LogLevel::kInfo);
  log_info("test", "quoting", {{"reason", "no such file"}});
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_NE(capture.lines()[0].find("reason=\"no such file\""), std::string::npos);
}

TEST(Log, JsonLinesParseWithOwnJsonParser) {
  LogCapture capture;
  set_log_level(LogLevel::kInfo);
  set_log_json(true);
  log_info("loader", "source degraded",
           {{"source", "RIPE"}, {"bytes", 1234u}, {"ratio", 0.5}, {"ok", false}});
  ASSERT_EQ(capture.lines().size(), 1u);
  const json::Value parsed = json::parse(capture.lines()[0]);
  const json::Object& object = parsed.as_object();
  EXPECT_EQ(object.at("level").as_string(), "info");
  EXPECT_EQ(object.at("component").as_string(), "loader");
  EXPECT_EQ(object.at("msg").as_string(), "source degraded");
  EXPECT_EQ(object.at("source").as_string(), "RIPE");
  EXPECT_EQ(object.at("bytes").as_int(), 1234);
  EXPECT_DOUBLE_EQ(object.at("ratio").as_double(), 0.5);
  EXPECT_FALSE(object.at("ok").as_bool());
}

TEST(Log, RateLimitCapsBurstPerWindow) {
  LogCapture capture;
  set_log_level(LogLevel::kInfo);
  const std::uint32_t attempts = kRateLimitBurst + 10;
  for (std::uint32_t i = 0; i < attempts; ++i) {
    log_info("ratelimit-test", "flood message", {{"i", i}});
  }
  EXPECT_EQ(capture.lines().size(), kRateLimitBurst);
  // A different (component, message) key is unaffected by the flood.
  log_info("ratelimit-test", "another message");
  EXPECT_EQ(capture.lines().size(), kRateLimitBurst + 1);
  // When the window rolls over, the first line through reports how many
  // were suppressed.
  std::this_thread::sleep_for(kRateLimitWindow + std::chrono::milliseconds(50));
  log_info("ratelimit-test", "flood message");
  ASSERT_EQ(capture.lines().size(), kRateLimitBurst + 2);
  EXPECT_NE(capture.lines().back().find("suppressed=10"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  Tracer::global().set_enabled(false);
  {
    Span span("obs.test.noop");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(Tracer::global().records().empty());
}

TEST(Trace, SpanNestingDepthAndChromeTraceExport) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  {
    Span outer("obs.test.outer", "corpus");
    {
      Span inner("obs.test.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  // Spans complete inner-first.
  EXPECT_EQ(records[0].name, "obs.test.inner");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_EQ(records[1].name, "obs.test.outer");
  EXPECT_EQ(records[1].depth, 0u);
  EXPECT_EQ(records[1].arg, "corpus");
  EXPECT_GE(records[1].wall_us, records[0].wall_us);
  // The inner span starts no earlier and ends no later than the outer one.
  EXPECT_GE(records[0].start_us, records[1].start_us);
  EXPECT_LE(records[0].start_us + records[0].wall_us,
            records[1].start_us + records[1].wall_us);

  // The exported document is valid JSON in chrome://tracing shape, parsed
  // with our own parser.
  const json::Value parsed = json::parse(tracer.chrome_trace());
  const json::Object& document = parsed.as_object();
  const json::Array& events = document.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const json::Value& event : events) {
    const json::Object& fields = event.as_object();
    EXPECT_EQ(fields.at("ph").as_string(), "X");
    EXPECT_EQ(fields.at("pid").as_int(), 1);
    EXPECT_GE(fields.at("dur").as_int(), 0);
    EXPECT_TRUE(fields.contains("ts"));
    EXPECT_TRUE(fields.contains("name"));
  }

  const std::string table = tracer.summary_table();
  EXPECT_NE(table.find("obs.test.outer"), std::string::npos);
  EXPECT_NE(table.find("obs.test.inner"), std::string::npos);
  tracer.clear();
}

TEST(Trace, EnablingClearsPriorRecords) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  { Span span("obs.test.first"); }
  EXPECT_EQ(tracer.records().size(), 1u);
  tracer.set_enabled(true);  // re-enable = fresh session
  EXPECT_TRUE(tracer.records().empty());
  tracer.set_enabled(false);
  tracer.clear();
}

// ---------------------------------------------------------------------------
// Failpoint observability bridge
// ---------------------------------------------------------------------------

TEST(FailpointBridge, FiringEmitsLogAndMetric) {
  install_failpoint_observer();
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  fp::clear_all();
  ASSERT_TRUE(fp::set("obs.test.site", "2*error(boom)"));
  EXPECT_TRUE(fp::hit("obs.test.site").is_error());
  EXPECT_TRUE(fp::hit("obs.test.site").is_error());
  EXPECT_FALSE(fp::hit("obs.test.site"));  // budget exhausted

  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[0].find("failpoint"), std::string::npos);
  EXPECT_NE(capture.lines()[0].find("obs.test.site"), std::string::npos);
  EXPECT_NE(capture.lines()[0].find("boom"), std::string::npos);

  const std::string page = MetricsRegistry::global().to_prometheus();
  EXPECT_NE(page.find("rpslyzer_failpoint_fires_total{site=\"obs.test.site\"} 2"),
            std::string::npos);
  fp::clear_all();
}

}  // namespace
}  // namespace rpslyzer::obs
