// Telemetry layer tests: metrics registry (concurrency, Prometheus golden
// format, collectors), structured logging (levels, JSON, rate limiting), and
// trace spans (nesting, chrome-trace export validated with src/json).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "rpslyzer/json/json.hpp"
#include "rpslyzer/obs/failpoint_bridge.hpp"
#include "rpslyzer/obs/flight.hpp"
#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer::obs {
namespace {

namespace fp = util::failpoint;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterConcurrencyExactTotals) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolving the handle from every thread exercises the idempotent
      // lookup path; all threads must land on the same storage.
      Counter& counter = registry.counter("obs_test_total", "test");
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("obs_test_total", "test").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistry, LabeledInstancesAreDistinct) {
  MetricsRegistry registry;
  Counter& a = registry.counter("obs_ops_total", "ops", {{"op", "a"}});
  Counter& b = registry.counter("obs_ops_total", "ops", {{"op", "b"}});
  EXPECT_NE(&a, &b);
  a.inc(3);
  b.inc(5);
  EXPECT_EQ(registry.counter("obs_ops_total", "ops", {{"op", "a"}}).value(), 3u);
  EXPECT_EQ(registry.counter("obs_ops_total", "ops", {{"op", "b"}}).value(), 5u);
}

TEST(MetricsRegistry, HistogramConcurrentObservationsStayCoherent) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("obs_seconds", "test", exponential_bounds(0.001, 2.0, 10));
  constexpr int kThreads = 4;
  constexpr int kObservations = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&histogram, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kObservations; ++i) {
        histogram.observe(0.0005 * static_cast<double>((i + t) % 8));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots must always account for every bucket increment
  // belonging to the count they report.
  for (int i = 0; i < 200; ++i) {
    const Histogram::Snapshot snap = histogram.snapshot();
    std::uint64_t bucket_total = 0;
    for (std::uint64_t bucket : snap.buckets) bucket_total += bucket;
    ASSERT_EQ(bucket_total, snap.count);
  }
  for (auto& writer : writers) writer.join();
  const Histogram::Snapshot final_snap = histogram.snapshot();
  EXPECT_EQ(final_snap.count, static_cast<std::uint64_t>(kThreads) * kObservations);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t bucket : final_snap.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, final_snap.count);
}

TEST(MetricsRegistry, PrometheusGoldenFormat) {
  MetricsRegistry registry;
  registry.counter("rpslyzer_test_requests_total", "Requests served", {{"op", "g"}})
      .inc(42);
  registry.gauge("rpslyzer_test_depth", "Queue depth").set(-3);
  Histogram& histogram =
      registry.histogram("rpslyzer_test_seconds", "Latency", {0.1, 1.0});
  histogram.observe(0.05);
  histogram.observe(0.5);
  histogram.observe(5.0);

  const std::string expected =
      "# HELP rpslyzer_test_depth Queue depth\n"
      "# TYPE rpslyzer_test_depth gauge\n"
      "rpslyzer_test_depth -3\n"
      "# HELP rpslyzer_test_requests_total Requests served\n"
      "# TYPE rpslyzer_test_requests_total counter\n"
      "rpslyzer_test_requests_total{op=\"g\"} 42\n"
      "# HELP rpslyzer_test_seconds Latency\n"
      "# TYPE rpslyzer_test_seconds histogram\n"
      "rpslyzer_test_seconds_bucket{le=\"0.1\"} 1\n"
      "rpslyzer_test_seconds_bucket{le=\"1\"} 2\n"
      "rpslyzer_test_seconds_bucket{le=\"+Inf\"} 3\n"
      "rpslyzer_test_seconds_sum 5.5499999999999998\n"
      "rpslyzer_test_seconds_count 3\n";
  EXPECT_EQ(registry.to_prometheus(), expected);
}

TEST(MetricsRegistry, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("obs_escape_total", "test", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string page = registry.to_prometheus();
  EXPECT_NE(page.find("obs_escape_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistry, CollectorsRunAtScrapeTime) {
  MetricsRegistry registry;
  std::uint64_t source = 7;
  registry.register_collector([&source](CollectSink& sink) {
    sink.counter("obs_mirrored_total", "mirrored", {{"site", "x"}},
                 static_cast<double>(source));
    sink.gauge("obs_live", "live", {}, 1.5);
  });
  source = 9;  // the scrape must see the value at scrape time, not registration
  const std::string page = registry.to_prometheus();
  EXPECT_NE(page.find("obs_mirrored_total{site=\"x\"} 9\n"), std::string::npos);
  EXPECT_NE(page.find("obs_live 1.5\n"), std::string::npos);
  EXPECT_NE(page.find("# TYPE obs_live gauge\n"), std::string::npos);
}

TEST(MetricsRegistry, MergedExpositionSpansRegistries) {
  MetricsRegistry first;
  MetricsRegistry second;
  first.counter("obs_first_total", "first").inc(1);
  second.counter("obs_second_total", "second").inc(2);
  const std::string page = to_prometheus({&first, &second});
  EXPECT_NE(page.find("obs_first_total 1\n"), std::string::npos);
  EXPECT_NE(page.find("obs_second_total 2\n"), std::string::npos);
}

TEST(MetricsRegistry, DisabledRecordingIsSkipped) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("obs_gated_total", "test");
  set_metrics_enabled(false);
  counter.inc(100);
  set_metrics_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  EXPECT_EQ(counter.value(), 1u);
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

class LogCapture {
 public:
  LogCapture() {
    set_log_sink([this](std::string_view line) { lines_.emplace_back(line); });
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
    set_log_json(false);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(Log, LevelGateFiltersBelowThreshold) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  log_info("test", "dropped info");
  log_debug("test", "dropped debug");
  log_warn("test", "kept warn", {{"key", "value"}, {"n", 42}});
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("test"), std::string::npos);
  EXPECT_NE(line.find("kept warn"), std::string::npos);
  EXPECT_NE(line.find("key=value"), std::string::npos);
  EXPECT_NE(line.find("n=42"), std::string::npos);
}

TEST(Log, TextValuesWithSpacesAreQuoted) {
  LogCapture capture;
  set_log_level(LogLevel::kInfo);
  log_info("test", "quoting", {{"reason", "no such file"}});
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_NE(capture.lines()[0].find("reason=\"no such file\""), std::string::npos);
}

TEST(Log, JsonLinesParseWithOwnJsonParser) {
  LogCapture capture;
  set_log_level(LogLevel::kInfo);
  set_log_json(true);
  log_info("loader", "source degraded",
           {{"source", "RIPE"}, {"bytes", 1234u}, {"ratio", 0.5}, {"ok", false}});
  ASSERT_EQ(capture.lines().size(), 1u);
  const json::Value parsed = json::parse(capture.lines()[0]);
  const json::Object& object = parsed.as_object();
  EXPECT_EQ(object.at("level").as_string(), "info");
  EXPECT_EQ(object.at("component").as_string(), "loader");
  EXPECT_EQ(object.at("msg").as_string(), "source degraded");
  EXPECT_EQ(object.at("source").as_string(), "RIPE");
  EXPECT_EQ(object.at("bytes").as_int(), 1234);
  EXPECT_DOUBLE_EQ(object.at("ratio").as_double(), 0.5);
  EXPECT_FALSE(object.at("ok").as_bool());
}

TEST(Log, RateLimitCapsBurstPerWindow) {
  LogCapture capture;
  set_log_level(LogLevel::kInfo);
  const std::uint32_t attempts = kRateLimitBurst + 10;
  for (std::uint32_t i = 0; i < attempts; ++i) {
    log_info("ratelimit-test", "flood message", {{"i", i}});
  }
  EXPECT_EQ(capture.lines().size(), kRateLimitBurst);
  // A different (component, message) key is unaffected by the flood.
  log_info("ratelimit-test", "another message");
  EXPECT_EQ(capture.lines().size(), kRateLimitBurst + 1);
  // When the window rolls over, the first line through reports how many
  // were suppressed.
  std::this_thread::sleep_for(kRateLimitWindow + std::chrono::milliseconds(50));
  log_info("ratelimit-test", "flood message");
  ASSERT_EQ(capture.lines().size(), kRateLimitBurst + 2);
  EXPECT_NE(capture.lines().back().find("suppressed=10"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  Tracer::global().set_enabled(false);
  {
    Span span("obs.test.noop");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(Tracer::global().records().empty());
}

TEST(Trace, SpanNestingDepthAndChromeTraceExport) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  {
    Span outer("obs.test.outer", "corpus");
    {
      Span inner("obs.test.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  // Spans complete inner-first.
  EXPECT_EQ(records[0].name, "obs.test.inner");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_EQ(records[1].name, "obs.test.outer");
  EXPECT_EQ(records[1].depth, 0u);
  EXPECT_EQ(records[1].arg, "corpus");
  EXPECT_GE(records[1].wall_us, records[0].wall_us);
  // The inner span starts no earlier and ends no later than the outer one.
  EXPECT_GE(records[0].start_us, records[1].start_us);
  EXPECT_LE(records[0].start_us + records[0].wall_us,
            records[1].start_us + records[1].wall_us);

  // The exported document is valid JSON in chrome://tracing shape, parsed
  // with our own parser.
  const json::Value parsed = json::parse(tracer.chrome_trace());
  const json::Object& document = parsed.as_object();
  const json::Array& events = document.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const json::Value& event : events) {
    const json::Object& fields = event.as_object();
    EXPECT_EQ(fields.at("ph").as_string(), "X");
    EXPECT_EQ(fields.at("pid").as_int(), 1);
    EXPECT_GE(fields.at("dur").as_int(), 0);
    EXPECT_TRUE(fields.contains("ts"));
    EXPECT_TRUE(fields.contains("name"));
  }

  const std::string table = tracer.summary_table();
  EXPECT_NE(table.find("obs.test.outer"), std::string::npos);
  EXPECT_NE(table.find("obs.test.inner"), std::string::npos);
  tracer.clear();
}

TEST(Trace, EnablingClearsPriorRecords) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  { Span span("obs.test.first"); }
  EXPECT_EQ(tracer.records().size(), 1u);
  tracer.set_enabled(true);  // re-enable = fresh session
  EXPECT_TRUE(tracer.records().empty());
  tracer.set_enabled(false);
  tracer.clear();
}

// ---------------------------------------------------------------------------
// Failpoint observability bridge
// ---------------------------------------------------------------------------

TEST(FailpointBridge, FiringEmitsLogAndMetric) {
  install_failpoint_observer();
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  fp::clear_all();
  ASSERT_TRUE(fp::set("obs.test.site", "2*error(boom)"));
  EXPECT_TRUE(fp::hit("obs.test.site").is_error());
  EXPECT_TRUE(fp::hit("obs.test.site").is_error());
  EXPECT_FALSE(fp::hit("obs.test.site"));  // budget exhausted

  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[0].find("failpoint"), std::string::npos);
  EXPECT_NE(capture.lines()[0].find("obs.test.site"), std::string::npos);
  EXPECT_NE(capture.lines()[0].find("boom"), std::string::npos);

  const std::string page = MetricsRegistry::global().to_prometheus();
  EXPECT_NE(page.find("rpslyzer_failpoint_fires_total{site=\"obs.test.site\"} 2"),
            std::string::npos);
  fp::clear_all();
}

// ---------------------------------------------------------------------------
// Prometheus exposition hardening (escaping, determinism, merging)
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, HelpTextIsEscaped) {
  MetricsRegistry registry;
  registry.counter("obs_help_total", "path C:\\tmp\nsecond line").inc();
  const std::string page = registry.to_prometheus();
  // Backslash and newline must be escaped in HELP; a raw newline would
  // truncate the comment and turn "second line" into a syntax error.
  EXPECT_NE(page.find("# HELP obs_help_total path C:\\\\tmp\\nsecond line\n"),
            std::string::npos);
  EXPECT_EQ(page.find("tmp\nsecond"), std::string::npos);
}

TEST(MetricsRegistry, Utf8LabelValuesPassThroughUnescaped) {
  MetricsRegistry registry;
  registry.counter("obs_utf8_total", "test", {{"名前", "käse—☃"}}).inc(2);
  const std::string page = registry.to_prometheus();
  // Prometheus text format is UTF-8 native: only backslash, quote, and
  // newline are escaped in label values; multi-byte sequences pass raw.
  EXPECT_NE(page.find("obs_utf8_total{名前=\"käse—☃\"} 2\n"), std::string::npos);
}

TEST(MetricsRegistry, EmptyHelpFallsBackToUndocumented) {
  MetricsRegistry registry;
  registry.counter("obs_undoc_total", "").inc();
  const std::string page = registry.to_prometheus();
  EXPECT_NE(page.find("# HELP obs_undoc_total (undocumented)\n"), std::string::npos);
}

TEST(MetricsRegistry, ExpositionIsSortedByNameThenLabels) {
  MetricsRegistry registry;
  // Registered deliberately out of order, both across families and across
  // label sets within one family.
  registry.counter("obs_zz_total", "late family").inc(1);
  registry.counter("obs_aa_total", "early family", {{"op", "z"}}).inc(3);
  registry.counter("obs_aa_total", "early family", {{"op", "a"}}).inc(2);
  const std::string page = registry.to_prometheus();
  const std::size_t family_a = page.find("# HELP obs_aa_total");
  const std::size_t family_z = page.find("# HELP obs_zz_total");
  const std::size_t op_a = page.find("obs_aa_total{op=\"a\"} 2\n");
  const std::size_t op_z = page.find("obs_aa_total{op=\"z\"} 3\n");
  ASSERT_NE(family_a, std::string::npos);
  ASSERT_NE(family_z, std::string::npos);
  ASSERT_NE(op_a, std::string::npos);
  ASSERT_NE(op_z, std::string::npos);
  EXPECT_LT(family_a, family_z);
  EXPECT_LT(op_a, op_z);
  // Byte-identical across scrapes: nothing in the render depends on
  // registration order or wall time.
  EXPECT_EQ(page, registry.to_prometheus());
}

TEST(MetricsRegistry, MergedRegistriesUnifySameNameDisjointLabels) {
  MetricsRegistry first;
  MetricsRegistry second;
  first.counter("obs_shared_total", "Shared counter", {{"site", "a"}}).inc(1);
  second.counter("obs_shared_total", "", {{"site", "b"}}).inc(2);
  const std::string page = to_prometheus({&first, &second});
  // One family header (first non-empty help wins), then both instances as
  // sorted sample lines — not two families or a dropped instance.
  EXPECT_NE(page.find("# HELP obs_shared_total Shared counter\n"), std::string::npos);
  EXPECT_EQ(page.find("(undocumented)"), std::string::npos);
  const std::size_t site_a = page.find("obs_shared_total{site=\"a\"} 1\n");
  const std::size_t site_b = page.find("obs_shared_total{site=\"b\"} 2\n");
  ASSERT_NE(site_a, std::string::npos);
  ASSERT_NE(site_b, std::string::npos);
  EXPECT_LT(site_a, site_b);
  // Exactly one TYPE line for the family.
  const std::size_t type_first = page.find("# TYPE obs_shared_total counter\n");
  ASSERT_NE(type_first, std::string::npos);
  EXPECT_EQ(page.find("# TYPE obs_shared_total", type_first + 1), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace context propagation
// ---------------------------------------------------------------------------

TEST(TraceContext, ScopesNestAndRestore) {
  EXPECT_EQ(current_trace_id(), 0u);
  {
    TraceContext outer(0x1234);
    EXPECT_EQ(current_trace_id(), 0x1234u);
    {
      TraceContext inner(0x5678);
      EXPECT_EQ(current_trace_id(), 0x5678u);
    }
    EXPECT_EQ(current_trace_id(), 0x1234u);
  }
  EXPECT_EQ(current_trace_id(), 0u);
}

TEST(TraceContext, GeneratedIdsAreNonZeroAndDistinct) {
  const std::uint64_t a = next_trace_id();
  const std::uint64_t b = next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceContext, HexRoundTripAndRejection) {
  const std::uint64_t id = 0x0123456789abcdefULL;
  EXPECT_EQ(trace_hex(id), "0123456789abcdef");
  std::uint64_t parsed = 0;
  ASSERT_TRUE(parse_trace_hex("0123456789abcdef", &parsed));
  EXPECT_EQ(parsed, id);
  ASSERT_TRUE(parse_trace_hex("FF", &parsed));  // short + uppercase accepted
  EXPECT_EQ(parsed, 0xffu);
  EXPECT_FALSE(parse_trace_hex("", &parsed));
  EXPECT_FALSE(parse_trace_hex("0123456789abcdef0", &parsed));  // 17 digits
  EXPECT_FALSE(parse_trace_hex("xyz", &parsed));
  EXPECT_FALSE(parse_trace_hex("12 34", &parsed));
}

TEST(TraceContext, SpansInheritTheAmbientTraceId) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  {
    TraceContext scope(0xabcdef);
    Span span("obs.test.traced");
  }
  { Span span("obs.test.untraced"); }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace, 0xabcdefu);
  EXPECT_EQ(records[1].trace, 0u);
  const std::string chrome = tracer.chrome_trace();
  EXPECT_NE(chrome.find("0000000000abcdef"), std::string::npos);
  tracer.clear();
}

TEST(TraceContext, AmbientTraceRidesLogLines) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  {
    TraceContext scope(0xbeef);
    log_warn("obs_test", "inside context");
    log_warn("obs_test", "explicit wins", {{"trace", "custom"}});
  }
  log_warn("obs_test", "outside context");
  ASSERT_EQ(capture.lines().size(), 3u);
  EXPECT_NE(capture.lines()[0].find("trace=000000000000beef"), std::string::npos);
  EXPECT_NE(capture.lines()[1].find("trace=custom"), std::string::npos);
  EXPECT_EQ(capture.lines()[1].find("000000000000beef"), std::string::npos);
  EXPECT_EQ(capture.lines()[2].find("trace="), std::string::npos);
}

TEST(TraceContext, CrossThreadSpansKeepPerThreadNestingAndDeterministicExport) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      // Each worker runs under its own trace context; nesting depth is
      // thread-local, so concurrent workers must not see each other's
      // depth.
      TraceContext scope(static_cast<std::uint64_t>(t) + 1);
      Span outer("obs.test.pool.outer");
      Span inner("obs.test.pool.inner");
    });
  }
  for (auto& thread : pool) thread.join();
  tracer.set_enabled(false);
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u * kThreads);
  std::uint64_t inner_seen = 0;
  for (const SpanRecord& record : records) {
    ASSERT_GE(record.trace, 1u);
    ASSERT_LE(record.trace, static_cast<std::uint64_t>(kThreads));
    if (record.name == "obs.test.pool.inner") {
      EXPECT_EQ(record.depth, 1u);
      ++inner_seen;
    } else {
      EXPECT_EQ(record.depth, 0u);
    }
  }
  EXPECT_EQ(inner_seen, static_cast<std::uint64_t>(kThreads));
  // The export is a pure function of the recorded spans: two renders of
  // the same session are byte-identical, worker interleaving and all.
  const std::string once = tracer.chrome_trace();
  const std::string twice = tracer.chrome_trace();
  EXPECT_EQ(once, twice);
  EXPECT_NO_THROW(json::parse(once));
  tracer.clear();
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

FlightRecord make_record(std::uint64_t trace_id, const char* verb = "!gas") {
  FlightRecord record;
  record.trace_id = trace_id;
  std::snprintf(record.verb, sizeof(record.verb), "%s", verb);
  record.end_us = trace_id * 10;
  record.generation = 2;
  record.queue_us = 3;
  record.eval_us = 40;
  record.total_us = 43;
  record.bytes = 100;
  record.cache = 'm';
  record.outcome = 'A';
  return record;
}

TEST(FlightRecorder, ZeroCapacityIsDisabled) {
  FlightRecorder recorder(0);
  EXPECT_FALSE(recorder.enabled());
  recorder.record(make_record(1));  // must be a safe no-op
  EXPECT_EQ(recorder.total(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorder, RingWrapsOldestFirstAndCountsDrops) {
  FlightRecorder recorder(4);
  ASSERT_EQ(recorder.capacity(), 4u);
  for (std::uint64_t i = 1; i <= 10; ++i) recorder.record(make_record(i));
  EXPECT_EQ(recorder.total(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const std::vector<FlightRecord> records = recorder.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest surviving record first; ids 1..6 were overwritten.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].trace_id, 7 + i);
  }
  EXPECT_FALSE(recorder.find(9).empty());
  EXPECT_TRUE(recorder.find(3).empty());  // overwritten
}

TEST(FlightRecorder, SlowLogSurvivesRingWraparound) {
  FlightRecorder recorder(4);
  FlightRecord slow = make_record(42, "!slowq");
  slow.total_us = 50000;
  recorder.record(slow);
  recorder.note_slow(slow);
  for (std::uint64_t i = 100; i < 120; ++i) recorder.record(make_record(i));
  EXPECT_FALSE(recorder.find(42).empty());  // served from the slow log
  const std::vector<FlightRecord> kept = recorder.slow_snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].trace_id, 42u);
  EXPECT_EQ(kept[0].total_us, 50000u);
}

TEST(FlightRecorder, FormatRendersEveryField) {
  const std::string line = format_flight_record(make_record(0xab, "!trace"));
  EXPECT_NE(line.find("trace=00000000000000ab"), std::string::npos);
  EXPECT_NE(line.find("verb=!trace"), std::string::npos);
  EXPECT_NE(line.find("outcome=A"), std::string::npos);
  EXPECT_NE(line.find("cache=m"), std::string::npos);
  EXPECT_NE(line.find("queue-us=3"), std::string::npos);
  EXPECT_NE(line.find("eval-us=40"), std::string::npos);
  EXPECT_NE(line.find("total-us=43"), std::string::npos);
}

TEST(FlightRecorder, ConcurrentWritersAndReadersStayCoherent) {
  // Exercised under TSan by scripts/sanitize_check.sh: racing writers and a
  // snapshotting reader must be data-race-free (every slot access is an
  // atomic word), and every record a snapshot returns must be internally
  // consistent — the seqlock discards torn reads rather than surfacing
  // them.
  FlightRecorder recorder(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightRecord& record : recorder.snapshot()) {
        // Writers always store total_us == trace_id % 1000 + queue_us; a
        // torn record would violate it.
        if (record.total_us != record.trace_id % 1000 + record.queue_us) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(w) * kPerWriter + i + 1;
        FlightRecord record = make_record(id);
        record.queue_us = static_cast<std::uint32_t>(w);
        record.total_us = static_cast<std::uint32_t>(id % 1000 + record.queue_us);
        recorder.record(record);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  EXPECT_EQ(recorder.total(), static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(recorder.snapshot().size(), recorder.capacity());
}

}  // namespace
}  // namespace rpslyzer::obs
