#include "rpslyzer/aspath/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rpslyzer/rpsl/expr_parser.hpp"

namespace rpslyzer::aspath {
namespace {

using ir::AsPathRegex;

/// Membership backed by a literal map for tests.
class MapMembership : public AsSetMembership {
 public:
  MapMembership(std::map<std::string, std::set<Asn>> sets) : sets_(std::move(sets)) {}

  bool contains(std::string_view as_set, Asn asn) const override {
    auto it = sets_.find(std::string(as_set));
    return it != sets_.end() && it->second.contains(asn);
  }
  bool is_known(std::string_view as_set) const override {
    return sets_.contains(std::string(as_set));
  }

 private:
  std::map<std::string, std::set<Asn>> sets_;
};

AsPathRegex regex(std::string_view text) {
  util::Diagnostics diag;
  rpsl::ParseContext ctx{&diag, "test", "TEST", 1};
  auto parsed = rpsl::parse_aspath_regex(text, ctx);
  EXPECT_TRUE(parsed) << text;
  EXPECT_TRUE(diag.empty()) << text;
  return std::move(*parsed);
}

const MapMembership kMembership({
    {"AS-FOO", {64500, 64501}},
    {"AS-BAR", {64502}},
});

RegexMatch all_engines(std::string_view regex_text, std::vector<Asn> path, Asn peer = 0) {
  AsPathRegex re = regex(regex_text);
  MatchEnv env{path, peer, &kMembership};
  RegexMatch nfa = match_nfa(re, env);
  RegexMatch bt = match_backtrack(re, env);
  RegexMatch sym = match_symbolic(re, env);
  // The three engines must agree whenever each supports the construct.
  if (nfa != RegexMatch::kUnsupported) EXPECT_EQ(nfa, bt) << regex_text;
  if (sym != RegexMatch::kUnsupported && nfa != RegexMatch::kUnsupported) {
    EXPECT_EQ(nfa, sym) << regex_text;
  }
  return bt;
}

TEST(AsPathEngine, SingleAsnSearch) {
  EXPECT_EQ(all_engines("AS64500", {64500}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("AS64500", {1, 64500, 2}), RegexMatch::kMatch);  // substring
  EXPECT_EQ(all_engines("AS64500", {64501}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("AS64500", {}), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, Anchors) {
  // The paper's example: received from AS13911, originated by AS6327.
  EXPECT_EQ(all_engines("^AS13911 AS6327+$", {13911, 6327}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS13911 AS6327+$", {13911, 6327, 6327}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS13911 AS6327+$", {13911, 1, 6327}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^AS13911 AS6327+$", {1, 13911, 6327}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^AS13911 AS6327+$", {13911}), RegexMatch::kNoMatch);
  // End anchor alone.
  EXPECT_EQ(all_engines("AS6327$", {1, 6327}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("AS6327$", {6327, 1}), RegexMatch::kNoMatch);
  // Begin anchor alone.
  EXPECT_EQ(all_engines("^AS1", {1, 2}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS1", {2, 1}), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, EmptyRegexMatchesEverything) {
  EXPECT_EQ(all_engines("", {}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("", {1, 2, 3}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^$", {}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^$", {1}), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, Wildcard) {
  EXPECT_EQ(all_engines("^. AS2$", {7, 2}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^. AS2$", {2}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^.* AS2$", {1, 5, 9, 2}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^.+ AS2$", {2}), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, Alternation) {
  EXPECT_EQ(all_engines("^(AS1|AS2)$", {1}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^(AS1|AS2)$", {2}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^(AS1|AS2)$", {3}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^(AS1 AS2|AS3)$", {1, 2}), RegexMatch::kMatch);
}

TEST(AsPathEngine, RepetitionCounts) {
  EXPECT_EQ(all_engines("^AS1{2}$", {1, 1}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS1{2}$", {1}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^AS1{2}$", {1, 1, 1}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^AS1{1,2}$", {1, 1}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS1{1,2}$", {1, 1, 1}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^AS1{2,}$", {1, 1, 1}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS1{2,}$", {1}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^AS1?$", {}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS1?$", {1}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS1?$", {1, 1}), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, AsSetTokens) {
  EXPECT_EQ(all_engines("^AS-FOO+$", {64500, 64501}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^AS-FOO+$", {64500, 64502}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^AS-FOO AS-BAR$", {64501, 64502}), RegexMatch::kMatch);
  // Unknown sets are empty for matching purposes.
  EXPECT_EQ(all_engines("^AS-UNKNOWN$", {64500}), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, PeerAs) {
  EXPECT_EQ(all_engines("^PeerAS+$", {9, 9}, 9), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^PeerAS+$", {9, 8}, 9), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^PeerAS+$", {9}, 8), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, CharacterClassSets) {
  EXPECT_EQ(all_engines("^[AS1 AS3]$", {1}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^[AS1 AS3]$", {3}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^[AS1 AS3]$", {2}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^[AS-FOO]$", {64501}), RegexMatch::kMatch);
  // Complemented set.
  EXPECT_EQ(all_engines("^[^AS1 AS2]$", {3}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^[^AS1 AS2]$", {1}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^[^AS-FOO]+$", {1, 2}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^[^AS-FOO]+$", {1, 64500}), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, AsnRangesInSets) {
  // ASN ranges: the paper's tool skips them; ours evaluates them (the
  // verifier decides whether to mirror the skip).
  EXPECT_EQ(all_engines("^[AS64512-AS65535]+$", {64512, 65000}), RegexMatch::kMatch);
  EXPECT_EQ(all_engines("^[AS64512-AS65535]+$", {64000}), RegexMatch::kNoMatch);
  EXPECT_EQ(all_engines("^[^AS64512-AS65535]$", {64000}), RegexMatch::kMatch);
}

TEST(AsPathEngine, SamePatternOperators) {
  AsPathRegex re = regex("AS-FOO~+");
  // NFA and symbolic engines refuse; backtracking evaluates.
  std::vector<Asn> same{64500, 64500};
  MatchEnv env{same, 0, &kMembership};
  EXPECT_EQ(match_nfa(re, env), RegexMatch::kUnsupported);
  EXPECT_EQ(match_symbolic(re, env), RegexMatch::kUnsupported);
  EXPECT_EQ(match_backtrack(re, env), RegexMatch::kMatch);

  // All repeated ASes must be identical.
  std::vector<Asn> mixed{64500, 64501};
  MatchEnv env_mixed{mixed, 0, &kMembership};
  EXPECT_EQ(match_backtrack(regex("^AS-FOO~+$"), env_mixed), RegexMatch::kNoMatch);
  std::vector<Asn> both_same{64501, 64501};
  MatchEnv env_same{both_same, 0, &kMembership};
  EXPECT_EQ(match_backtrack(regex("^AS-FOO~+$"), env_same), RegexMatch::kMatch);
  // ~* allows the empty sequence.
  std::vector<Asn> empty;
  MatchEnv env_empty{empty, 0, &kMembership};
  EXPECT_EQ(match_backtrack(regex("^AS-FOO~*$"), env_empty), RegexMatch::kMatch);
}

TEST(AsPathEngine, PrivateAsnFilterShape) {
  // The typical in-the-wild use: drop paths containing private ASNs.
  AsPathRegex re = regex("^[^AS64512-AS65535]*$");
  std::vector<Asn> clean{3257, 1299, 6939};
  std::vector<Asn> leaky{3257, 64512, 6939};
  MatchEnv env_clean{clean, 0, nullptr};
  MatchEnv env_leaky{leaky, 0, nullptr};
  EXPECT_EQ(match_nfa(re, env_clean), RegexMatch::kMatch);
  EXPECT_EQ(match_nfa(re, env_leaky), RegexMatch::kNoMatch);
}

TEST(AsPathEngine, HugeRepeatIsUnsupported) {
  AsPathRegex re = regex("AS1{1000}");
  std::vector<Asn> path{1};
  MatchEnv env{path, 0, nullptr};
  EXPECT_EQ(match_nfa(re, env), RegexMatch::kUnsupported);
}

TEST(AsPathEngine, SymbolicBudgetExhaustion) {
  // Many tokens × long path exceeds the symbol-string budget.
  AsPathRegex re = regex("(. . . . . . . . . .)+");
  std::vector<Asn> path(40, 7);
  MatchEnv env{path, 0, nullptr};
  EXPECT_EQ(match_symbolic(re, env, 1000), RegexMatch::kUnsupported);
  // The NFA engine handles it fine.
  EXPECT_EQ(match_nfa(re, env), RegexMatch::kMatch);
}

// Engine-equivalence sweep over a grid of regexes and paths (property-style).
class EngineEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineEquivalence, EnginesAgree) {
  AsPathRegex re = regex(GetParam());
  const std::vector<std::vector<Asn>> paths = {
      {},
      {1},
      {2},
      {64500},
      {1, 2},
      {2, 1},
      {1, 1},
      {1, 2, 3},
      {3, 2, 1},
      {64500, 64501, 64502},
      {1, 64500, 2},
      {9, 9, 9},
      {1, 2, 1, 2},
      {5, 4, 3, 2, 1},
  };
  for (const auto& path : paths) {
    MatchEnv env{path, 9, &kMembership};
    RegexMatch nfa = match_nfa(re, env);
    RegexMatch bt = match_backtrack(re, env);
    RegexMatch sym = match_symbolic(re, env);
    ASSERT_NE(bt, RegexMatch::kUnsupported);
    if (nfa != RegexMatch::kUnsupported) {
      EXPECT_EQ(nfa, bt) << GetParam() << " on path size " << path.size();
    }
    if (sym != RegexMatch::kUnsupported) {
      EXPECT_EQ(sym, bt) << GetParam() << " on path size " << path.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineEquivalence,
    ::testing::Values("AS1", "^AS1", "AS1$", "^AS1$", "AS1 AS2", "AS1|AS2", "^(AS1|AS2)+$",
                      ".", ".*", ".+", "^.*$", "AS1*", "AS1+", "AS1?", "^AS1{2}$",
                      "^AS1{1,3}$", "^AS1{2,}$", "[AS1 AS2]", "[^AS1 AS2]", "^[AS1 AS2]+$",
                      "^[^AS3]*$", "AS-FOO", "^AS-FOO+$", "[AS-FOO AS3]", "^[^AS-FOO]+$",
                      "PeerAS", "^PeerAS", "^(AS1 AS2)+$", "^(AS1|AS2|AS3){1,2}$",
                      "^.* AS1 .*$", "(AS1 AS2)|(AS2 AS1)", "^(. AS2)+$"));

}  // namespace
}  // namespace rpslyzer::aspath
