#include "rpslyzer/relations/relations.hpp"

#include <gtest/gtest.h>

namespace rpslyzer::relations {
namespace {

TEST(Relations, ParseSerial1) {
  util::Diagnostics diag;
  AsRelations rel = AsRelations::parse(
      "# comment\n"
      "1|2|-1\n"
      "2|3|-1\n"
      "1|4|0\n",
      diag);
  EXPECT_TRUE(diag.empty());
  EXPECT_EQ(rel.link_count(), 3u);
  EXPECT_EQ(rel.between(1, 2), Relationship::kProvider);
  EXPECT_EQ(rel.between(2, 1), Relationship::kCustomer);
  EXPECT_EQ(rel.between(1, 4), Relationship::kPeer);
  EXPECT_EQ(rel.between(4, 1), Relationship::kPeer);
  EXPECT_EQ(rel.between(1, 3), Relationship::kNone);
  EXPECT_TRUE(rel.is_provider_of(1, 2));
  EXPECT_TRUE(rel.is_customer_of(3, 2));
  EXPECT_TRUE(rel.are_peers(1, 4));
}

TEST(Relations, ParseCliqueComment) {
  util::Diagnostics diag;
  AsRelations rel = AsRelations::parse(
      "# inferred clique: 10 20 30\n"
      "10|1|-1\n10|20|0\n",
      diag);
  EXPECT_TRUE(rel.is_tier1(10));
  EXPECT_TRUE(rel.is_tier1(30));
  EXPECT_FALSE(rel.is_tier1(1));
  EXPECT_EQ(rel.tier1().size(), 3u);
}

TEST(Relations, MalformedLinesDiagnosed) {
  util::Diagnostics diag;
  AsRelations rel = AsRelations::parse("1|2\nx|y|-1\n1|2|7\n1|2|-1\n", diag);
  EXPECT_EQ(diag.all().size(), 3u);
  EXPECT_EQ(rel.link_count(), 1u);
}

TEST(Relations, CustomerCone) {
  util::Diagnostics diag;
  AsRelations rel = AsRelations::parse(
      "1|2|-1\n1|3|-1\n2|4|-1\n3|4|-1\n4|5|-1\n9|9|0\n", diag);
  EXPECT_EQ(rel.customer_cone(1), (std::vector<Asn>{2, 3, 4, 5}));
  EXPECT_EQ(rel.customer_cone(2), (std::vector<Asn>{4, 5}));
  EXPECT_TRUE(rel.customer_cone(5).empty());
}

TEST(Relations, CustomerConeHandlesCycles) {
  // Inference artifacts can produce p2c cycles; the cone must terminate.
  AsRelations rel;
  rel.add_provider_customer(1, 2);
  rel.add_provider_customer(2, 1);
  EXPECT_EQ(rel.customer_cone(1), (std::vector<Asn>{2}));
}

TEST(Relations, Tier1Inference) {
  // 10, 20, 30 form a provider-free peering clique; 40 is provider-free but
  // only peers with 10.
  AsRelations rel;
  rel.add_peer_peer(10, 20);
  rel.add_peer_peer(10, 30);
  rel.add_peer_peer(20, 30);
  rel.add_peer_peer(40, 10);
  rel.add_provider_customer(10, 1);
  rel.add_provider_customer(20, 2);
  const auto& clique = rel.tier1();
  EXPECT_EQ(clique, (std::vector<Asn>{10, 20, 30}));
  EXPECT_FALSE(rel.is_tier1(40));
}

TEST(Relations, Tier1ExcludesAsesWithProviders) {
  AsRelations rel;
  rel.add_peer_peer(10, 20);
  rel.add_provider_customer(99, 10);  // 10 buys transit: not Tier-1
  EXPECT_FALSE(rel.is_tier1(10));
}

TEST(Relations, DuplicateLinksIgnored) {
  AsRelations rel;
  rel.add_provider_customer(1, 2);
  rel.add_provider_customer(1, 2);
  rel.add_peer_peer(3, 4);
  rel.add_peer_peer(4, 3);
  EXPECT_EQ(rel.link_count(), 2u);
  EXPECT_EQ(rel.customers_of(1).size(), 1u);
  EXPECT_EQ(rel.peers_of(3).size(), 1u);
}

TEST(Relations, Serial1RoundTrip) {
  util::Diagnostics diag;
  AsRelations rel;
  rel.add_provider_customer(10, 1);
  rel.add_provider_customer(20, 2);
  rel.add_peer_peer(10, 20);
  std::string text = rel.to_serial1();
  AsRelations again = AsRelations::parse(text, diag);
  EXPECT_TRUE(diag.empty());
  EXPECT_EQ(again.between(10, 1), Relationship::kProvider);
  EXPECT_EQ(again.between(10, 20), Relationship::kPeer);
  EXPECT_EQ(again.tier1(), rel.tier1());
  EXPECT_EQ(again.to_serial1(), text);
}

TEST(Relations, AllAses) {
  AsRelations rel;
  rel.add_provider_customer(5, 3);
  rel.add_peer_peer(7, 5);
  EXPECT_EQ(rel.all_ases(), (std::vector<Asn>{3, 5, 7}));
}

}  // namespace
}  // namespace rpslyzer::relations
