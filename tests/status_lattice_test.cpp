// Property sweep over §5's best-rule selection: when an aut-num holds any
// two rules from {strict-match, skip-class, unrecorded-reference,
// filter-mismatch, peering-mismatch}, the check's status must equal the
// better of the two under the paper's ordering
// (Verified ≻ Skip ≻ Unrecorded ≻ Relaxed ≻ Safelisted ≻ Unverified),
// regardless of declaration order.

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer::verify {
namespace {

/// One rule flavor and the status it alone would produce for the probe
/// route (peer AS1, prefix 10.0.0.0/8, origin well away from any filter).
struct Flavor {
  const char* name;
  const char* rule;  // import rule text for AS2
  Status alone;
};

const Flavor kFlavors[] = {
    {"match", "import: from AS1 accept ANY\n", Status::kVerified},
    {"skip", "import: from AS1 accept community(65535:666)\n", Status::kSkip},
    {"unrecorded", "import: from AS1 accept AS-GONE\n", Status::kUnrecorded},
    // Filter mismatch on a prefix set: no relaxation applies (the filter
    // names neither self, peer, nor origin), no safelist (no relationship
    // data) -> Unverified.
    {"filter_mismatch", "import: from AS1 accept {192.0.2.0/24}\n", Status::kUnverified},
    {"peering_mismatch", "import: from AS9 accept ANY\n", Status::kUnverified},
};

int rank(Status s) {
  switch (s) {
    case Status::kVerified:
      return 0;
    case Status::kSkip:
      return 1;
    case Status::kUnrecorded:
      return 2;
    case Status::kRelaxed:
      return 3;
    case Status::kSafelisted:
      return 4;
    case Status::kUnverified:
      return 5;
  }
  return 6;
}

Status check_with_rules(const std::string& rules) {
  util::Diagnostics diag;
  static std::vector<std::unique_ptr<ir::Ir>> keep;
  keep.push_back(
      std::make_unique<ir::Ir>(irr::parse_dump("aut-num: AS2\n" + rules, "TEST", diag)));
  static std::vector<std::unique_ptr<irr::Index>> indexes;
  indexes.push_back(std::make_unique<irr::Index>(*keep.back()));
  static relations::AsRelations no_relations;
  Verifier verifier(*indexes.back(), no_relations);
  bgp::Route route{*net::Prefix::parse("10.0.0.0/8"), {2, 1}};
  return verifier.verify_route(route)[0].import_result.status;
}

class LatticePairs
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(LatticePairs, BestRuleWins) {
  const auto [i, j] = GetParam();
  const Flavor& a = kFlavors[i];
  const Flavor& b = kFlavors[j];
  const Status expected = rank(a.alone) <= rank(b.alone) ? a.alone : b.alone;
  // Both declaration orders must agree.
  EXPECT_EQ(check_with_rules(std::string(a.rule) + b.rule), expected)
      << a.name << " + " << b.name;
  EXPECT_EQ(check_with_rules(std::string(b.rule) + a.rule), expected)
      << b.name << " + " << a.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, LatticePairs,
    ::testing::Combine(::testing::Range<std::size_t>(0, 5),
                       ::testing::Range<std::size_t>(0, 5)),
    [](const auto& info) {
      return std::string(kFlavors[std::get<0>(info.param)].name) + "_with_" +
             kFlavors[std::get<1>(info.param)].name;
    });

TEST(LatticeSingles, EachFlavorAloneProducesItsStatus) {
  for (const Flavor& f : kFlavors) {
    EXPECT_EQ(check_with_rules(f.rule), f.alone) << f.name;
  }
}

TEST(LatticeTriples, MatchAlwaysWins) {
  for (const Flavor& a : kFlavors) {
    for (const Flavor& b : kFlavors) {
      const std::string rules =
          std::string(a.rule) + b.rule + "import: from AS1 accept ANY\n";
      EXPECT_EQ(check_with_rules(rules), Status::kVerified) << a.name << "+" << b.name;
    }
  }
}

}  // namespace
}  // namespace rpslyzer::verify
