// Origin/edge snapshot replication. The pure half (backoff ladders,
// heartbeat jitter, announcement codec) is tested without a clock or a
// socket; the publisher half over its framed handler contract; and the
// integrated half with a real origin daemon and a real ReplicationClient,
// driving torn transfers and digest mismatches through the `repl.fetch` /
// `repl.verify` failpoints. Every failure path must leave the edge serving
// its last-good generation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <unistd.h>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/persist/arena.hpp"
#include "rpslyzer/persist/snapshot_io.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/repl/edge.hpp"
#include "rpslyzer/repl/protocol.hpp"
#include "rpslyzer/repl/publisher.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/server/client.hpp"
#include "rpslyzer/server/server.hpp"
#include "rpslyzer/synth/generator.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer {
namespace {

namespace fp = util::failpoint;
using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// Pure protocol math (mirrors the reload_backoff suite)
// ---------------------------------------------------------------------------

TEST(ReconnectBackoff, IsDeterministicCappedAndJittered) {
  const milliseconds initial(100);
  const milliseconds cap(2000);
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    const auto a = repl::reconnect_backoff(attempt, initial, cap, 42);
    const auto b = repl::reconnect_backoff(attempt, initial, cap, 42);
    EXPECT_EQ(a, b) << "same inputs must give the same delay";
    EXPECT_GE(a, milliseconds(1));
    EXPECT_LE(a, cap);
    // Jitter stays within [0.75, 1.25] of the capped exponential step.
    const std::int64_t base =
        std::min<std::int64_t>(cap.count(), initial.count() << std::min(attempt, 20u));
    EXPECT_GE(a.count(), base * 3 / 4);
    EXPECT_LE(a.count(), base * 5 / 4);
  }
  // Different seeds decorrelate the schedule.
  bool any_difference = false;
  for (std::uint64_t seed = 0; seed < 16 && !any_difference; ++seed) {
    any_difference = repl::reconnect_backoff(3, initial, cap, seed) !=
                     repl::reconnect_backoff(3, initial, cap, seed + 1);
  }
  EXPECT_TRUE(any_difference);
  // Degenerate knobs are clamped, never UB or zero.
  EXPECT_GE(repl::reconnect_backoff(50, milliseconds(0), milliseconds(0), 7).count(), 1);
}

TEST(ReconnectBackoff, DoesNotPhaseLockWithReloadBackoff) {
  // An edge daemon runs both ladders off the same seed (its generation or
  // id hash); they must not produce identical schedules.
  const milliseconds initial(100);
  const milliseconds cap(60000);
  bool any_difference = false;
  for (unsigned attempt = 0; attempt < 8 && !any_difference; ++attempt) {
    any_difference = repl::reconnect_backoff(attempt, initial, cap, 42) !=
                     server::reload_backoff(attempt, initial, cap, 42);
  }
  EXPECT_TRUE(any_difference);
}

TEST(HeartbeatInterval, JitterStaysInBoundsAndVariesByTick) {
  const milliseconds base(1000);
  bool any_difference = false;
  for (std::uint64_t tick = 0; tick < 32; ++tick) {
    const auto a = repl::heartbeat_interval(base, 7, tick);
    EXPECT_EQ(a, repl::heartbeat_interval(base, 7, tick)) << "deterministic in (seed, tick)";
    EXPECT_GE(a.count(), 800);
    EXPECT_LE(a.count(), 1200);
    any_difference = any_difference || a != repl::heartbeat_interval(base, 7, tick + 1);
  }
  EXPECT_TRUE(any_difference) << "jitter must actually jitter";
  // Fleet hygiene: two edges with different seeds drift apart.
  bool seeds_differ = false;
  for (std::uint64_t tick = 0; tick < 16 && !seeds_differ; ++tick) {
    seeds_differ =
        repl::heartbeat_interval(base, 1, tick) != repl::heartbeat_interval(base, 2, tick);
  }
  EXPECT_TRUE(seeds_differ);
  EXPECT_GE(repl::heartbeat_interval(milliseconds(0), 3, 0).count(), 1);
}

TEST(ReplProtocol, Hex64RoundTripAndRejection) {
  for (const std::uint64_t v : {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
    const std::string h = repl::hex64(v);
    EXPECT_EQ(h.size(), 16u);
    const auto parsed = repl::parse_hex64(h);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(repl::parse_hex64("abc"));                 // wrong width
  EXPECT_FALSE(repl::parse_hex64("00000000000000zz"));    // bad digit
  EXPECT_FALSE(repl::parse_hex64("00000000000000AB"));    // uppercase refused
  EXPECT_FALSE(repl::parse_hex64("0000000000000000 "));   // wrong width again
}

TEST(ReplProtocol, InfoRoundTripAndGarbledAnnouncementsRefused) {
  repl::GenerationInfo info;
  info.gen = 42;
  info.build_id = 7;
  info.checksum = 0x1111222233334444ull;
  info.digest = 0x5555666677778888ull;
  info.size = 290640;
  info.chunk_bytes = 262144;

  const std::string payload = repl::render_info(info);
  const auto parsed = repl::parse_info(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->gen, info.gen);
  EXPECT_EQ(parsed->build_id, info.build_id);
  EXPECT_EQ(parsed->checksum, info.checksum);
  EXPECT_EQ(parsed->digest, info.digest);
  EXPECT_EQ(parsed->size, info.size);
  EXPECT_EQ(parsed->chunk_bytes, info.chunk_bytes);
  EXPECT_TRUE(parsed->same_content(info));

  // Unknown keys are forward-compatible noise.
  EXPECT_TRUE(repl::parse_info(payload + "future-key: whatever\n").has_value());
  // A half-garbled announcement can never start a transfer.
  EXPECT_FALSE(repl::parse_info(""));
  EXPECT_FALSE(repl::parse_info("gen: 42\n"));                          // missing fields
  EXPECT_FALSE(repl::parse_info(payload + "gen: 43\n"));                // duplicate key
  std::string bad = payload;
  bad.replace(bad.find("size: 290640"), 12, "size: 29064x");            // bad digit
  EXPECT_FALSE(repl::parse_info(bad));
  std::string zero = payload;
  zero.replace(zero.find("gen: 42"), 7, "gen: 0");                      // gen 0 reserved
  EXPECT_FALSE(repl::parse_info(zero));
}

// ---------------------------------------------------------------------------
// Shared tiny corpus
// ---------------------------------------------------------------------------

struct Corpus {
  std::shared_ptr<Rpslyzer> lyzer;
  std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot;

  explicit Corpus(std::uint32_t seed = 33) {
    synth::SynthConfig config;
    config.seed = seed;
    config.tier1_count = 3;
    config.tier2_count = 6;
    config.tier3_count = 15;
    config.stub_count = 60;
    config.collectors = 2;
    synth::InternetGenerator generator(config);
    std::vector<std::pair<std::string, std::string>> ordered;
    for (const auto& name : synth::irr_names()) {
      ordered.emplace_back(name, generator.irr_dumps().at(name));
    }
    lyzer = std::make_shared<Rpslyzer>(
        Rpslyzer::from_texts(ordered, generator.caida_serial1()));
    snapshot = lyzer->snapshot();
  }
};

Corpus& corpus() {
  static Corpus c;
  return c;
}

// ---------------------------------------------------------------------------
// Publisher handler contract (no sockets)
// ---------------------------------------------------------------------------

TEST(Publisher, AnnouncesNothingBeforeFirstPublish) {
  repl::Publisher pub;
  EXPECT_EQ(pub.handle(".info"), "D\n");
  EXPECT_EQ(pub.handle(".fetch 1 0 100"), "F nothing published yet\n");
  EXPECT_EQ(pub.current_info().gen, 0u);
  EXPECT_NE(pub.handle("").find("role: origin"), std::string::npos);
}

TEST(Publisher, DeduplicatesIdenticalContentByChecksum) {
  repl::Publisher pub;
  EXPECT_EQ(pub.publish(*corpus().snapshot), 1u);
  // Same content again (even via a different snapshot object with a fresh
  // build id, as a reload of unchanged dumps would produce): same gen.
  Corpus again(33);
  EXPECT_EQ(pub.publish(*again.snapshot), 1u);
  EXPECT_EQ(pub.current_info().gen, 1u);
  // Different content bumps the generation.
  Corpus changed(34);
  EXPECT_EQ(pub.publish(*changed.snapshot), 2u);
}

TEST(Publisher, ChunkedFetchReassemblesToTheExactImage) {
  repl::Publisher pub(8192);
  pub.publish(*corpus().snapshot);
  const repl::GenerationInfo info = pub.current_info();
  ASSERT_GT(info.size, info.chunk_bytes) << "corpus must need several chunks";

  std::string image;
  std::uint64_t offset = 0;
  while (offset < info.size) {
    const std::uint64_t len = std::min<std::uint64_t>(info.chunk_bytes, info.size - offset);
    const std::string resp = pub.handle(".fetch " + std::to_string(info.gen) + " " +
                                        std::to_string(offset) + " " + std::to_string(len));
    ASSERT_EQ(resp.front(), 'A') << resp;
    const std::size_t nl = resp.find('\n');
    ASSERT_NE(nl, std::string::npos);
    ASSERT_EQ(resp.substr(1, nl - 1), std::to_string(len)) << "exact chunk length";
    ASSERT_EQ(resp.substr(resp.size() - 2), "C\n");
    image += resp.substr(nl + 1, resp.size() - nl - 3);
    offset += len;
  }
  ASSERT_EQ(image.size(), info.size);
  EXPECT_EQ(persist::digest64(std::string_view(image)), info.digest);
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, image.data() + persist::kChecksumOffset, sizeof(checksum));
  EXPECT_EQ(checksum, info.checksum) << "announced checksum is the header field";
}

TEST(Publisher, RefusesBadRangesWrongGenerationsAndMalformedVerbs) {
  repl::Publisher pub(8192);
  pub.publish(*corpus().snapshot);
  const repl::GenerationInfo info = pub.current_info();
  const std::string gen = std::to_string(info.gen);
  EXPECT_EQ(pub.handle(".fetch " + gen + " 0 0"), "F bad range\n");
  EXPECT_EQ(pub.handle(".fetch " + gen + " " + std::to_string(info.size) + " 1"),
            "F bad range\n");
  EXPECT_EQ(pub.handle(".fetch " + gen + " 0 " + std::to_string(info.chunk_bytes + 1)),
            "F bad range\n") << "a chunk larger than announced is refused";
  EXPECT_EQ(pub.handle(".fetch 99 0 100"), "F generation 99 is not current\n");
  EXPECT_EQ(pub.handle(".fetch 1 0"), "F fetch expects <gen> <offset> <length>\n");
  EXPECT_EQ(pub.handle(".fetch a b c"), "F fetch expects numeric <gen> <offset> <length>\n");
  EXPECT_EQ(pub.handle(".nonsense"), "F unknown repl verb\n");
  EXPECT_EQ(pub.handle(".beat e1 notanumber healthy 1.0"),
            "F beat expects a numeric generation\n");
}

TEST(Publisher, HeartbeatsPopulateTheFleetTable) {
  repl::Publisher pub;
  pub.publish(*corpus().snapshot);
  EXPECT_EQ(pub.handle(".beat edge-a 1 healthy 12.5"), "C\n");
  EXPECT_EQ(pub.handle(".beat edge-b 1 degraded 0.0"), "C\n");
  EXPECT_EQ(pub.handle(".beat edge-a 1 healthy 14.0"), "C\n");  // update, not dup
  const std::string page = pub.handle("");
  EXPECT_NE(page.find("edges: 2"), std::string::npos) << page;
  EXPECT_NE(page.find("edge: edge-a gen=1 health=healthy qps=14.0"), std::string::npos)
      << page;
  EXPECT_NE(page.find("edge: edge-b gen=1 health=degraded"), std::string::npos) << page;
  EXPECT_NE(pub.stats_line().find("role=origin gen=1 edges=2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Heartbeat metric digests + fleet aggregation (PR 8)
// ---------------------------------------------------------------------------

repl::MetricDigest test_digest(std::uint64_t queries, std::uint64_t hits,
                               std::uint64_t misses,
                               std::vector<std::uint64_t> buckets) {
  repl::MetricDigest digest;
  digest.queries_total = queries;
  digest.cache_hits = hits;
  digest.cache_misses = misses;
  digest.recorder_drops = 2;
  digest.heartbeat_ms = 100;
  digest.latency_sum_micros = queries * 50;
  digest.latency_buckets = std::move(buckets);
  for (const std::uint64_t count : digest.latency_buckets) {
    digest.latency_count += count;
  }
  return digest;
}

TEST(ReplProtocol, DigestRoundTripAndGarbledTokensRefused) {
  const repl::MetricDigest digest = test_digest(100, 60, 40, {90, 9, 1});
  const std::string token = repl::render_digest(digest);
  EXPECT_EQ(token.find(' '), std::string::npos) << "must survive split_fields";
  const auto parsed = repl::parse_digest(token);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->queries_total, 100u);
  EXPECT_EQ(parsed->cache_hits, 60u);
  EXPECT_EQ(parsed->cache_misses, 40u);
  EXPECT_EQ(parsed->recorder_drops, 2u);
  EXPECT_EQ(parsed->heartbeat_ms, 100u);
  EXPECT_EQ(parsed->latency_count, 100u);
  EXPECT_EQ(parsed->latency_sum_micros, 5000u);
  EXPECT_EQ(parsed->latency_buckets, (std::vector<std::uint64_t>{90, 9, 1}));

  // Unknown keys are forward-compatible noise; `lb` is optional.
  EXPECT_TRUE(repl::parse_digest(token + ";zz=5").has_value());
  EXPECT_TRUE(
      repl::parse_digest("v1;qt=1;ch=1;cm=0;rd=0;hb=50;lc=1;ls=9").has_value());

  // A garbled digest refuses the whole token.
  EXPECT_FALSE(repl::parse_digest(""));
  EXPECT_FALSE(repl::parse_digest("v2;qt=1;ch=1;cm=0;rd=0;hb=50;lc=1;ls=9"));
  EXPECT_FALSE(repl::parse_digest("v1;qt=1;ch=1;cm=0;rd=0;hb=50;lc=1"));  // ls missing
  EXPECT_FALSE(repl::parse_digest(token + ";qt=7"));                      // duplicate
  EXPECT_FALSE(repl::parse_digest("v1;qt=bogus;ch=1;cm=0;rd=0;hb=50;lc=1;ls=9"));
  EXPECT_FALSE(repl::parse_digest("v1;qt=1;ch=1;cm=0;rd=0;hb=50;lc=1;ls=9;lb=1:x"));
}

TEST(Publisher, BeatDigestsFeedFleetAggregation) {
  repl::Publisher pub;
  pub.publish(*corpus().snapshot);
  pub.set_latency_bounds({0.001, 0.01});  // 2 bounds → 3 buckets incl. +Inf

  const repl::MetricDigest da = test_digest(100, 60, 40, {90, 9, 1});
  const repl::MetricDigest db = test_digest(50, 30, 20, {40, 9, 1});
  EXPECT_EQ(pub.handle(".beat edge-a 1 healthy 12.5 " + repl::render_digest(da)),
            "C\n");
  EXPECT_EQ(pub.handle(".beat edge-b 1 healthy 4.5 " + repl::render_digest(db)),
            "C\n");
  // A garbled digest refuses the beat and must not register the edge.
  EXPECT_EQ(pub.handle(".beat edge-c 1 healthy 1.0 v1;qt=bogus"),
            "F beat digest is malformed\n");

  const std::string page = pub.fleet_payload();
  EXPECT_NE(page.find("edges: 2 stale=0"), std::string::npos) << page;
  // The invariant the chaos harness reconciles: lookups = hits + evaluations,
  // each the sum over non-stale edges.
  EXPECT_NE(page.find("totals: queries=150 lookups=150 hits=90 evaluations=60 "
                      "recorder-drops=4"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("samples=150"), std::string::npos) << page;
  EXPECT_NE(page.find("edge: edge-a gen=1 health=healthy qps=12.5 queries=100 "
                      "hits=60 evaluations=40"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("edge: edge-b gen=1"), std::string::npos) << page;

  // A legacy 4-field beat refreshes liveness but keeps the stored digest.
  EXPECT_EQ(pub.handle(".beat edge-a 1 healthy 13.0"), "C\n");
  EXPECT_NE(pub.fleet_payload().find("totals: queries=150"), std::string::npos);

  // The Prometheus page carries per-edge labelled series and the merged
  // fleet histogram.
  const std::string prom = pub.fleet_prometheus();
  EXPECT_NE(prom.find("rpslyzer_fleet_edges 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("rpslyzer_fleet_queries_total{edge=\"edge-a\"} 100\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("rpslyzer_fleet_cache_hits_total{edge=\"edge-b\"} 30\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE rpslyzer_fleet_latency_seconds histogram\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("rpslyzer_fleet_latency_seconds_bucket{le=\"+Inf\"} 150\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("rpslyzer_fleet_latency_seconds_count 150\n"),
            std::string::npos)
      << prom;
}

TEST(Publisher, StaleEdgesDropOutOfFleetTotals) {
  repl::Publisher pub;
  pub.publish(*corpus().snapshot);
  pub.set_latency_bounds({0.001, 0.01});

  // hb=100 in the digest → stale after 4×max(100, 250) = 1000 ms.
  const repl::MetricDigest da = test_digest(100, 60, 40, {90, 9, 1});
  const repl::MetricDigest db = test_digest(50, 30, 20, {40, 9, 1});
  EXPECT_EQ(pub.handle(".beat edge-a 1 healthy 12.5 " + repl::render_digest(da)),
            "C\n");
  std::this_thread::sleep_for(milliseconds(1100));
  EXPECT_EQ(pub.handle(".beat edge-b 1 healthy 4.5 " + repl::render_digest(db)),
            "C\n");

  // The SIGKILLed-edge contract: the silent edge's row stays visible but
  // stale-marked, and its counters leave the totals and the merged
  // histogram rather than poisoning the fleet p99.
  const std::string page = pub.fleet_payload();
  EXPECT_NE(page.find("edges: 2 stale=1"), std::string::npos) << page;
  EXPECT_NE(page.find("totals: queries=50 lookups=50 hits=30 evaluations=20"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("samples=50"), std::string::npos) << page;
  const std::size_t row_a = page.find("edge: edge-a ");
  ASSERT_NE(row_a, std::string::npos);
  EXPECT_NE(page.find("stale=1", row_a), std::string::npos) << page;
  EXPECT_NE(pub.fleet_prometheus().find("rpslyzer_fleet_edges_stale 1\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Integrated origin daemon + edge client
// ---------------------------------------------------------------------------

server::ServerConfig origin_config() {
  server::ServerConfig config;
  config.port = 0;
  config.worker_threads = 2;
  config.idle_timeout = milliseconds(0);
  return config;
}

/// One origin daemon with a publisher wired exactly as `serve --publish`
/// wires it: every successful load republishes.
struct Origin {
  std::shared_ptr<repl::Publisher> publisher = std::make_shared<repl::Publisher>(8192);
  std::unique_ptr<server::Server> daemon;

  explicit Origin(std::shared_ptr<const compile::CompiledPolicySnapshot> snap) {
    auto publisher_copy = publisher;
    daemon = std::make_unique<server::Server>(
        origin_config(),
        [publisher_copy, snap]() {
          publisher_copy->publish(*snap);
          return snap;
        });
    daemon->set_repl_handler(
        [publisher_copy](std::string_view body) { return publisher_copy->handle(body); });
    daemon->set_stats_extra([publisher_copy] { return publisher_copy->stats_line(); });
    std::string error;
    if (!daemon->start(&error)) throw std::runtime_error("origin start: " + error);
  }
};

repl::EdgeConfig edge_config(std::uint16_t port, const std::filesystem::path& dir) {
  repl::EdgeConfig config;
  config.origin_port = port;
  config.state_dir = dir;
  config.edge_id = "test-edge";
  config.poll_interval = milliseconds(50);
  config.heartbeat_period = milliseconds(40);
  config.backoff_initial = milliseconds(20);
  config.backoff_max = milliseconds(200);
  return config;
}

class ReplIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::clear_all();
    dir_ = std::filesystem::temp_directory_path() /
           ("rpslyzer-repl-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    fp::clear_all();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

TEST_F(ReplIntegration, EdgeDownloadsVerifiesActivatesAndHeartbeats) {
  Origin origin(corpus().snapshot);
  repl::ReplicationClient client(edge_config(origin.daemon->port(), dir_));
  std::atomic<int> activations{0};
  client.set_activation_callback([&](const repl::Current&) { ++activations; });
  client.set_local_state([] {
    repl::LocalState state;
    state.health = "healthy";
    state.queries_total = 100;
    return state;
  });
  client.start();
  ASSERT_TRUE(client.wait_for_snapshot(milliseconds(10000)));
  const auto cur = client.current();
  ASSERT_TRUE(cur.has_value());
  EXPECT_EQ(cur->gen, 1u);
  EXPECT_EQ(activations.load(), 1);
  EXPECT_TRUE(client.origin_up());

  // The downloaded file is a loadable snapshot with the repl source label,
  // answering queries identically to the origin's in-memory snapshot.
  auto loaded = persist::open_snapshot(cur->path, "repl:" + std::to_string(cur->gen));
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->source(), "repl:1");
  // (Query-engine byte-identity over a loaded snapshot is covered by
  // persist_test; the whole-file digest already proves byte identity here.)

  // Heartbeats reach the origin's fleet table.
  bool seen = false;
  for (int i = 0; i < 100 && !seen; ++i) {
    seen = origin.publisher->handle("").find("edge: test-edge gen=1") != std::string::npos;
    if (!seen) std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_TRUE(seen) << origin.publisher->handle("");

  // The edge status page reflects a healthy replica.
  const std::string status = client.status_payload();
  EXPECT_NE(status.find("role: edge"), std::string::npos);
  EXPECT_NE(status.find("origin-up: 1"), std::string::npos);
  EXPECT_NE(status.find("gen: 1"), std::string::npos);
  client.stop();
}

TEST_F(ReplIntegration, TruncatedTransferResumesAtItsOffset) {
  Origin origin(corpus().snapshot);
  // First chunk torn after 1000 bytes: the sync fails, the partial stays,
  // and the next poll resumes from byte 1000 instead of restarting.
  ASSERT_TRUE(fp::set("repl.fetch", "1*truncate(1000)"));
  repl::ReplicationClient client(edge_config(origin.daemon->port(), dir_));
  client.start();
  ASSERT_TRUE(client.wait_for_snapshot(milliseconds(10000)));
  const std::string status = client.status_payload();
  EXPECT_NE(status.find("resumes: 1"), std::string::npos) << status;
  EXPECT_NE(status.find("sync-failures: 1"), std::string::npos) << status;
  // The resumed file still verifies byte-perfect.
  const auto cur = client.current();
  ASSERT_TRUE(cur.has_value());
  EXPECT_NE(persist::open_snapshot(cur->path), nullptr);
  client.stop();
}

TEST_F(ReplIntegration, FetchErrorsBackOffWithoutPoisoningTheNextSync) {
  Origin origin(corpus().snapshot);
  ASSERT_TRUE(fp::set("repl.fetch", "2*error(injected fetch fault)"));
  repl::ReplicationClient client(edge_config(origin.daemon->port(), dir_));
  client.start();
  ASSERT_TRUE(client.wait_for_snapshot(milliseconds(10000)));
  EXPECT_NE(client.status_payload().find("sync-failures: 2"), std::string::npos)
      << client.status_payload();
  client.stop();
}

TEST_F(ReplIntegration, DigestMismatchIsRefusedThenRetried) {
  Origin origin(corpus().snapshot);
  // The first completed download fails whole-file verification; the edge
  // must throw the poison away and succeed on the retry.
  ASSERT_TRUE(fp::set("repl.verify", "1*error"));
  repl::ReplicationClient client(edge_config(origin.daemon->port(), dir_));
  client.start();
  ASSERT_TRUE(client.wait_for_snapshot(milliseconds(10000)));
  const std::string status = client.status_payload();
  EXPECT_NE(status.find("verify-failures: 1"), std::string::npos) << status;
  const auto cur = client.current();
  ASSERT_TRUE(cur.has_value());
  EXPECT_NE(persist::open_snapshot(cur->path), nullptr);
  client.stop();
}

TEST_F(ReplIntegration, EdgeServesLastGoodThroughOriginOutageAndRecoversFromDisk) {
  std::uint16_t port = 0;
  {
    Origin origin(corpus().snapshot);
    port = origin.daemon->port();
    repl::ReplicationClient client(edge_config(port, dir_));
    client.start();
    ASSERT_TRUE(client.wait_for_snapshot(milliseconds(10000)));
    client.stop();
    origin.daemon->stop();
  }  // origin gone, edge process "crashed"

  // A fresh client on the same state dir recovers last-good without any
  // origin at all, and keeps serving while sync attempts fail.
  repl::ReplicationClient client(edge_config(port, dir_));
  EXPECT_TRUE(client.recover_last_good());
  const auto cur = client.current();
  ASSERT_TRUE(cur.has_value());
  EXPECT_EQ(cur->gen, 1u);
  EXPECT_NE(persist::open_snapshot(cur->path), nullptr);
  client.start();
  std::this_thread::sleep_for(milliseconds(150));
  EXPECT_FALSE(client.origin_up());
  EXPECT_TRUE(client.current().has_value()) << "outage must not drop last-good";
  client.stop();

  // A corrupted last-good file is discarded, not served.
  {
    std::fstream f(dir_ / "current.rps", std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\x5a');
  }
  repl::ReplicationClient fresh(edge_config(port, dir_));
  EXPECT_FALSE(fresh.recover_last_good());
  EXPECT_FALSE(fresh.current().has_value());
}

TEST_F(ReplIntegration, DaemonAnswersReplVerbsOnlyWhenWired) {
  Origin origin(corpus().snapshot);
  auto conn = server::Client::connect("127.0.0.1", origin.daemon->port());
  ASSERT_TRUE(conn.has_value());
  ASSERT_TRUE(conn->send_line("!repl"));
  auto resp = conn->read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_NE(resp->find("role: origin"), std::string::npos);
  // !stats grows the repl line.
  ASSERT_TRUE(conn->send_line("!stats"));
  resp = conn->read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_NE(resp->find("repl: role=origin gen=1"), std::string::npos) << *resp;

  // A daemon with no repl role refuses the verbs.
  server::Server plain(origin_config(), [] { return corpus().snapshot; });
  std::string error;
  ASSERT_TRUE(plain.start(&error)) << error;
  auto conn2 = server::Client::connect("127.0.0.1", plain.port());
  ASSERT_TRUE(conn2.has_value());
  ASSERT_TRUE(conn2->send_line("!repl.info"));
  resp = conn2->read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(*resp, "F replication not enabled\n");
  plain.stop();
}

}  // namespace
}  // namespace rpslyzer
