#include "rpslyzer/rpsl/object_lexer.hpp"

#include <gtest/gtest.h>

namespace rpslyzer::rpsl {
namespace {

std::vector<RawObject> lex(std::string_view text, util::Diagnostics& diag) {
  return lex_objects(text, "TEST", diag);
}

TEST(ObjectLexer, SingleObject) {
  util::Diagnostics diag;
  auto objects = lex(
      "aut-num: AS64500\n"
      "as-name: EXAMPLE\n"
      "import: from AS64501 accept ANY\n",
      diag);
  ASSERT_EQ(objects.size(), 1u);
  const RawObject& obj = objects[0];
  EXPECT_EQ(obj.class_name, "aut-num");
  EXPECT_EQ(obj.key, "AS64500");
  EXPECT_EQ(obj.source, "TEST");
  EXPECT_EQ(obj.line, 1u);
  ASSERT_EQ(obj.attributes.size(), 3u);
  EXPECT_EQ(obj.first("as-name"), "EXAMPLE");
  EXPECT_EQ(obj.first("import"), "from AS64501 accept ANY");
  EXPECT_TRUE(diag.empty());
}

TEST(ObjectLexer, MultipleObjectsBlankLineSeparated) {
  util::Diagnostics diag;
  auto objects = lex(
      "route: 192.0.2.0/24\norigin: AS64500\n"
      "\n\n"
      "route: 198.51.100.0/24\norigin: AS64501\n",
      diag);
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[0].key, "192.0.2.0/24");
  EXPECT_EQ(objects[1].key, "198.51.100.0/24");
  EXPECT_EQ(objects[1].line, 5u);
}

TEST(ObjectLexer, ContinuationLines) {
  util::Diagnostics diag;
  auto objects = lex(
      "aut-num: AS64500\n"
      "import: from AS64501\n"
      "        action pref=100;\n"
      "\taccept ANY\n"
      "export: to AS64501\n"
      "+ announce AS64500\n",
      diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].first("import"), "from AS64501 action pref=100; accept ANY");
  EXPECT_EQ(objects[0].first("export"), "to AS64501 announce AS64500");
  EXPECT_TRUE(diag.empty());
}

TEST(ObjectLexer, CommentsStripped) {
  util::Diagnostics diag;
  auto objects = lex(
      "aut-num: AS64500 # the key\n"
      "import: from AS64501 # neighbor\n"
      "        accept ANY # everything\n",
      diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].key, "AS64500");
  EXPECT_EQ(objects[0].first("import"), "from AS64501 accept ANY");
}

TEST(ObjectLexer, CommentOnlyLineKeepsObjectOpen) {
  util::Diagnostics diag;
  auto objects = lex(
      "aut-num: AS64500\n"
      "# interleaved comment\n"
      "as-name: EXAMPLE\n",
      diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].first("as-name"), "EXAMPLE");
}

TEST(ObjectLexer, PercentLinesIgnored) {
  util::Diagnostics diag;
  auto objects = lex(
      "% This is the RIPE Database query service.\n"
      "aut-num: AS64500\n"
      "% Information related to 'AS64500'\n"
      "as-name: EXAMPLE\n",
      diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].attributes.size(), 2u);
}

TEST(ObjectLexer, RepeatedAttributesKeepOrder) {
  util::Diagnostics diag;
  auto objects = lex(
      "aut-num: AS64500\n"
      "import: from AS1 accept ANY\n"
      "export: to AS1 announce AS64500\n"
      "import: from AS2 accept AS2\n",
      diag);
  ASSERT_EQ(objects.size(), 1u);
  auto imports = objects[0].all("import");
  ASSERT_EQ(imports.size(), 2u);
  EXPECT_EQ(imports[0], "from AS1 accept ANY");
  EXPECT_EQ(imports[1], "from AS2 accept AS2");
}

TEST(ObjectLexer, AttributeNamesLowercased) {
  util::Diagnostics diag;
  auto objects = lex("AUT-NUM: AS64500\nAS-NAME: X\n", diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].class_name, "aut-num");
  EXPECT_EQ(objects[0].first("as-name"), "X");
}

TEST(ObjectLexer, MalformedLinesRaiseDiagnostics) {
  util::Diagnostics diag;
  auto objects = lex(
      "aut-num: AS64500\n"
      "this line has no colon\n"
      "as-name: OK\n",
      diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].first("as-name"), "OK");
  ASSERT_EQ(diag.all().size(), 1u);
  EXPECT_EQ(diag.all()[0].kind, util::DiagnosticKind::kSyntaxError);
  EXPECT_EQ(diag.all()[0].location.line, 2u);
  EXPECT_EQ(diag.all()[0].location.source, "TEST");
}

TEST(ObjectLexer, ContinuationOutsideObjectIsError) {
  util::Diagnostics diag;
  auto objects = lex("   dangling continuation\nroute: 192.0.2.0/24\norigin: AS1\n", diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(diag.all().size(), 1u);
}

TEST(ObjectLexer, MissingTrailingNewline) {
  util::Diagnostics diag;
  auto objects = lex("route: 192.0.2.0/24\norigin: AS64500", diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].first("origin"), "AS64500");
}

TEST(ObjectLexer, CrLfLineEndings) {
  util::Diagnostics diag;
  auto objects = lex("route: 192.0.2.0/24\r\norigin: AS64500\r\n", diag);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].first("origin"), "AS64500");
}

TEST(ObjectLexer, EmptyInput) {
  util::Diagnostics diag;
  EXPECT_TRUE(lex("", diag).empty());
  EXPECT_TRUE(lex("\n\n\n", diag).empty());
  EXPECT_TRUE(lex("% remarks only\n", diag).empty());
}

}  // namespace
}  // namespace rpslyzer::rpsl
