// Fault injection: the failpoint framework itself, quarantined ingestion,
// degraded-mode serving, per-query deadlines, and slow-client backpressure.
//
// Every test drives a failure through a named failpoint site (see
// util/failpoint.hpp) and asserts the degradation contract: one bad source
// never takes down the other twelve, a failed reload never takes down the
// daemon, and one stalled query or slow client never takes down the
// connection's neighbours.

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/relations/relations.hpp"
#include "rpslyzer/server/client.hpp"
#include "rpslyzer/server/server.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer {
namespace {

namespace fp = util::failpoint;

/// Every test starts and ends with no failpoint armed, so a failing test
/// cannot poison its neighbours through the process-global registry.
class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear_all(); }
  void TearDown() override { fp::clear_all(); }
};

// ---------------------------------------------------------------------------
// Failpoint framework
// ---------------------------------------------------------------------------

TEST_F(FaultInjection, NothingArmedMeansNoHit) {
  EXPECT_FALSE(fp::any_armed());
  EXPECT_FALSE(fp::hit("irr.read"));
  EXPECT_EQ(fp::hit_count("irr.read"), 0u);
}

TEST_F(FaultInjection, ErrorActionWithMessage) {
  ASSERT_TRUE(fp::set("irr.read", "error(disk on fire)"));
  EXPECT_TRUE(fp::any_armed());
  const fp::Hit hit = fp::hit("irr.read");
  ASSERT_TRUE(hit.is_error());
  EXPECT_EQ(hit.message, "disk on fire");
  EXPECT_FALSE(fp::hit("some.other.site"));  // only the named site fires
  EXPECT_TRUE(fp::hit("irr.read").is_error());  // unlimited: still armed
  EXPECT_EQ(fp::hit_count("irr.read"), 2u);
}

TEST_F(FaultInjection, NTimesBudgetExpires) {
  ASSERT_TRUE(fp::set("irr.read", "2*error"));
  EXPECT_TRUE(fp::hit("irr.read").is_error());
  EXPECT_TRUE(fp::hit("irr.read").is_error());
  EXPECT_FALSE(fp::hit("irr.read"));  // budget exhausted: site disarmed
  EXPECT_FALSE(fp::any_armed());
  EXPECT_EQ(fp::hit_count("irr.read"), 2u);  // post-disarm misses not counted
}

TEST_F(FaultInjection, DelayActionSleeps) {
  ASSERT_TRUE(fp::set("server.send", "1*delay(30ms)"));
  const auto t0 = std::chrono::steady_clock::now();
  const fp::Hit hit = fp::hit("server.send");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(hit.kind, fp::Hit::Kind::kDelay);
  EXPECT_GE(elapsed, std::chrono::milliseconds(30));
}

TEST_F(FaultInjection, TruncateActionCarriesByteCount) {
  ASSERT_TRUE(fp::set("irr.parse", "truncate(4096)"));
  const fp::Hit hit = fp::hit("irr.parse");
  ASSERT_TRUE(hit.is_truncate());
  EXPECT_EQ(hit.truncate_at, 4096u);
}

TEST_F(FaultInjection, OffAndClearDisarm) {
  ASSERT_TRUE(fp::set("a.site", "error"));
  ASSERT_TRUE(fp::set("a.site", "off"));
  EXPECT_FALSE(fp::hit("a.site"));
  ASSERT_TRUE(fp::set("b.site", "error"));
  fp::clear("b.site");
  EXPECT_FALSE(fp::hit("b.site"));
  EXPECT_FALSE(fp::any_armed());
}

TEST_F(FaultInjection, MalformedSpecsAreRejected) {
  std::string error;
  EXPECT_FALSE(fp::set("s", "explode", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fp::set("s", "delay(abc)", &error));
  EXPECT_FALSE(fp::set("s", "truncate()", &error));
  EXPECT_FALSE(fp::set("s", "x*error", &error));
  EXPECT_FALSE(fp::any_armed());  // nothing leaked from failed sets
}

TEST_F(FaultInjection, ConfigureIsAtomic) {
  std::string error;
  // One bad clause rejects the whole spec: no site may be half-armed.
  EXPECT_FALSE(fp::configure("irr.read=error;server.send=bogus", &error));
  EXPECT_FALSE(fp::any_armed());
  EXPECT_TRUE(
      fp::configure("irr.read=error;server.send=delay(5ms);trailing.ok=off;", &error))
      << error;
  EXPECT_TRUE(fp::hit("irr.read").is_error());
  const auto active = fp::active();
  EXPECT_EQ(active.size(), 2u);
}

// ---------------------------------------------------------------------------
// reload_backoff (pure function)
// ---------------------------------------------------------------------------

TEST_F(FaultInjection, BackoffIsDeterministicCappedAndJittered) {
  using std::chrono::milliseconds;
  const milliseconds initial(100);
  const milliseconds cap(2000);
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    const auto a = server::reload_backoff(attempt, initial, cap, 42);
    const auto b = server::reload_backoff(attempt, initial, cap, 42);
    EXPECT_EQ(a, b) << "same inputs must give the same delay";
    EXPECT_GE(a, milliseconds(1));
    EXPECT_LE(a, cap);
    // Jitter stays within [0.75, 1.25] of the capped exponential step.
    const std::int64_t base =
        std::min<std::int64_t>(cap.count(), initial.count() << std::min(attempt, 20u));
    EXPECT_GE(a.count(), base * 3 / 4);
    EXPECT_LE(a.count(), base * 5 / 4);
  }
  // Different seeds decorrelate the schedule (jitter actually jitters).
  bool any_difference = false;
  for (std::uint64_t seed = 0; seed < 16 && !any_difference; ++seed) {
    any_difference = server::reload_backoff(3, initial, cap, seed) !=
                     server::reload_backoff(3, initial, cap, seed + 1);
  }
  EXPECT_TRUE(any_difference);
  // Degenerate knobs are clamped, never UB or zero.
  EXPECT_GE(server::reload_backoff(50, milliseconds(0), milliseconds(0), 7).count(), 1);
}

// ---------------------------------------------------------------------------
// Quarantined ingestion
// ---------------------------------------------------------------------------

class QuarantineFiles : public FaultInjection {
 protected:
  void SetUp() override {
    FaultInjection::SetUp();
    dir_ = std::filesystem::temp_directory_path() /
           ("rpslyzer-fault-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    FaultInjection::TearDown();
  }

  void write(const std::string& name, const std::string& text) {
    std::ofstream out(dir_ / name, std::ios::binary);
    out << text;
  }

  /// All 13 Table-1 dumps present, each with one distinctive aut-num
  /// (AS64500 + index) and one route.
  void write_full_corpus() {
    const auto sources = irr::table1_sources(dir_);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      write(sources[i].path.filename().string(),
            "aut-num: AS" + std::to_string(64500 + i) + "\nas-name: FROM-" +
                sources[i].name + "\n\n" + "route: 10." + std::to_string(i) +
                ".0.0/16\norigin: AS" + std::to_string(64500 + i) + "\n");
    }
  }

  std::filesystem::path dir_;
};

TEST_F(QuarantineFiles, MidReadFaultQuarantinesOneSourceOthersLoad) {
  write_full_corpus();
  // First read (APNIC, priority order) dies mid-dump; the other 12 load.
  ASSERT_TRUE(fp::set("irr.read", "1*error(connection reset)"));
  irr::LoadResult result = irr::load_irrs(irr::table1_sources(dir_));

  EXPECT_EQ(result.count_with(irr::SourceStatus::kQuarantined), 1u);
  EXPECT_EQ(result.count_with(irr::SourceStatus::kOk), 12u);
  const irr::SourceOutcome* apnic = result.outcome("APNIC");
  ASSERT_NE(apnic, nullptr);
  EXPECT_EQ(apnic->status, irr::SourceStatus::kQuarantined);
  EXPECT_NE(apnic->detail.find("connection reset"), std::string::npos);

  // Nothing from the quarantined dump was merged; everything else was.
  EXPECT_EQ(result.ir.aut_nums.count(64500), 0u);
  EXPECT_EQ(result.ir.aut_nums.size(), 12u);
  EXPECT_EQ(result.ir.routes.size(), 12u);
  EXPECT_GE(result.diagnostics.error_count(), 1u);

  // Recovery: with the fault cleared (the 1* budget is already spent), a
  // fresh load is complete and clean.
  irr::LoadResult recovered = irr::load_irrs(irr::table1_sources(dir_));
  EXPECT_EQ(recovered.count_with(irr::SourceStatus::kOk), 13u);
  EXPECT_EQ(recovered.ir.aut_nums.size(), 13u);
  EXPECT_EQ(recovered.diagnostics.error_count(), 0u);
}

TEST_F(QuarantineFiles, InjectedTruncationIsDetectedNotSilent) {
  write_full_corpus();
  ASSERT_TRUE(fp::set("irr.read", "1*truncate(10)"));
  irr::LoadResult result = irr::load_irrs(irr::table1_sources(dir_));
  // The truncated source is quarantined — a short dump is never merged as
  // if it were complete (the silent-truncation regression this PR fixes).
  EXPECT_EQ(result.count_with(irr::SourceStatus::kQuarantined), 1u);
  EXPECT_EQ(result.count_with(irr::SourceStatus::kOk), 12u);
  const irr::SourceOutcome* apnic = result.outcome("APNIC");
  ASSERT_NE(apnic, nullptr);
  EXPECT_NE(apnic->detail.find("truncation"), std::string::npos);
}

TEST_F(QuarantineFiles, DirectoryAsDumpIsQuarantined) {
  write("ripe.db", "aut-num: AS1\n");
  std::filesystem::create_directories(dir_ / "radb.db");
  irr::LoadResult result = irr::load_irrs(irr::table1_sources(dir_));
  const irr::SourceOutcome* radb = result.outcome("RADB");
  ASSERT_NE(radb, nullptr);
  EXPECT_EQ(radb->status, irr::SourceStatus::kQuarantined);
  EXPECT_NE(radb->detail.find("not a regular file"), std::string::npos);
  EXPECT_EQ(result.outcome("RIPE")->status, irr::SourceStatus::kOk);
  EXPECT_EQ(result.ir.aut_nums.size(), 1u);
}

TEST_F(QuarantineFiles, PathologicalObjectTripsByteGuard) {
  write("ripe.db", "aut-num: AS1\n\naut-num: AS2\n");
  // A dump that lost its separators: one endless pseudo-object.
  std::string corrupt = "aut-num: AS3\n";
  for (int i = 0; i < 100; ++i) corrupt += "remarks: filler filler filler\n";
  write("radb.db", corrupt);

  irr::LoadOptions options;
  options.max_object_bytes = 256;
  irr::LoadResult result = irr::load_irrs(irr::table1_sources(dir_), options);
  const irr::SourceOutcome* radb = result.outcome("RADB");
  ASSERT_NE(radb, nullptr);
  EXPECT_EQ(radb->status, irr::SourceStatus::kQuarantined);
  EXPECT_NE(radb->detail.find("pathological object"), std::string::npos);
  EXPECT_EQ(result.ir.aut_nums.count(3), 0u);
  EXPECT_EQ(result.ir.aut_nums.size(), 2u);  // RIPE still loads

  // The guard is a knob: with it disabled the same dump loads.
  options.max_object_bytes = 0;
  irr::LoadResult permissive = irr::load_irrs(irr::table1_sources(dir_), options);
  EXPECT_EQ(permissive.outcome("RADB")->status, irr::SourceStatus::kOk);
  EXPECT_EQ(permissive.ir.aut_nums.count(3), 1u);
}

TEST_F(QuarantineFiles, ParserExceptionQuarantinesSource) {
  write_full_corpus();
  ASSERT_TRUE(fp::set("irr.parse", "1*error(lexer blew up)"));
  irr::LoadResult result = irr::load_irrs(irr::table1_sources(dir_));
  EXPECT_EQ(result.count_with(irr::SourceStatus::kQuarantined), 1u);
  EXPECT_EQ(result.count_with(irr::SourceStatus::kOk), 12u);
  const irr::SourceOutcome* apnic = result.outcome("APNIC");
  ASSERT_NE(apnic, nullptr);
  EXPECT_NE(apnic->detail.find("lexer blew up"), std::string::npos);
  // The census must not carry partial numbers for a quarantined source.
  EXPECT_EQ(result.counts[0].aut_nums, 0u);
  EXPECT_EQ(result.counts[0].name, "APNIC");
}

TEST_F(QuarantineFiles, ParseTruncationIsSilentlyTolerated) {
  // irr.parse=truncate models a *undetected* short dump: the parser sees
  // less text and must produce a clean, smaller corpus — no quarantine.
  write("ripe.db", "aut-num: AS1\n\naut-num: AS2\n");
  ASSERT_TRUE(fp::set("irr.parse", "truncate(13)"));  // keeps only AS1's line
  irr::LoadResult result = irr::load_irrs(irr::table1_sources(dir_));
  EXPECT_EQ(result.outcome("RIPE")->status, irr::SourceStatus::kOk);
  EXPECT_EQ(result.ir.aut_nums.size(), 1u);
}

// ---------------------------------------------------------------------------
// Degraded-mode serving
// ---------------------------------------------------------------------------

constexpr const char* kCorpusV1 =
    "aut-num: AS64500\n"
    "import: from AS64501 accept ANY\n\n"
    "route: 10.0.0.0/8\norigin: AS64500\n\n"
    "route: 10.64.0.0/16\norigin: AS64500\n";
constexpr const char* kCorpusV2 =
    "aut-num: AS64500\n"
    "import: from AS64501 accept ANY\n\n"
    "route: 10.0.0.0/8\norigin: AS64500\n\n"
    "route: 172.16.0.0/12\norigin: AS64500\n";

struct OwnedCorpus {
  util::Diagnostics diag;
  ir::Ir ir;
  irr::Index index;
  relations::AsRelations relations;

  explicit OwnedCorpus(const std::string& text)
      : ir(irr::parse_dump(text, "TEST", diag)), index(ir) {}
};

std::shared_ptr<const compile::CompiledPolicySnapshot> make_corpus(
    const std::string& text) {
  auto owned = std::make_shared<OwnedCorpus>(text);
  return compile::CompiledPolicySnapshot::build(
      std::shared_ptr<const irr::Index>(owned, &owned->index),
      std::shared_ptr<const relations::AsRelations>(owned, &owned->relations));
}

server::ServerConfig test_config() {
  server::ServerConfig config;
  config.port = 0;
  config.worker_threads = 2;
  config.cache_capacity = 64;
  config.idle_timeout = std::chrono::milliseconds(0);
  return config;
}

TEST_F(FaultInjection, FailedReloadDegradesThenBackoffRetryRecovers) {
  // Loads: #1 ok (v1), #2 and #3 throw, #4+ ok (v2). The daemon must keep
  // serving v1 throughout the outage and converge to v2 on its own.
  std::atomic<int> loads{0};
  auto loader = [&loads]() -> std::shared_ptr<const compile::CompiledPolicySnapshot> {
    const int n = ++loads;
    if (n == 1) return make_corpus(kCorpusV1);
    if (n <= 3) throw std::runtime_error("mirror unreachable");
    return make_corpus(kCorpusV2);
  };
  server::ServerConfig config = test_config();
  config.reload_retry_initial = std::chrono::milliseconds(50);
  config.reload_retry_max = std::chrono::milliseconds(200);
  server::Server server(config, loader);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_EQ(server.health().state, server::Health::kHealthy);

  OwnedCorpus v1(kCorpusV1);
  OwnedCorpus v2(kCorpusV2);
  const std::string want_v1 = query::QueryEngine(v1.index).evaluate("!gAS64500");
  const std::string want_v2 = query::QueryEngine(v2.index).evaluate("!gAS64500");
  ASSERT_NE(want_v1, want_v2);

  auto client = server::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(client->send_line("!gAS64500"));
  EXPECT_EQ(client->read_response(), want_v1);

  // The explicit reload fails loudly...
  ASSERT_TRUE(client->send_line("!reload"));
  auto reload_response = client->read_response();
  ASSERT_TRUE(reload_response.has_value());
  EXPECT_EQ(reload_response->rfind("F reload failed: ", 0), 0u) << *reload_response;
  EXPECT_NE(reload_response->find("mirror unreachable"), std::string::npos);

  // ...but the daemon keeps serving the stale generation, and says so.
  ASSERT_TRUE(client->send_line("!gAS64500"));
  EXPECT_EQ(client->read_response(), want_v1);
  ASSERT_TRUE(client->send_line("!health"));
  auto health_response = client->read_response();
  ASSERT_TRUE(health_response.has_value());
  EXPECT_NE(health_response->find("status: degraded"), std::string::npos)
      << *health_response;
  EXPECT_NE(health_response->find("mirror unreachable"), std::string::npos);
  EXPECT_NE(health_response->find("stale-generation-age-ms:"), std::string::npos);
  EXPECT_EQ(server.generation(), 1u);

  // The event loop retries on its own: attempt #3 fails too, #4 succeeds.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.health().state != server::Health::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.health().state, server::Health::kHealthy);
  EXPECT_EQ(server.generation(), 2u);
  EXPECT_GE(server.stats().reload_failures.value(), 2u);
  EXPECT_GE(server.stats().reload_retries.value(), 2u);

  // Recovery is complete: responses are byte-identical to a clean v2 engine.
  ASSERT_TRUE(client->send_line("!gAS64500"));
  EXPECT_EQ(client->read_response(), want_v2);
  ASSERT_TRUE(client->send_line("!health"));
  auto healthy = client->read_response();
  ASSERT_TRUE(healthy.has_value());
  EXPECT_NE(healthy->find("status: healthy"), std::string::npos) << *healthy;

  // The extended stats mirror the episode.
  ASSERT_TRUE(client->send_line("!stats"));
  auto stats_response = client->read_response();
  ASSERT_TRUE(stats_response.has_value());
  EXPECT_NE(stats_response->find("health: healthy"), std::string::npos);
  EXPECT_NE(stats_response->find("reload-failures: "), std::string::npos);

  client->send_line("!q");
  server.stop();
}

TEST_F(FaultInjection, HealthReportsHealthyOnCleanStart) {
  server::Server server(test_config(), [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto client = server::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(client->send_line("!health"));
  auto response = client->read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("status: healthy"), std::string::npos) << *response;
  EXPECT_NE(response->find("generation: 1"), std::string::npos);
  server.stop();
}

// ---------------------------------------------------------------------------
// Per-query deadlines
// ---------------------------------------------------------------------------

TEST_F(FaultInjection, StalledWorkerTimesOutWithoutStallingNeighbours) {
  server::ServerConfig config = test_config();
  config.worker_threads = 2;
  config.query_deadline = std::chrono::milliseconds(150);
  server::Server server(config, [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  OwnedCorpus reference(kCorpusV1);
  const std::string want = query::QueryEngine(reference.index).evaluate("!gAS64500");

  auto slow = server::Client::connect("127.0.0.1", server.port());
  auto fast = server::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(slow.has_value());
  ASSERT_TRUE(fast.has_value());

  // Exactly one dispatch stalls for far longer than the deadline; it will
  // be the slow client's query because it is the only one in flight.
  ASSERT_TRUE(fp::set("server.dispatch", "1*delay(1000ms)"));
  ASSERT_TRUE(slow->send_line("!gAS64500"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The other connection keeps getting correct answers meanwhile.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fast->send_line("!gAS64500"));
    EXPECT_EQ(fast->read_response(), want);
  }

  // The stalled query is answered by the deadline sweep, not the worker.
  auto timed_out = slow->read_response();
  ASSERT_TRUE(timed_out.has_value());
  EXPECT_EQ(*timed_out, "F timeout\n");
  EXPECT_EQ(server.stats().queries_timed_out.value(), 1u);

  // The connection survives its timeout and the late worker result is
  // discarded: the next query gets exactly one, correct, response.
  ASSERT_TRUE(slow->send_line("!gAS64500"));
  EXPECT_EQ(slow->read_response(), want);
  ASSERT_TRUE(slow->send_line("!gAS64500"));
  EXPECT_EQ(slow->read_response(), want);

  slow->send_line("!q");
  fast->send_line("!q");
  server.stop();
}

// ---------------------------------------------------------------------------
// Slow-client backpressure
// ---------------------------------------------------------------------------

TEST_F(FaultInjection, SlowClientIsPausedThenDisconnected) {
  // A corpus whose !g answer is ~50 KB, so a handful of pipelined queries
  // overflow both the kernel socket buffers and the server's output cap.
  std::string big;
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 100; ++j) {
      big += "route: 10." + std::to_string(i) + "." + std::to_string(j) +
             ".0/24\norigin: AS64500\n\n";
    }
  }
  big += "aut-num: AS64500\n";

  server::ServerConfig config = test_config();
  config.max_output_buffer_bytes = 64 * 1024;
  config.write_stall_grace = std::chrono::milliseconds(150);
  server::Server server(config, [&big] { return make_corpus(big); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = server::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  // Keep the receive window tiny so the kernel cannot mask the stall by
  // absorbing megabytes of responses into auto-tuned socket buffers.
  const int rcvbuf = 8 * 1024;
  ::setsockopt(client->fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  // Pipeline tens of megabytes of responses and then never read them.
  for (int i = 0; i < 512; ++i) ASSERT_TRUE(client->send_line("!gAS64500"));

  // The server must pause reads, wait out the grace, and drop us — without
  // ever holding more than (cap + one response) of our output in memory.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().slow_client_disconnects.value() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().slow_client_disconnects.value(), 1u);
  EXPECT_GE(server.stats().reads_paused.value(), 1u);
  EXPECT_EQ(server.stats().connections_open.value(), 0);

  // A well-behaved client on the same server is unaffected.
  auto good = server::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(good.has_value());
  ASSERT_TRUE(good->send_line("!gAS64500"));
  auto response = good->read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->front(), 'A');
  good->send_line("!q");
  server.stop();
}

// ---------------------------------------------------------------------------
// Input bounding
// ---------------------------------------------------------------------------

TEST_F(FaultInjection, UnterminatedOversizedLineIsRefusedAndClosed) {
  server::ServerConfig config = test_config();
  config.max_line_bytes = 1024;
  server::Server server(config, [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = server::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  // Stream an endless line with no newline: the server must refuse it from
  // the read path instead of buffering until the peer feels like stopping.
  const std::string chunk(4096, 'x');
  for (int i = 0; i < 16; ++i) {
    if (!client->send_raw(chunk)) break;  // server may already have closed
  }
  auto refusal = client->read_response();
  if (refusal.has_value()) {  // we may race the close and see only EOF
    EXPECT_EQ(*refusal, "F line too long\n");
    EXPECT_FALSE(client->read_response().has_value());
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Cache and client failpoints keep the system correct, just slower
// ---------------------------------------------------------------------------

TEST_F(FaultInjection, CacheFaultsAreCorrectnessNeutral) {
  ASSERT_TRUE(fp::configure("cache.get=error;cache.put=error"));
  server::Server server(test_config(), [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  OwnedCorpus reference(kCorpusV1);
  const std::string want = query::QueryEngine(reference.index).evaluate("!gAS64500");
  auto client = server::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->send_line("!gAS64500"));
    EXPECT_EQ(client->read_response(), want);
  }
  EXPECT_EQ(server.cache_stats().hits, 0u);  // every lookup bypassed
  client->send_line("!q");
  server.stop();
}

TEST_F(FaultInjection, ClientSendAndReadFaultsFailGracefully) {
  server::Server server(test_config(), [] { return make_corpus(kCorpusV1); });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto client = server::Client::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.has_value());

  ASSERT_TRUE(fp::set("client.send", "1*error"));
  EXPECT_FALSE(client->send_line("!gAS64500"));
  ASSERT_TRUE(client->send_line("!gAS64500"));  // budget spent: works again

  ASSERT_TRUE(fp::set("client.read", "1*error"));
  EXPECT_FALSE(client->read_response().has_value());
  server.stop();
}

}  // namespace
}  // namespace rpslyzer
