// Pins the consolidated splitmix64 in util/rand.hpp to exact output
// vectors. Three call sites (server reload backoff, repl reconnect jitter,
// trace-id minting) rely on these streams staying decorrelated by seed and
// reproducible across builds; a constant typo would pass every statistical
// smoke test while changing every value, so the vectors are hard-coded.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "rpslyzer/util/rand.hpp"

namespace rpslyzer::util {
namespace {

TEST(Rand, Mix64KnownVectors) {
  // Reference values from the public-domain splitmix64 (Vigna): the first
  // three outputs of the stream seeded with 1234567 are mix64 of the
  // successive gamma increments.
  EXPECT_EQ(mix64(1234567 + kSplitMix64Gamma), 0x599ed017fb08fc85ULL);
  EXPECT_EQ(mix64(1234567 + 2 * kSplitMix64Gamma), 0x2c73f08458540fa5ULL);
  EXPECT_EQ(mix64(0), 0ULL);  // the finalizer fixes zero
}

TEST(Rand, Mix64IsPure) {
  for (std::uint64_t x : {std::uint64_t{0}, std::uint64_t{1}, kSplitMix64Gamma,
                          ~std::uint64_t{0}, std::uint64_t{0xdeadbeef}}) {
    EXPECT_EQ(mix64(x), mix64(x));
  }
}

TEST(Rand, Mix64IsInjectiveOnSample) {
  // A bijection cannot collide; spot-check a dense low range where a
  // broken shift/multiply constant would alias immediately.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 10000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Rand, SplitMixAtMatchesStatefulStream) {
  constexpr std::uint64_t kSeed = 0xabcdef123456ULL;
  SplitMix64 stream(kSeed);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(stream.next(), splitmix64_at(kSeed, i)) << "i=" << i;
  }
}

TEST(Rand, SplitMixAtIsStatelessAndOrderFree) {
  EXPECT_EQ(splitmix64_at(42, 7), splitmix64_at(42, 7));
  const std::uint64_t later = splitmix64_at(42, 9);
  (void)splitmix64_at(42, 0);  // earlier counter query cannot disturb anything
  EXPECT_EQ(splitmix64_at(42, 9), later);
}

TEST(Rand, DistinctSeedsDecorrelate) {
  // Distinct seeds must give distinct streams (bijection ⇒ no collision at
  // equal counters).
  for (std::uint64_t c = 0; c < 64; ++c) {
    EXPECT_NE(splitmix64_at(1, c), splitmix64_at(2, c));
  }
}

TEST(Rand, ConstexprUsable) {
  static_assert(mix64(1) == mix64(1));
  static_assert(splitmix64_at(5, 0) == mix64(5 + kSplitMix64Gamma));
  constexpr std::uint64_t v = splitmix64_at(5, 0);
  EXPECT_NE(v, 0u);
}

}  // namespace
}  // namespace rpslyzer::util
