#include "rpslyzer/rpslyzer.hpp"

#include <gtest/gtest.h>

namespace rpslyzer {
namespace {

TEST(CoreApi, FromTextsMergesInGivenPriorityOrder) {
  Rpslyzer lyzer = Rpslyzer::from_texts(
      {
          {"FIRST", "aut-num: AS1\nas-name: WINNER\n"},
          {"SECOND", "aut-num: AS1\nas-name: LOSER\n\nroute: 10.0.0.0/8\norigin: AS1\n"},
      },
      "1|2|-1\n");
  EXPECT_EQ(rpslyzer::ir::sym_view(lyzer.ir().aut_nums.at(1).as_name), "WINNER");
  EXPECT_EQ(lyzer.ir().routes.size(), 1u);
  EXPECT_EQ(lyzer.relations().between(1, 2), relations::Relationship::kProvider);
  ASSERT_EQ(lyzer.irr_counts().size(), 2u);
  EXPECT_EQ(lyzer.irr_counts()[0].name, "FIRST");
}

TEST(CoreApi, DiagnosticsAccumulateAcrossSources) {
  Rpslyzer lyzer = Rpslyzer::from_texts(
      {
          {"A", "aut-num: AS1\nimport: fron AS2 accept ANY\n"},
          {"B", "as-set: BAD-NAME\n"},
      },
      "x|y|z\n");
  EXPECT_GE(lyzer.diagnostics().count(util::DiagnosticKind::kSyntaxError), 2u);
  EXPECT_GE(lyzer.diagnostics().count(util::DiagnosticKind::kInvalidSetName), 1u);
}

TEST(CoreApi, VerifierOptionsPropagate) {
  Rpslyzer lyzer = Rpslyzer::from_texts(
      {{"A", "aut-num: AS1\nimport: from AS3 accept AS4\n\nroute: 10.4.0.0/16\norigin: AS4\n"}},
      "");
  bgp::Route r{*net::Prefix::parse("10.99.0.0/16"), {1, 3, 4}};

  verify::Verifier relaxed = lyzer.verifier();
  EXPECT_EQ(relaxed.verify_route(r)[1].import_result.status, verify::Status::kRelaxed);

  verify::VerifyOptions strict;
  strict.relaxations = false;
  strict.safelists = false;
  verify::Verifier strict_verifier = lyzer.verifier(strict);
  EXPECT_EQ(strict_verifier.verify_route(r)[1].import_result.status,
            verify::Status::kUnverified);
}

TEST(CoreApi, ExportIrShape) {
  Rpslyzer lyzer = Rpslyzer::from_texts(
      {{"A", "aut-num: AS1\nimport: from AS2 accept ANY\n\nroute: 10.0.0.0/8\norigin: AS1\n"}},
      "");
  json::Value v = lyzer.export_ir();
  EXPECT_EQ(v.at("aut-nums").as_object().size(), 1u);
  EXPECT_EQ(v.at("routes").as_array().size(), 1u);
  // And it reconstructs the identical corpus.
  EXPECT_EQ(ir::ir_from_json(v), lyzer.ir());
}

TEST(CoreApi, EmptyInputs) {
  Rpslyzer lyzer = Rpslyzer::from_texts({}, "");
  EXPECT_EQ(lyzer.ir().object_count(), 0u);
  EXPECT_TRUE(lyzer.relations().tier1().empty());
  // Verifying against an empty corpus classifies everything unrecorded.
  bgp::Route r{*net::Prefix::parse("10.0.0.0/8"), {1, 2}};
  auto hops = lyzer.verifier().verify_route(r);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].import_result.status, verify::Status::kUnrecorded);
  EXPECT_EQ(hops[0].export_result.status, verify::Status::kUnrecorded);
}

}  // namespace
}  // namespace rpslyzer
