// Property tests for the zero-copy memory primitives: the chunked bump
// Arena and the flat open-addressing SymbolTable (see DESIGN.md "Memory
// architecture"). The interner tests cover both modes, resize under load,
// canon semantics, and an injected degenerate hash that piles every key
// into one collision chain.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "rpslyzer/util/arena.hpp"
#include "rpslyzer/util/interner.hpp"
#include "rpslyzer/util/rand.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::util {
namespace {

// ---------------------------------------------------------------------------
// Arena

TEST(Arena, AlignmentIsHonored) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    // Offset the cursor by one byte first so alignment actually has to work.
    arena.alloc_chars(1);
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, GrowsAcrossChunksAndKeepsOldAllocationsValid) {
  Arena arena(64);  // tiny first chunk to force growth quickly
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  for (int i = 0; i < 200; ++i) {
    std::string s(17, static_cast<char>('a' + (i % 26)));
    s += std::to_string(i);
    expected.push_back(s);
    views.push_back(arena.copy(s));
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], expected[i]);
  }
}

TEST(Arena, CopyOfEmptyStringIsEmptyWithoutAllocating) {
  Arena arena;
  const std::size_t before = arena.used_bytes();
  std::string_view v = arena.copy("");
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(arena.used_bytes(), before);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a(64);
  std::string_view kept = a.copy("survives the move");
  Arena b(std::move(a));
  EXPECT_EQ(kept, "survives the move");
  EXPECT_GT(b.used_bytes(), 0u);
  // The moved-from arena is hollow but usable.
  std::string_view fresh = a.copy("new life");
  EXPECT_EQ(fresh, "new life");

  Arena c(64);
  c = std::move(b);
  EXPECT_EQ(kept, "survives the move");  // views chase the chunks, not the Arena
  EXPECT_GT(c.used_bytes(), 0u);
}

TEST(Arena, ResetKeepsLargestChunkAndReusesIt) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) arena.copy("some moderately long spelling");
  ASSERT_GT(arena.chunk_count(), 1u);
  arena.reset();
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.used_bytes(), 0u);
  // One warm cycle: refill (may grow once more — the kept chunk only held
  // the tail of the previous load) and reset again. The chunk kept now is
  // geometrically sized past the whole load, so the next refill is
  // allocation-free.
  for (int i = 0; i < 100; ++i) arena.copy("some moderately long spelling");
  arena.reset();
  const std::size_t reserved = arena.reserved_bytes();
  for (int i = 0; i < 100; ++i) arena.copy("some moderately long spelling");
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(Arena, AllocArrayIsTypedAndAligned) {
  Arena arena;
  arena.alloc_chars(3);  // misalign the cursor
  auto* words = arena.alloc_array<std::uint64_t>(8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words) % alignof(std::uint64_t), 0u);
  for (int i = 0; i < 8; ++i) words[i] = i;  // must be writable storage
  EXPECT_EQ(words[7], 7u);
}

// ---------------------------------------------------------------------------
// SymbolTable — exact mode

TEST(SymbolTable, ExactModeInternsPerSpelling) {
  SymbolTable table(SymbolTable::Mode::kExact);
  const Symbol a = table.intern("AS-EXAMPLE");
  const Symbol b = table.intern("as-example");
  const Symbol c = table.intern("AS-EXAMPLE");
  EXPECT_NE(a, b);  // distinct spellings, distinct ids
  EXPECT_EQ(a, c);  // idempotent
  EXPECT_EQ(table.view(a), "AS-EXAMPLE");
  EXPECT_EQ(table.view(b), "as-example");
  // canon: first-seen spelling represents the case-insensitive class.
  EXPECT_EQ(table.canon(a), table.canon(b));
  EXPECT_EQ(table.canon(b), a);
}

TEST(SymbolTable, DefaultSymbolViewsEmptyInExactMode) {
  SymbolTable table(SymbolTable::Mode::kExact);
  EXPECT_EQ(table.view(Symbol{}), "");
  EXPECT_EQ(table.intern(""), Symbol{});  // the reserved id 0
}

TEST(SymbolTable, FindDoesNotInsert) {
  SymbolTable table(SymbolTable::Mode::kExact);
  const std::uint32_t before = table.size();
  EXPECT_FALSE(table.find("NEVER-INTERNED").has_value());
  EXPECT_FALSE(table.find_canon("NEVER-INTERNED").has_value());
  EXPECT_EQ(table.size(), before);
  const Symbol s = table.intern("NEVER-INTERNED");
  EXPECT_EQ(table.find("NEVER-INTERNED"), s);
  EXPECT_EQ(table.find_canon("never-interned"), s);
}

TEST(SymbolTable, CanonMatchesIEqualsOverRandomPairs) {
  // The load-bearing equivalence: canon(a) == canon(b) ⇔ iequals(view(a),
  // view(b)), exercised over randomly cased variants of a small vocabulary.
  SymbolTable table(SymbolTable::Mode::kExact);
  SplitMix64 rng(7);
  std::vector<Symbol> symbols;
  for (int word = 0; word < 20; ++word) {
    std::string base = "AS-WORD" + std::to_string(word);
    for (int variant = 0; variant < 10; ++variant) {
      std::string spelled = base;
      for (char& c : spelled) {
        if (rng.next() & 1) c = to_lower(c);
      }
      symbols.push_back(table.intern(spelled));
    }
  }
  for (const Symbol a : symbols) {
    for (const Symbol b : symbols) {
      EXPECT_EQ(table.canon(a) == table.canon(b),
                iequals(table.view(a), table.view(b)))
          << table.view(a) << " vs " << table.view(b);
    }
  }
}

// ---------------------------------------------------------------------------
// SymbolTable — fold mode

TEST(SymbolTable, FoldModeAssignsDenseIdsPerClass) {
  SymbolTable table(SymbolTable::Mode::kCaseFold);
  EXPECT_EQ(table.size(), 0u);  // no reserved empty symbol: ids stay dense
  const Symbol a = table.intern("AS-First");
  const Symbol b = table.intern("as-first");
  const Symbol c = table.intern("AS-SECOND");
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(b, a);  // same case-insensitive class
  EXPECT_EQ(c.id, 1u);
  EXPECT_EQ(table.view(a), "AS-First");  // first spelling kept
  EXPECT_EQ(table.canon(a), a);          // canon is the identity here
}

// ---------------------------------------------------------------------------
// Resize, copy, and collision behaviour

TEST(SymbolTable, SurvivesResizeWithStableIdsAndViews) {
  SymbolTable table(SymbolTable::Mode::kExact);
  std::vector<Symbol> symbols;
  std::vector<std::string> spellings;
  for (int i = 0; i < 5000; ++i) {  // far past the initial 64-cell capacity
    spellings.push_back("SYM-" + std::to_string(i));
    symbols.push_back(table.intern(spellings.back()));
  }
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(table.view(symbols[i]), spellings[i]);
    EXPECT_EQ(table.find(spellings[i]), symbols[i]);
  }
  EXPECT_GT(table.pool_bytes(), 0u);
}

TEST(SymbolTable, CopyReproducesIdsAndCanonAssignments) {
  SymbolTable table(SymbolTable::Mode::kExact);
  for (int i = 0; i < 300; ++i) {
    table.intern("Mixed-" + std::to_string(i));
    table.intern("MIXED-" + std::to_string(i));  // same class, later spelling
  }
  SymbolTable copy(table);
  ASSERT_EQ(copy.size(), table.size());
  for (std::uint32_t id = 0; id < table.size(); ++id) {
    EXPECT_EQ(copy.view(Symbol{id}), table.view(Symbol{id}));
    EXPECT_EQ(copy.canon(Symbol{id}), table.canon(Symbol{id}));
  }
}

std::uint64_t degenerate_hash(std::string_view, bool) noexcept { return 42; }

TEST(SymbolTable, AdversarialEqualHashKeysStillResolveByBytes) {
  // Every key lands in the same collision chain; correctness must come
  // from the byte comparison, not hash spread. This also forces maximal
  // probe-chain length through several resizes.
  SymbolTable table(SymbolTable::Mode::kExact, &degenerate_hash);
  std::vector<Symbol> symbols;
  std::vector<std::string> spellings;
  for (int i = 0; i < 200; ++i) {
    spellings.push_back("CLASH-" + std::to_string(i));
    symbols.push_back(table.intern(spellings.back()));
  }
  std::set<std::uint32_t> ids;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    ids.insert(symbols[i].id);
    EXPECT_EQ(table.view(symbols[i]), spellings[i]);
    EXPECT_EQ(table.find(spellings[i]), symbols[i]);
    EXPECT_EQ(table.intern(spellings[i]), symbols[i]);
  }
  EXPECT_EQ(ids.size(), symbols.size());  // no two spellings merged
  EXPECT_FALSE(table.find("CLASH-absent").has_value());
}

TEST(SymbolTable, ReserveAvoidsMidBuildRehash) {
  SymbolTable table(SymbolTable::Mode::kCaseFold);
  table.reserve(10000);
  std::vector<Symbol> symbols;
  for (int i = 0; i < 10000; ++i) symbols.push_back(table.intern("R" + std::to_string(i)));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(table.view(symbols[i]), "R" + std::to_string(i));
  }
}

TEST(SymbolTable, FuzzRandomInternFindAgainstReferenceMap) {
  SymbolTable table(SymbolTable::Mode::kExact);
  std::map<std::string, Symbol> reference;
  SplitMix64 rng(0xfeed);
  for (int step = 0; step < 20000; ++step) {
    std::string key = "K" + std::to_string(rng.next() % 3000);
    if (rng.next() % 3 == 0) {
      auto found = table.find(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(found.has_value()) << key;
      } else {
        EXPECT_EQ(found, it->second) << key;
      }
    } else {
      const Symbol s = table.intern(key);
      auto [it, fresh] = reference.emplace(key, s);
      if (!fresh) EXPECT_EQ(it->second, s) << key;
      EXPECT_EQ(table.view(s), key);
    }
  }
  EXPECT_EQ(table.size(), reference.size() + 1);  // +1: the reserved ""
}

TEST(SymbolTable, ConcurrentInternOfSharedVocabularyConverges) {
  // Hammer one table from several threads over an overlapping vocabulary;
  // under TSan this doubles as the data-race check for the lock-free read
  // path racing the locked insert path.
  SymbolTable table(SymbolTable::Mode::kExact);
  constexpr int kThreads = 4;
  constexpr int kWords = 500;
  std::vector<std::vector<Symbol>> seen(kThreads, std::vector<Symbol>(kWords));
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      SplitMix64 rng(t);
      for (int i = 0; i < kWords; ++i) {
        const int word = static_cast<int>(rng.next() % kWords);
        seen[t][word] = table.intern("W" + std::to_string(word));
      }
    });
  }
  for (auto& thread : pool) thread.join();
  // Every thread that interned word w must have gotten the same id.
  for (int w = 0; w < kWords; ++w) {
    Symbol expected{};
    for (int t = 0; t < kThreads; ++t) {
      if (seen[t][w] == Symbol{}) continue;
      if (expected == Symbol{}) expected = seen[t][w];
      EXPECT_EQ(seen[t][w], expected) << "word " << w;
    }
  }
}

}  // namespace
}  // namespace rpslyzer::util
