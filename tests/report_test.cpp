#include "rpslyzer/report/aggregate.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "rpslyzer/report/render.hpp"

namespace rpslyzer::report {
namespace {

using verify::CheckResult;
using verify::HopCheck;
using verify::Reason;

bgp::Route route(std::vector<bgp::Asn> path) {
  return bgp::Route{*net::Prefix::parse("10.0.0.0/8"), std::move(path)};
}

HopCheck hop(verify::Asn from, verify::Asn to, Status export_status, Status import_status,
             std::vector<verify::ReportItem> export_items = {},
             std::vector<verify::ReportItem> import_items = {}) {
  HopCheck h;
  h.from = from;
  h.to = to;
  h.export_result = CheckResult{export_status, std::move(export_items)};
  h.import_result = CheckResult{import_status, std::move(import_items)};
  return h;
}

TEST(StatusCounts, Basics) {
  StatusCounts c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_FALSE(c.single_status());
  c.add(Status::kVerified);
  c.add(Status::kVerified);
  Status which;
  EXPECT_TRUE(c.single_status(&which));
  EXPECT_EQ(which, Status::kVerified);
  c.add(Status::kUnverified);
  EXPECT_FALSE(c.single_status());
  EXPECT_EQ(c.total(), 3u);
  EXPECT_EQ(c.of(Status::kVerified), 2u);
  auto f = c.fractions();
  EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Status::kVerified)], 2.0 / 3.0);
}

TEST(Aggregator, PerAsPerPairPerRoute) {
  Aggregator agg;
  agg.add(route({3, 2, 1}),
          {hop(1, 2, Status::kVerified, Status::kUnrecorded),
           hop(2, 3, Status::kSafelisted, Status::kVerified)});
  agg.add(route({2, 1}), {hop(1, 2, Status::kVerified, Status::kUnrecorded)});

  EXPECT_EQ(agg.total_checks(), 6u);
  EXPECT_EQ(agg.total_routes(), 2u);

  // AS1 exported twice (both verified).
  EXPECT_EQ(agg.as_exports().at(1).of(Status::kVerified), 2u);
  // AS2 imported twice (unrecorded) and exported once (safelisted).
  EXPECT_EQ(agg.as_imports().at(2).of(Status::kUnrecorded), 2u);
  EXPECT_EQ(agg.as_exports().at(2).of(Status::kSafelisted), 1u);
  // Combined view merges both directions.
  EXPECT_EQ(agg.as_combined().at(2).total(), 3u);

  // Pair (1,2) import checks: 2 unrecorded.
  EXPECT_EQ(agg.pair_imports().at({1, 2}).of(Status::kUnrecorded), 2u);
  EXPECT_EQ(agg.pair_exports().at({1, 2}).of(Status::kVerified), 2u);

  // Per-route: the first route saw 4 checks, the second 2.
  ASSERT_EQ(agg.routes().size(), 2u);
  EXPECT_EQ(agg.routes()[0].total(), 4u);
  EXPECT_EQ(agg.routes()[1].total(), 2u);

  // First-hop counts: 2 routes x (export + import).
  EXPECT_EQ(agg.first_hops().total(), 4u);
}

TEST(Aggregator, UnrecordedBreakdown) {
  Aggregator agg;
  agg.add(route({2, 1}),
          {hop(1, 2, Status::kUnrecorded, Status::kUnrecorded,
               {{Reason::kUnrecordedAutNum, 1, {}}},
               {{Reason::kUnrecordedAsSet, 0, "AS-GONE"}})});
  const auto& unrecorded = agg.unrecorded();
  EXPECT_EQ(unrecorded.at(1)[size_t(UnrecordedCategory::kMissingAutNum)], 1u);
  EXPECT_EQ(unrecorded.at(2)[size_t(UnrecordedCategory::kMissingSet)], 1u);
}

TEST(Aggregator, SpecialBreakdownAndOppVariants) {
  Aggregator agg;
  agg.add(route({2, 1}),
          {hop(1, 2, Status::kRelaxed, Status::kSafelisted,
               {{Reason::kRelaxedExportSelf, 0, {}}},
               {{Reason::kSpecOtherOnlyProviderPolicies, 0, {}}})});
  agg.add(route({3, 1}),
          {hop(1, 3, Status::kSafelisted, Status::kSafelisted,
               {{Reason::kSpecUphill, 0, {}}},
               {{Reason::kSpecCustomerOnlyProviderPolicies, 0, {}}})});
  const auto& special = agg.special_cases();
  EXPECT_EQ(special.at(1)[size_t(SpecialCategory::kExportSelf)], 1u);
  EXPECT_EQ(special.at(1)[size_t(SpecialCategory::kUphill)], 1u);
  // Both OPP flavors fold into one Figure 6 category.
  EXPECT_EQ(special.at(2)[size_t(SpecialCategory::kOnlyProviderPolicies)], 1u);
  EXPECT_EQ(special.at(3)[size_t(SpecialCategory::kOnlyProviderPolicies)], 1u);
}

TEST(Aggregator, UnverifiedPeeringVsFilter) {
  Aggregator agg;
  agg.add(route({2, 1}),
          {hop(1, 2, Status::kUnverified, Status::kUnverified,
               {{Reason::kMatchRemoteAsNum, 9, {}}},                       // peering only
               {{Reason::kMatchFilterAsNum, 1, {}}, {Reason::kMatchFilter, 0, {}}})});
  EXPECT_EQ(agg.unverified_checks(), 2u);
  EXPECT_EQ(agg.unverified_peering_undeclared(), 1u);
}

TEST(Summaries, Fig2) {
  Aggregator agg;
  // AS1: all verified; AS2: all unrecorded; AS3: mixed.
  agg.add(route({2, 1}), {hop(1, 2, Status::kVerified, Status::kUnrecorded)});
  agg.add(route({3, 1}), {hop(1, 3, Status::kVerified, Status::kUnverified)});
  agg.add(route({3, 2}), {hop(2, 3, Status::kUnrecorded, Status::kVerified)});
  Fig2Summary summary = Fig2Summary::compute(agg);
  EXPECT_EQ(summary.ases, 3u);
  EXPECT_EQ(summary.all_verified, 1u);      // AS1 (two verified exports)
  EXPECT_EQ(summary.all_unrecorded, 1u);    // AS2 (unrecorded both ways)
  EXPECT_EQ(summary.all_same_status, 2u);   // AS1 and AS2
  EXPECT_EQ(summary.any_unrecorded, 1u);    // only AS2
  EXPECT_EQ(summary.any_skip, 0u);
}

TEST(Summaries, Fig3AndFig4) {
  Aggregator agg;
  agg.add(route({2, 1}), {hop(1, 2, Status::kVerified, Status::kVerified)});
  agg.add(route({2, 1}), {hop(1, 2, Status::kVerified, Status::kUnverified,
                              {}, {{Reason::kMatchRemoteAsNum, 5, {}}})});
  Fig3Summary f3 = Fig3Summary::compute(agg);
  EXPECT_EQ(f3.pairs_import, 1u);
  EXPECT_EQ(f3.pairs_import_single_status, 0u);  // verified + unverified mix
  EXPECT_EQ(f3.pairs_export, 1u);
  EXPECT_EQ(f3.pairs_export_single_status, 1u);
  EXPECT_EQ(f3.pairs_with_unverified, 1u);
  EXPECT_EQ(f3.unverified_checks_total, 1u);
  EXPECT_EQ(f3.unverified_checks_peering_undeclared, 1u);

  Fig4Summary f4 = Fig4Summary::compute(agg);
  EXPECT_EQ(f4.routes, 2u);
  EXPECT_EQ(f4.single_status, 1u);
  EXPECT_EQ(f4.single_verified, 1u);
}

TEST(Render, StackedChartAndComposition) {
  std::vector<StatusCounts> entities(10);
  for (std::size_t i = 0; i < entities.size(); ++i) {
    entities[i].add(i < 5 ? Status::kVerified : Status::kUnrecorded);
  }
  std::string chart = render_stacked(entities, 10, 4);
  EXPECT_NE(chart.find('V'), std::string::npos);
  EXPECT_NE(chart.find('U'), std::string::npos);
  // Correctness ordering puts verified columns on the left.
  const std::size_t first_row_start = chart.find('|') + 1;
  std::string bottom_row = chart.substr(chart.rfind("|V"), 12);
  EXPECT_FALSE(bottom_row.empty());

  StatusCounts totals;
  totals.add(Status::kVerified);
  totals.add(Status::kVerified);
  totals.add(Status::kUnverified);
  std::string composition = render_composition(totals);
  EXPECT_NE(composition.find("verified 66.7%"), std::string::npos);
  EXPECT_NE(composition.find("unverified 33.3%"), std::string::npos);
  (void)first_row_start;
}

TEST(Render, EmptyData) {
  EXPECT_EQ(render_stacked({}, 10, 4), "(no data)\n");
  StatusCounts empty;
  EXPECT_NE(render_composition(empty).find("verified 0.0%"), std::string::npos);
}

TEST(Render, CsvExport) {
  std::vector<StatusCounts> entities(3);
  entities[0].add(Status::kVerified);
  entities[1].add(Status::kUnverified);
  entities[2].add(Status::kVerified);
  entities[2].add(Status::kUnrecorded);
  std::string csv = to_csv(entities);
  // Header + three rows, ordered by correctness (all-verified first).
  auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 4);
  EXPECT_EQ(csv.substr(0, 5), "index");
  EXPECT_NE(csv.find("0,1.000000,"), std::string::npos);   // all-verified entity first
  EXPECT_NE(csv.find(",1\n"), std::string::npos);          // totals column
}

TEST(Render, Table) {
  std::string table = render_table({{"rows", "5"}, {"cols", "7"}}, 8);
  EXPECT_NE(table.find("rows     5"), std::string::npos);
  EXPECT_NE(table.find("cols     7"), std::string::npos);
}

}  // namespace
}  // namespace rpslyzer::report
