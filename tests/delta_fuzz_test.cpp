// Fuzz the journal surface of the delta pipeline: malformed batch texts —
// truncation, CRLF endings, interleaved garbage paragraphs, out-of-order
// serials, framing damage — must be refused atomically, with the last-good
// generation still serving. Follows shard_fuzz_test.cpp's fixed-seed
// pattern; override with RPSLYZER_FUZZ_SEED to explore (CI stays
// deterministic on the default).

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rpslyzer/delta/equiv.hpp"
#include "rpslyzer/delta/follower.hpp"
#include "rpslyzer/delta/journal.hpp"
#include "rpslyzer/delta/pipeline.hpp"
#include "rpslyzer/synth/churn.hpp"
#include "rpslyzer/synth/generator.hpp"

namespace rpslyzer::delta {
namespace {

std::uint32_t seed_from_env() {
  if (const char* env = std::getenv("RPSLYZER_FUZZ_SEED")) {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 20260806u;
}

const synth::InternetGenerator& generator() {
  static const synth::InternetGenerator g = [] {
    synth::SynthConfig config;
    config.scale = 0.04;
    config.seed = 23;
    return synth::InternetGenerator(config);
  }();
  return g;
}

std::vector<std::pair<std::string, std::string>> ordered_dumps() {
  std::vector<std::pair<std::string, std::string>> dumps;
  for (const auto& name : synth::irr_names()) {
    dumps.emplace_back(name, generator().irr_dumps().at(name));
  }
  return dumps;
}

/// Corruptions that must make a valid journal text unparseable. Each is
/// guaranteed-fatal by the format's rules, so the property is strict:
/// parse_journal returns nullopt with a reason.
std::string corrupt(const std::string& text, std::mt19937& rng) {
  const auto pick = [&](std::size_t lo, std::size_t hi) {
    return std::uniform_int_distribution<std::size_t>(lo, hi)(rng);
  };
  std::string out = text;
  switch (pick(0, 6)) {
    case 0: {  // truncate strictly inside the text: %END vanishes or tears
      // (cutting only the final '\n' would still parse — the line splitter
      // tolerates a missing trailing newline — so cut at least 2 bytes,
      // which always tears the %END serial)
      out.resize(pick(0, out.size() - 2));
      return out;
    }
    case 1: {  // CRLF-ify one line ending (the format demands bare LF)
      std::vector<std::size_t> newlines;
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] == '\n') newlines.push_back(i);
      }
      out.insert(newlines[pick(0, newlines.size() - 1)], 1, '\r');
      return out;
    }
    case 2: {  // interleave a garbage paragraph after the first op header
      const std::size_t header_end = out.find("\n\n", out.find("%START"));
      out.insert(header_end + 2, "this is not rpsl at all\njust noise\n\n");
      return out;
    }
    case 3: {  // out-of-order serials: rewrite the last op's serial to 0
      const std::size_t add = out.rfind("ADD ");
      const std::size_t del = out.rfind("DEL ");
      const std::size_t op =
          (add == std::string::npos)                        ? del
          : (del == std::string::npos || add > del) ? add : del;
      const std::size_t serial_start = op + 4;
      const std::size_t serial_end = out.find(' ', serial_start);
      out.replace(serial_start, serial_end - serial_start, "0");
      return out;
    }
    case 4:  // content after %END
      out += "ADD 999999 RADB\n\naut-num: AS999999\n";
      return out;
    case 5: {  // %START serial disagrees with the first op
      const std::size_t start = out.find("%START ");
      const std::size_t eol = out.find('\n', start);
      out.replace(start, eol - start, "%START 999999999");
      return out;
    }
    default:  // drop the %START line entirely
      out.erase(0, out.find('\n') + 1);
      return out;
  }
}

TEST(DeltaFuzz, CorruptedJournalsAreRefusedWithReasons) {
  std::mt19937 rng(seed_from_env());
  synth::ChurnConfig config;
  config.seed = seed_from_env() ^ 0x85ebca6bu;
  config.ops_per_batch = 6;
  synth::ChurnGenerator churn(generator().irr_dumps(), config);
  for (int iteration = 0; iteration < 200; ++iteration) {
    SCOPED_TRACE("iteration=" + std::to_string(iteration));
    const std::string valid = render_journal(churn.next_batch());
    ASSERT_TRUE(parse_journal(valid).has_value());
    const std::string damaged = corrupt(valid, rng);
    std::string error;
    EXPECT_FALSE(parse_journal(damaged, &error).has_value())
        << "damaged text parsed:\n"
        << damaged;
    EXPECT_FALSE(error.empty());
  }
}

TEST(DeltaFuzz, RefusedBatchesNeverDisturbTheServingGeneration) {
  DeltaPipeline pipeline(ordered_dumps(), generator().caida_serial1());
  synth::ChurnConfig config;
  config.seed = seed_from_env() ^ 0xfd7046c5u;
  config.ops_per_batch = 6;
  synth::ChurnGenerator churn(generator().irr_dumps(), config);

  EquivalenceOptions digest_options;
  digest_options.max_sets = 30;
  digest_options.max_asns = 30;
  digest_options.max_routes = 20;

  for (int round = 0; round < 12; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const JournalBatch good = churn.next_batch();

    // A batch whose op refers to an unknown source refuses at prepare time;
    // the serving generation pointer and its observable behavior (digest)
    // must be exactly what they were.
    const auto before = pipeline.current();
    const std::uint64_t digest_before =
        snapshot_digest(pipeline.current_snapshot(), digest_options);
    // Poison the final op: its serial is always beyond the applied serial,
    // so it cannot be skipped as idempotent replay before validation (the
    // batch's replay-lead op legitimately would be).
    JournalBatch poisoned = good;
    poisoned.ops.back().source = "NOT-A-SOURCE";
    const ApplyResult refused = pipeline.apply(poisoned);
    EXPECT_TRUE(refused.refused);
    EXPECT_EQ(pipeline.current().get(), before.get());
    EXPECT_EQ(snapshot_digest(pipeline.current_snapshot(), digest_options),
              digest_before);

    // The intact batch then applies on top of the undisturbed store.
    const ApplyResult applied = pipeline.apply(good);
    ASSERT_TRUE(applied.applied) << applied.error;
  }
}

TEST(DeltaFuzz, FollowerStopsAtTruncatedFileAndRecovers) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "delta_fuzz_journal";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  synth::ChurnConfig config;
  config.seed = seed_from_env() ^ 0x94d049bbu;
  config.ops_per_batch = 5;
  synth::ChurnGenerator churn(generator().irr_dumps(), config);
  const JournalBatch first = churn.next_batch();
  const JournalBatch second = churn.next_batch();
  const JournalBatch third = churn.next_batch();

  const auto write = [&](const JournalBatch& batch, bool truncated) {
    std::string text = render_journal(batch);
    if (truncated) text.resize(text.size() / 2);
    std::ofstream out(dir / journal_file_name(batch.first_serial), std::ios::binary);
    out << text;
  };
  write(first, false);
  write(second, true);  // torn mid-upload
  write(third, false);

  auto pipeline =
      std::make_shared<DeltaPipeline>(ordered_dumps(), generator().caida_serial1());
  FollowerConfig follower_config;
  follower_config.directory = dir;
  JournalFollower follower(pipeline, follower_config);

  // The scan stops at the poisoned file to preserve serial order: batch 1
  // applies, batches 2 and 3 wait.
  EXPECT_EQ(follower.poll_now(), 1u);
  EXPECT_EQ(pipeline->applied_serial(), first.last_serial);
  EXPECT_NE(follower.stats_line().find("poisoned="), std::string::npos)
      << follower.stats_line();

  // Same truncated file again: still poisoned, no progress, no re-parse churn.
  EXPECT_EQ(follower.poll_now(), 0u);

  // The writer finishes the upload (size changes): both remaining batches
  // land in order on the next poll.
  write(second, false);
  EXPECT_EQ(follower.poll_now(), 2u);
  EXPECT_EQ(pipeline->applied_serial(), third.last_serial);
  EXPECT_EQ(follower.stats_line().find("poisoned="), std::string::npos)
      << follower.stats_line();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rpslyzer::delta
