#include "rpslyzer/json/json.hpp"

#include <gtest/gtest.h>

namespace rpslyzer::json {
namespace {

TEST(Json, DumpScalars) {
  EXPECT_EQ(dump(Value(nullptr)), "null");
  EXPECT_EQ(dump(Value(true)), "true");
  EXPECT_EQ(dump(Value(false)), "false");
  EXPECT_EQ(dump(Value(42)), "42");
  EXPECT_EQ(dump(Value(-7)), "-7");
  EXPECT_EQ(dump(Value("hi")), "\"hi\"");
}

TEST(Json, DumpEscapes) {
  EXPECT_EQ(dump(Value("a\"b\\c\nd")), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(dump(Value(std::string("\x01", 1))), "\"\\u0001\"");
}

TEST(Json, DumpContainers) {
  Object o;
  o["b"] = Value(1);
  o["a"] = Value(Array{Value(1), Value("x")});
  // Keys are sorted for deterministic output.
  EXPECT_EQ(dump(Value(std::move(o))), R"({"a":[1,"x"],"b":1})");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("-12").as_int(), -12);
  EXPECT_DOUBLE_EQ(parse("2.5e1").as_double(), 25.0);
  EXPECT_EQ(parse("\"a b\"").as_string(), "a b");
}

TEST(Json, ParseNested) {
  Value v = parse(R"({"as": [1, 2, {"deep": "yes"}], "n": null})");
  EXPECT_EQ(v.at("as").at(2).at("deep").as_string(), "yes");
  EXPECT_TRUE(v.at("n").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(parse(R"("A\t")").as_string(), "A\t");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");  // UTF-8 é
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(parse(""), JsonError);
  EXPECT_THROW(parse("{"), JsonError);
  EXPECT_THROW(parse("[1,]"), JsonError);
  EXPECT_THROW(parse("tru"), JsonError);
  EXPECT_THROW(parse("1 2"), JsonError);
  EXPECT_THROW(parse("\"unterminated"), JsonError);
  EXPECT_THROW(parse("{\"a\":1,}"), JsonError);
}

TEST(Json, TypeErrors) {
  Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), JsonError);
  EXPECT_THROW(v.at("k"), JsonError);
  EXPECT_THROW(v.at(5), JsonError);
  EXPECT_THROW(parse("1.5").as_int(), JsonError);
  EXPECT_EQ(parse("2.0").as_int(), 2);  // integral double converts
}

TEST(Json, RoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":[],"d":{}},"e":-9007199254740991})";
  Value v = parse(text);
  EXPECT_EQ(dump(v), text);
  // Pretty output parses back to the same document.
  EXPECT_EQ(parse(dump_pretty(v)), v);
}

TEST(Json, Int64RoundTrip) {
  Value v = parse("9223372036854775807");
  EXPECT_EQ(v.as_int(), INT64_MAX);
  EXPECT_EQ(dump(v), "9223372036854775807");
}

TEST(Json, OperatorBracketBuildsObjects) {
  Value v;
  v["x"]["y"] = Value(3);
  EXPECT_EQ(v.at("x").at("y").as_int(), 3);
}

}  // namespace
}  // namespace rpslyzer::json
