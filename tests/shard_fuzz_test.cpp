// Property/fuzz test for the shard splitter and the object lexer's
// boundary conditions: for random RPSL-ish dump texts (CRLF endings,
// missing trailing newlines, runs of 3+ blank lines, comment-only
// paragraphs, '%' server remarks, continuation lines, whitespace-only
// separators) and random shard targets down to 1 byte, lexing the shards
// with their line offsets must reproduce exactly the object sequence and
// diagnostics of lexing the unsplit text. Follows aspath_fuzz_test.cpp's
// fixed-seed pattern; override the seed with RPSLYZER_FUZZ_SEED to explore
// (CI stays deterministic on the default).

#include <cstdlib>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::rpsl {
namespace {

std::uint32_t seed_from_env() {
  if (const char* env = std::getenv("RPSLYZER_FUZZ_SEED")) {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 20260806u;
}

/// Random dump generator biased toward the lexer's edge cases.
class DumpGen {
 public:
  explicit DumpGen(std::uint32_t seed) : rng_(seed) {}

  std::string generate() {
    std::string text;
    const std::size_t paragraphs = pick(0, 8);
    for (std::size_t i = 0; i < paragraphs; ++i) {
      paragraph(text);
      // Separator run: 1 blank line usually, sometimes 3+ in a row, each
      // independently LF/CRLF/whitespace-only.
      const std::size_t blanks = pick(0, 4) == 0 ? pick(3, 5) : 1;
      for (std::size_t b = 0; b < blanks; ++b) blank_line(text);
    }
    if (pick(0, 2) == 0) paragraph(text);  // paragraph with no trailing separator
    if (!text.empty() && pick(0, 3) == 0 && text.back() == '\n') {
      text.pop_back();  // missing trailing newline
      if (!text.empty() && text.back() == '\r') text.pop_back();
    }
    return text;
  }

 private:
  std::mt19937 rng_;

  std::size_t pick(std::size_t lo, std::size_t hi) {
    return std::uniform_int_distribution<std::size_t>(lo, hi)(rng_);
  }

  void eol(std::string& text) { text += pick(0, 2) == 0 ? "\r\n" : "\n"; }

  void blank_line(std::string& text) {
    switch (pick(0, 3)) {
      case 0:
        text += "   ";  // whitespace-only separator
        break;
      case 1:
        text += "\t";
        break;
      default:
        break;  // truly empty
    }
    eol(text);
  }

  void line(std::string& text, std::string content) {
    text += content;
    if (pick(0, 4) == 0) text += " # trailing comment";
    eol(text);
  }

  void paragraph(std::string& text) {
    switch (pick(0, 9)) {
      case 0:  // comment-only paragraph (keeps "no object" open — no split!)
        line(text, "# comment-only paragraph");
        if (pick(0, 1) == 0) line(text, "# second comment line");
        return;
      case 1:  // server remark paragraph
        line(text, "% server remark");
        return;
      case 2:  // malformed lines: diagnostics must line up across shards
        line(text, "this line has no colon");
        line(text, "  continuation outside any attribute");
        return;
      default:
        break;
    }
    const std::size_t object = pick(0, 999);
    line(text, "aut-num: AS" + std::to_string(object));
    const std::size_t attrs = pick(0, 4);
    for (std::size_t a = 0; a < attrs; ++a) {
      switch (pick(0, 5)) {
        case 0:
          line(text, "remarks: value " + std::to_string(pick(0, 99)));
          line(text, " continued across lines");
          break;
        case 1:
          line(text, "+empty-plus continuation target");
          break;
        case 2:
          line(text, "# full-line comment keeps the object open");
          break;
        case 3:
          line(text, "% remark inside an object");
          break;
        default:
          line(text, "import: from AS" + std::to_string(pick(1, 99)) + " accept ANY");
          break;
      }
    }
  }
};

void expect_same_lex(const std::string& text, std::size_t target_bytes) {
  SCOPED_TRACE("target_bytes=" + std::to_string(target_bytes) +
               " text=" + ::testing::PrintToString(text));
  util::Diagnostics whole_diag;
  const std::vector<RawObject> whole = lex_objects(text, "FUZZ", whole_diag);

  const std::vector<Shard> shards = shard_objects(text, target_bytes);

  // Shards partition the text exactly.
  std::string reassembled;
  for (const auto& shard : shards) reassembled += shard.text;
  ASSERT_EQ(reassembled, text);
  // Every non-final shard ends with an object separator (a blank line).
  for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
    const std::string_view t = shards[i].text;
    const std::size_t last_nl = t.rfind('\n', t.size() - 2);
    const std::string_view last_line =
        t.substr(last_nl == std::string_view::npos ? 0 : last_nl + 1);
    EXPECT_TRUE(util::trim(last_line).empty()) << "shard " << i;
  }

  util::Diagnostics shard_diag;
  std::vector<RawObject> relexed;
  for (const auto& shard : shards) {
    auto objects = lex_objects(shard.text, "FUZZ", shard_diag, shard.line_offset);
    for (auto& object : objects) relexed.push_back(std::move(object));
  }

  ASSERT_EQ(relexed.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(relexed[i].class_name, whole[i].class_name) << "object " << i;
    EXPECT_EQ(relexed[i].key, whole[i].key) << "object " << i;
    EXPECT_EQ(relexed[i].source, whole[i].source) << "object " << i;
    EXPECT_EQ(relexed[i].line, whole[i].line) << "object " << i;
    ASSERT_EQ(relexed[i].attributes.size(), whole[i].attributes.size()) << "object " << i;
    for (std::size_t a = 0; a < whole[i].attributes.size(); ++a) {
      EXPECT_EQ(relexed[i].attributes[a].name, whole[i].attributes[a].name);
      EXPECT_EQ(relexed[i].attributes[a].value, whole[i].attributes[a].value);
      EXPECT_EQ(relexed[i].attributes[a].line, whole[i].attributes[a].line);
    }
  }

  ASSERT_EQ(shard_diag.all().size(), whole_diag.all().size());
  for (std::size_t i = 0; i < whole_diag.all().size(); ++i) {
    EXPECT_EQ(shard_diag.all()[i].message, whole_diag.all()[i].message);
    EXPECT_EQ(shard_diag.all()[i].location, whole_diag.all()[i].location);
  }
}

TEST(ShardFuzz, RandomSplitsRelexIdentically) {
  DumpGen gen(seed_from_env());
  std::mt19937 rng(seed_from_env() ^ 0x9e3779b9u);
  for (int iteration = 0; iteration < 300; ++iteration) {
    SCOPED_TRACE("iteration=" + std::to_string(iteration));
    const std::string text = gen.generate();
    const std::size_t targets[] = {
        1, 7, 64, 256,
        std::uniform_int_distribution<std::size_t>(1, text.size() + 2)(rng),
        text.size() + 1};
    for (std::size_t target : targets) expect_same_lex(text, target);
  }
}

// Hand-picked boundary conditions, kept explicit so a regression names the
// exact rule it broke rather than a fuzz iteration.
TEST(ShardFuzz, CrlfBlankLinesAreBoundaries) {
  const std::string text =
      "aut-num: AS1\r\nas-name: ONE\r\n\r\naut-num: AS2\r\nas-name: TWO\r\n";
  for (std::size_t target : {std::size_t{1}, std::size_t{20}, std::size_t{1000}}) {
    expect_same_lex(text, target);
  }
  const std::vector<Shard> shards = shard_objects(text, 1);
  EXPECT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[1].line_offset, 3u);
}

TEST(ShardFuzz, NoTrailingNewline) {
  expect_same_lex("aut-num: AS1\n\naut-num: AS2\nas-name: TWO", 1);
  expect_same_lex("aut-num: AS1", 1);
}

TEST(ShardFuzz, LongBlankRunsSplitOnce) {
  const std::string text = "aut-num: AS1\n\n\n\n\naut-num: AS2\n";
  expect_same_lex(text, 1);
  // Each blank line is a legal boundary; objects must still pair up with
  // their own attributes.
  const std::vector<Shard> shards = shard_objects(text, 1);
  EXPECT_GE(shards.size(), 2u);
}

TEST(ShardFuzz, CommentOnlyParagraphNeverSplitsAnObjectOpenBelowIt) {
  // '#' lines keep the lexer's object open, so the splitter must not treat
  // them as boundaries — only the true blank lines around them.
  const std::string text =
      "aut-num: AS1\n# comment paragraph\nas-name: STILL-AS1\n\n"
      "# lone comment paragraph\n\n"
      "aut-num: AS2\n";
  for (std::size_t target : {std::size_t{1}, std::size_t{10}, std::size_t{30}}) {
    expect_same_lex(text, target);
  }
}

TEST(ShardFuzz, ObjectLargerThanTargetStaysWhole) {
  std::string text = "aut-num: AS1\n";
  for (int i = 0; i < 100; ++i) {
    text += "remarks: padding line " + std::to_string(i) + "\n";
  }
  text += "\naut-num: AS2\n";
  const std::vector<Shard> shards = shard_objects(text, 16);
  ASSERT_EQ(shards.size(), 2u);  // the oversized object is one shard
  expect_same_lex(text, 16);
}

TEST(ShardFuzz, EmptyAndBlankOnlyTexts) {
  EXPECT_TRUE(shard_objects("", 1).empty());
  expect_same_lex("\n", 1);
  expect_same_lex("\r\n\r\n\r\n", 1);
  expect_same_lex("   \n\t\n", 1);
}

}  // namespace
}  // namespace rpslyzer::rpsl
