// Property sweeps over the RPSL range-operator algebra: the interval-based
// implementation must agree with a brute-force enumeration of "is p inside
// base and is its length selected", across operators, base lengths, and
// candidate lengths, for both families.

#include <gtest/gtest.h>

#include "rpslyzer/net/prefix.hpp"

namespace rpslyzer::net {
namespace {

/// Ground truth: does `op` applied to a base of length `len` select
/// candidate length `cl` (families handled by the caller)?
bool selects(const RangeOp& op, std::uint8_t len, std::uint8_t cl, std::uint8_t max) {
  switch (op.kind) {
    case RangeOp::Kind::kNone:
      return cl == len;
    case RangeOp::Kind::kMinus:
      return cl > len && cl <= max;
    case RangeOp::Kind::kPlus:
      return cl >= len && cl <= max;
    case RangeOp::Kind::kExact:
      return cl == op.n && cl >= len && cl <= max;
    case RangeOp::Kind::kRange:
      return cl >= op.n && cl <= op.m && cl >= len && cl <= max;
  }
  return false;
}

struct OpCase {
  RangeOp op;
  const char* name;
};

class RangeOpSweep : public ::testing::TestWithParam<OpCase> {};

TEST_P(RangeOpSweep, IntervalMatchesBruteForceV4) {
  const RangeOp op = GetParam().op;
  const IpAddress base_addr = *IpAddress::parse("10.0.0.0");
  for (std::uint8_t len = 0; len <= 32; ++len) {
    const Prefix base(base_addr, len);
    for (std::uint8_t cl = 0; cl <= 32; ++cl) {
      const Prefix candidate(base_addr, cl);  // same bits: inside iff cl >= len
      const bool inside = cl >= len;
      const bool expected = inside && selects(op, len, cl, 32);
      EXPECT_EQ(matches(base, op, candidate), expected)
          << GetParam().name << " len=" << int(len) << " cl=" << int(cl);
    }
  }
}

TEST_P(RangeOpSweep, IntervalMatchesBruteForceV6) {
  const RangeOp op = GetParam().op;
  const IpAddress base_addr = *IpAddress::parse("2400::");
  for (std::uint8_t len = 0; len <= 128; len += 7) {
    const Prefix base(base_addr, len);
    for (std::uint8_t cl = 0; cl <= 128; cl += 5) {
      const Prefix candidate(base_addr, cl);
      const bool inside = cl >= len;
      const bool expected = inside && selects(op, len, cl, 128);
      EXPECT_EQ(matches(base, op, candidate), expected)
          << GetParam().name << " len=" << int(len) << " cl=" << int(cl);
    }
  }
}

TEST_P(RangeOpSweep, OutsidePrefixNeverMatches) {
  const RangeOp op = GetParam().op;
  const Prefix base = *Prefix::parse("10.0.0.0/8");
  const Prefix outside = *Prefix::parse("11.0.0.0/16");
  EXPECT_FALSE(matches(base, op, outside)) << GetParam().name;
  const Prefix wrong_family = *Prefix::parse("2400::/16");
  EXPECT_FALSE(matches(base, op, wrong_family)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Operators, RangeOpSweep,
    ::testing::Values(OpCase{RangeOp::none(), "none"}, OpCase{RangeOp::minus(), "minus"},
                      OpCase{RangeOp::plus(), "plus"}, OpCase{RangeOp::exact(0), "exact0"},
                      OpCase{RangeOp::exact(16), "exact16"},
                      OpCase{RangeOp::exact(24), "exact24"},
                      OpCase{RangeOp::exact(32), "exact32"},
                      OpCase{RangeOp::exact(128), "exact128"},
                      OpCase{RangeOp::range(8, 16), "range8_16"},
                      OpCase{RangeOp::range(16, 24), "range16_24"},
                      OpCase{RangeOp::range(24, 32), "range24_32"},
                      OpCase{RangeOp::range(0, 128), "range0_128"},
                      OpCase{RangeOp::range(48, 64), "range48_64"}),
    [](const auto& info) { return info.param.name; });

/// Composition ground truth: outer applied to the set {base^inner}.
bool composed_selects(const RangeOp& inner, const RangeOp& outer, std::uint8_t base_len,
                      std::uint8_t cl, std::uint8_t max) {
  // Enumerate intermediate lengths q selected by inner; outer then selects
  // more-specifics of a length-q element.
  for (int q = base_len; q <= max; ++q) {
    if (!selects(inner, base_len, static_cast<std::uint8_t>(q), max)) continue;
    if (selects(outer, static_cast<std::uint8_t>(q), cl, max)) return true;
  }
  return false;
}

struct ComposeCase {
  RangeOp inner;
  RangeOp outer;
  const char* name;
};

class ComposeSweep : public ::testing::TestWithParam<ComposeCase> {};

TEST_P(ComposeSweep, MatchesEnumeration) {
  const auto [inner, outer, name] = GetParam();
  const IpAddress base_addr = *IpAddress::parse("10.0.0.0");
  for (std::uint8_t len = 0; len <= 32; len += 4) {
    const Prefix base(base_addr, len);
    for (std::uint8_t cl = 0; cl <= 32; ++cl) {
      const Prefix candidate(base_addr, cl);
      const bool expected = cl >= len && composed_selects(inner, outer, len, cl, 32);
      EXPECT_EQ(matches_composed(base, inner, outer, candidate), expected)
          << name << " len=" << int(len) << " cl=" << int(cl);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Compositions, ComposeSweep,
    ::testing::Values(
        ComposeCase{RangeOp::plus(), RangeOp::minus(), "plus_minus"},
        ComposeCase{RangeOp::minus(), RangeOp::plus(), "minus_plus"},
        ComposeCase{RangeOp::minus(), RangeOp::minus(), "minus_minus"},
        ComposeCase{RangeOp::plus(), RangeOp::plus(), "plus_plus"},
        ComposeCase{RangeOp::range(10, 12), RangeOp::range(14, 16), "range_range"},
        ComposeCase{RangeOp::range(14, 16), RangeOp::range(10, 12), "range_range_empty"},
        ComposeCase{RangeOp::exact(16), RangeOp::exact(24), "exact_exact"},
        ComposeCase{RangeOp::exact(24), RangeOp::exact(16), "exact_exact_empty"},
        ComposeCase{RangeOp::none(), RangeOp::range(20, 28), "none_range"},
        ComposeCase{RangeOp::range(20, 28), RangeOp::none(), "range_none"},
        ComposeCase{RangeOp::exact(16), RangeOp::plus(), "exact_plus"},
        ComposeCase{RangeOp::exact(16), RangeOp::minus(), "exact_minus"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace rpslyzer::net
