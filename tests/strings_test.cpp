#include "rpslyzer/util/strings.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace rpslyzer::util {
namespace {

TEST(Strings, LowerUpper) {
  EXPECT_EQ(lower("AS-Foo_123"), "as-foo_123");
  EXPECT_EQ(upper("as-foo_123"), "AS-FOO_123");
  EXPECT_EQ(lower(""), "");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("IMPORT", "import"));
  EXPECT_TRUE(iequals("PeerAS", "peeras"));
  EXPECT_FALSE(iequals("import", "imports"));
  EXPECT_FALSE(iequals("import", "export"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, IStartsEndsWith) {
  EXPECT_TRUE(istarts_with("AS-HANABI", "as-"));
  EXPECT_FALSE(istarts_with("AS", "AS-"));
  EXPECT_TRUE(iends_with("foo.unicast", ".UNICAST"));
  EXPECT_FALSE(iends_with("uni", "unicast"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b \t"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\r\n"), "");
  EXPECT_EQ(trim_left("  x "), "x ");
  EXPECT_EQ(trim_right("  x "), "  x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  auto parts = split_ws("  from\tAS1   accept ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "from");
  EXPECT_EQ(parts[1], "AS1");
  EXPECT_EQ(parts[2], "accept");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, ParseU32) {
  EXPECT_EQ(parse_u32("0"), 0u);
  EXPECT_EQ(parse_u32("4294967295"), 4294967295u);
  EXPECT_EQ(parse_u32("4294967296"), std::nullopt);  // overflow
  EXPECT_EQ(parse_u32("12345678901"), std::nullopt);  // too long
  EXPECT_EQ(parse_u32(""), std::nullopt);
  EXPECT_EQ(parse_u32("-1"), std::nullopt);
  EXPECT_EQ(parse_u32("+1"), std::nullopt);
  EXPECT_EQ(parse_u32("12x"), std::nullopt);
}

TEST(Strings, ParseU8) {
  EXPECT_EQ(parse_u8("255"), 255);
  EXPECT_EQ(parse_u8("256"), std::nullopt);
}

TEST(Strings, CaseInsensitiveHashSet) {
  std::unordered_set<std::string, IHash, IEqual> set;
  set.insert("AS-FOO");
  EXPECT_TRUE(set.contains("as-foo"));
  EXPECT_TRUE(set.contains(std::string_view("As-FoO")));
  EXPECT_FALSE(set.contains("as-bar"));
}

TEST(Strings, ILessOrdersCaseInsensitively) {
  ILess less;
  EXPECT_TRUE(less("apple", "Banana"));
  EXPECT_FALSE(less("Banana", "apple"));
  EXPECT_FALSE(less("AS-FOO", "as-foo"));
  EXPECT_FALSE(less("as-foo", "AS-FOO"));
  EXPECT_TRUE(less("AS-FO", "as-foo"));  // shorter prefix sorts first
}

}  // namespace
}  // namespace rpslyzer::util
