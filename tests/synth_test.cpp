#include "rpslyzer/synth/generator.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/bgp/route.hpp"
#include "rpslyzer/net/martians.hpp"

namespace rpslyzer::synth {
namespace {

SynthConfig tiny() {
  SynthConfig config;
  config.seed = 3;
  config.tier1_count = 3;
  config.tier2_count = 6;
  config.tier3_count = 12;
  config.stub_count = 40;
  config.collectors = 3;
  config.decorative_empty_sets = 2;
  config.decorative_singleton_sets = 3;
  config.syntax_error_objects = 4;
  return config;
}

TEST(Topology, Deterministic) {
  Topology a = Topology::generate(tiny());
  Topology b = Topology::generate(tiny());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ases()[i].asn, b.ases()[i].asn);
    EXPECT_EQ(a.ases()[i].providers, b.ases()[i].providers);
    EXPECT_EQ(a.ases()[i].prefixes, b.ases()[i].prefixes);
  }
  SynthConfig other = tiny();
  other.seed = 4;
  Topology c = Topology::generate(other);
  // Different seeds rewire (same ASNs, different links with overwhelming
  // probability at this size).
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = a.ases()[i].providers != c.ases()[i].providers;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Topology, RelationshipsAreSymmetric) {
  Topology topo = Topology::generate(tiny());
  for (const auto& as : topo.ases()) {
    for (Asn p : as.providers) {
      const SynthAs* provider = topo.find(p);
      ASSERT_NE(provider, nullptr);
      EXPECT_TRUE(std::find(provider->customers.begin(), provider->customers.end(),
                            as.asn) != provider->customers.end());
      EXPECT_EQ(topo.relations().between(p, as.asn), relations::Relationship::kProvider);
    }
    for (Asn q : as.peers) {
      EXPECT_EQ(topo.relations().between(as.asn, q), relations::Relationship::kPeer);
    }
  }
}

TEST(Topology, PrefixesAreGlobalUnicastAndDisjoint) {
  Topology topo = Topology::generate(tiny());
  std::vector<net::Prefix> all;
  for (const auto& as : topo.ases()) {
    for (const auto& prefix : as.prefixes) {
      EXPECT_FALSE(net::is_martian(prefix)) << prefix.to_string();
      all.push_back(prefix);
    }
  }
  // No prefix covers another AS's prefix (clean allocations).
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i].covers(all[j]) || all[j].covers(all[i]))
          << all[i].to_string() << " vs " << all[j].to_string();
    }
  }
}

TEST(PrefixAllocatorTest, SkipsMartiansAndSlices) {
  PrefixAllocator alloc;
  // 11/16 range start; allocating many /16s never yields martian space.
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(net::is_martian(alloc.next_v4_16()));
  }
  PrefixAllocator alloc2;
  auto a = alloc2.next_v4_20();
  auto b = alloc2.next_v4_20();
  EXPECT_EQ(a.length(), 20);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.covers(b));
  auto v6 = alloc2.next_v6_32();
  EXPECT_FALSE(v6.is_v4());
  EXPECT_FALSE(net::is_martian(v6));
}

TEST(RouteTreeTest, OriginAndPreference) {
  Topology topo = Topology::generate(tiny());
  const Asn origin = topo.tier_members(Tier::kStub).front();
  RouteTree tree = RouteTree::compute(topo, origin);
  EXPECT_TRUE(tree.reachable(origin));
  EXPECT_EQ(tree.type(origin), RouteType::kSelf);
  EXPECT_EQ(tree.path_from(origin), (std::vector<Asn>{origin}));

  // Everyone reaches the origin (connected topology, valley-free is enough
  // because every AS has an uphill path to the Tier-1 clique).
  for (const auto& as : topo.ases()) {
    EXPECT_TRUE(tree.reachable(as.asn)) << as.asn;
    auto path = tree.path_from(as.asn);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), as.asn);
    EXPECT_EQ(path.back(), origin);
    // Providers of the origin learn it as a customer route.
    if (std::find(as.customers.begin(), as.customers.end(), origin) != as.customers.end()) {
      EXPECT_EQ(tree.type(as.asn), RouteType::kCustomer);
    }
  }
}

TEST(RouteTreeTest, PrefersCustomerOverPeerOverProvider) {
  // Diamond: origin O is customer of A and peer of B; C buys from both.
  SynthConfig config = tiny();
  Topology topo = Topology::generate(config);
  // Use the generated topology for a general property instead: no AS with a
  // customer route to the origin selects a peer/provider route.
  const Asn origin = topo.tier_members(Tier::kStub).front();
  RouteTree tree = RouteTree::compute(topo, origin);
  for (const auto& as : topo.ases()) {
    if (!tree.reachable(as.asn)) continue;
    auto path = tree.path_from(as.asn);
    if (path.size() < 2) continue;
    const Asn next = path[1];
    // If the next hop is reachable as a customer-route, the type must not
    // be provider-learned while a customer path exists via that neighbor.
    if (tree.type(as.asn) == RouteType::kCustomer) {
      EXPECT_TRUE(std::find(as.customers.begin(), as.customers.end(), next) !=
                  as.customers.end());
    }
  }
}

TEST(Generator, DumpsCoverAllIrrs) {
  InternetGenerator gen(tiny());
  EXPECT_EQ(gen.irr_dumps().size(), 13u);
  std::size_t non_empty = 0;
  for (const auto& [name, text] : gen.irr_dumps()) {
    if (!text.empty()) ++non_empty;
  }
  EXPECT_GE(non_empty, 8u);
  EXPECT_FALSE(gen.caida_serial1().empty());
  EXPECT_EQ(gen.collector_peers().size(), 3u);
}

TEST(Generator, BgpDumpsParse) {
  InternetGenerator gen(tiny());
  auto dumps = gen.bgp_dumps();
  ASSERT_EQ(dumps.size(), 3u);
  std::size_t total = 0;
  for (const auto& dump : dumps) {
    bgp::DumpStats stats;
    auto routes = bgp::parse_table_dump(dump, &stats);
    EXPECT_EQ(stats.malformed, 0u);
    EXPECT_EQ(stats.with_as_set, 0u);
    total += routes.size();
  }
  EXPECT_GT(total, 100u);
}

TEST(Generator, PlanReflectsConfigKnobs) {
  SynthConfig config = tiny();
  config.p_missing_aut_num = 0.0;
  config.p_zero_rules = 0.0;
  InternetGenerator gen(config);
  // LACNIC-homed aut-nums may still be rule-stripped; nothing else is.
  for (Asn asn : gen.plan().zero_rules) {
    EXPECT_NE(gen.irr_dumps().at("LACNIC").find("AS" + std::to_string(asn)),
              std::string::npos);
  }
  EXPECT_TRUE(gen.plan().missing_aut_num.empty());

  SynthConfig none_config = tiny();
  none_config.p_export_self_misuse = 0.0;
  none_config.p_import_customer_misuse = 0.0;
  none_config.p_import_peeras = 0.0;
  InternetGenerator strict_gen(none_config);
  EXPECT_TRUE(strict_gen.plan().export_self_misuse.empty());
}

TEST(Generator, ScaleGrowsTopology) {
  SynthConfig small = tiny();
  SynthConfig big = tiny();
  big.scale = 2.0;
  EXPECT_EQ(InternetGenerator(big).topology().size(),
            2 * InternetGenerator(small).topology().size());
}

}  // namespace
}  // namespace rpslyzer::synth
