#include "rpslyzer/query/query.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"

namespace rpslyzer::query {
namespace {

struct Fixture {
  util::Diagnostics diag;
  ir::Ir ir;
  irr::Index index;
  QueryEngine engine;

  Fixture()
      : ir(irr::parse_dump(
            "aut-num: AS64500\n"
            "import: from AS64501 accept ANY\n"
            "export: to AS64501 announce AS-CONE\n\n"
            "as-set: AS-CONE\nmembers: AS64500, AS-SUB\n\n"
            "as-set: AS-SUB\nmembers: AS64502\n\n"
            "as-set: AS-EMPTY\n\n"
            "route-set: RS-NETS\nmembers: 192.0.2.0/24^+, AS64500^24\n\n"
            "route: 10.0.0.0/8\norigin: AS64500\n\n"
            "route: 10.64.0.0/16\norigin: AS64500\n\n"
            "route6: 2001:db8::/32\norigin: AS64500\n\n"
            "route: 198.51.100.0/24\norigin: AS64502\n",
            "TEST", diag)),
        index(ir),
        engine(index) {}
};

Fixture& fx() {
  static Fixture f;
  return f;
}

TEST(QueryEngine, FramingRules) {
  EXPECT_EQ(frame_response(""), "C\n");
  EXPECT_EQ(frame_response("abc"), "A4\nabc\nC\n");   // length counts the newline
  EXPECT_EQ(frame_response("abc\n"), "A4\nabc\nC\n");
}

TEST(QueryEngine, OriginV4) {
  EXPECT_EQ(fx().engine.evaluate("!gAS64500"), "A24\n10.0.0.0/8 10.64.0.0/16\nC\n");
  // The leading '!' is optional.
  EXPECT_EQ(fx().engine.evaluate("gAS64500"), fx().engine.evaluate("!gAS64500"));
}

TEST(QueryEngine, OriginV6) {
  EXPECT_EQ(fx().engine.evaluate("!6AS64500"), "A14\n2001:db8::/32\nC\n");
  // AS with routes but none in the family: success without data.
  EXPECT_EQ(fx().engine.evaluate("!6AS64502"), "C\n");
}

TEST(QueryEngine, OriginUnknownAs) {
  EXPECT_EQ(fx().engine.evaluate("!gAS99"), "D\n");
  EXPECT_EQ(fx().engine.evaluate("!gBOGUS")[0], 'F');
}

TEST(QueryEngine, SetMembersDirect) {
  EXPECT_EQ(fx().engine.evaluate("!iAS-CONE"), "A15\nAS64500 AS-SUB\nC\n");
}

TEST(QueryEngine, SetMembersRecursive) {
  EXPECT_EQ(fx().engine.evaluate("!iAS-CONE,1"), "A16\nAS64500 AS64502\nC\n");
}

TEST(QueryEngine, RouteSetMembers) {
  EXPECT_EQ(fx().engine.evaluate("!iRS-NETS"), "A26\n192.0.2.0/24^+ AS64500^24\nC\n");
}

TEST(QueryEngine, SetPrefixes) {
  // !a resolves every member's route objects, both families.
  std::string response = fx().engine.evaluate("!aAS-CONE");
  EXPECT_NE(response.find("10.0.0.0/8"), std::string::npos);
  EXPECT_NE(response.find("198.51.100.0/24"), std::string::npos);
  EXPECT_NE(response.find("2001:db8::/32"), std::string::npos);

  std::string v4_only = fx().engine.evaluate("!a4AS-CONE");
  EXPECT_NE(v4_only.find("10.0.0.0/8"), std::string::npos);
  EXPECT_EQ(v4_only.find("2001:db8::/32"), std::string::npos);

  std::string v6_only = fx().engine.evaluate("!a6AS-CONE");
  EXPECT_EQ(v6_only.find("10.0.0.0/8"), std::string::npos);
  EXPECT_NE(v6_only.find("2001:db8::/32"), std::string::npos);
}

TEST(QueryEngine, SetPrefixesForBareAsn) {
  EXPECT_EQ(fx().engine.evaluate("!aAS64502"), "A16\n198.51.100.0/24\nC\n");
}

TEST(QueryEngine, AutNumSummary) {
  EXPECT_EQ(fx().engine.evaluate("!oAS64500"),
            "A48\naut-num AS64500 source TEST imports 1 exports 1\nC\n");
  EXPECT_EQ(fx().engine.evaluate("!oAS1"), "D\n");
}

TEST(QueryEngine, Errors) {
  EXPECT_EQ(fx().engine.evaluate("")[0], 'F');
  EXPECT_EQ(fx().engine.evaluate("!z123")[0], 'F');
  EXPECT_EQ(fx().engine.evaluate("!iAS-NOPE"), "D\n");
}

// The daemon (src/server) forwards query lines verbatim and relies on these
// framings being exact; every wire-visible shape is pinned here.
TEST(QueryEngine, FramingSuccessWithoutData) {
  // A defined set with zero members answers success-without-data, not D.
  EXPECT_EQ(fx().engine.evaluate("!iAS-EMPTY"), "C\n");
  // An AS with route objects but none in the requested family likewise.
  EXPECT_EQ(fx().engine.evaluate("!6AS64502"), "C\n");
  EXPECT_EQ(fx().engine.evaluate("!a6AS64502"), "C\n");
}

TEST(QueryEngine, FramingUnknownKey) {
  EXPECT_EQ(fx().engine.evaluate("!gAS4200000000"), "D\n");
  EXPECT_EQ(fx().engine.evaluate("!6AS4200000000"), "D\n");
  EXPECT_EQ(fx().engine.evaluate("!aAS-UNKNOWN"), "D\n");
  EXPECT_EQ(fx().engine.evaluate("!iRS-UNKNOWN"), "D\n");
  EXPECT_EQ(fx().engine.evaluate("!oAS4200000000"), "D\n");
}

TEST(QueryEngine, FramingMalformed) {
  EXPECT_EQ(fx().engine.evaluate("!g"), "F expected an AS number\n");
  EXPECT_EQ(fx().engine.evaluate("!gNOTANAS"), "F expected an AS number\n");
  EXPECT_EQ(fx().engine.evaluate("!oBOGUS"), "F expected an AS number\n");
  EXPECT_EQ(fx().engine.evaluate("!"), "F empty query\n");
  EXPECT_EQ(fx().engine.evaluate("   "), "F empty query\n");
  EXPECT_EQ(fx().engine.evaluate("!zUNSUPPORTED"), "F unsupported query\n");
}

TEST(QueryEngine, A6FamilyRestriction) {
  // !a6 over a set whose members have v4-only route objects: C, not D.
  EXPECT_EQ(fx().engine.evaluate("!a6AS-SUB"), "C\n");
  EXPECT_EQ(fx().engine.evaluate("!a6AS-CONE"), "A14\n2001:db8::/32\nC\n");
  EXPECT_EQ(fx().engine.evaluate("!a4AS64502"), "A16\n198.51.100.0/24\nC\n");
}

TEST(QueryEngine, LeadingBangOptionalEverywhere) {
  for (const char* query : {"gAS64500", "6AS64500", "iAS-CONE,1", "aAS-CONE",
                            "oAS64500", "zUNSUPPORTED"}) {
    EXPECT_EQ(fx().engine.evaluate(query),
              fx().engine.evaluate("!" + std::string(query)))
        << query;
  }
}

TEST(QueryEngine, CaseInsensitiveNames) {
  EXPECT_EQ(fx().engine.evaluate("!ias-cone"), fx().engine.evaluate("!iAS-CONE"));
  EXPECT_EQ(fx().engine.evaluate("!gas64500"), fx().engine.evaluate("!gAS64500"));
}

}  // namespace
}  // namespace rpslyzer::query
