#include <gtest/gtest.h>

#include "rpslyzer/rpsl/expr_parser.hpp"

namespace rpslyzer::rpsl {
namespace {

using namespace rpslyzer::ir;

struct Fixture {
  util::Diagnostics diag;
  ParseContext ctx{&diag, "aut-num:AS64500", "TEST", 1};
};

Filter parse(Fixture& f, std::string_view text) { return parse_filter(text, f.ctx); }

TEST(FilterParser, Any) {
  Fixture f;
  EXPECT_TRUE(std::holds_alternative<FilterAny>(parse(f, "ANY").node));
  EXPECT_TRUE(std::holds_alternative<FilterAny>(parse(f, "any").node));
  EXPECT_TRUE(std::holds_alternative<FilterAny>(parse(f, "AS-ANY").node));
  EXPECT_TRUE(std::holds_alternative<FilterAny>(parse(f, "RS-ANY").node));
  EXPECT_TRUE(f.diag.empty());
}

TEST(FilterParser, PeerAsAndMartian) {
  Fixture f;
  EXPECT_TRUE(std::holds_alternative<FilterPeerAs>(parse(f, "PeerAS").node));
  EXPECT_TRUE(std::holds_alternative<FilterPeerAs>(parse(f, "peeras").node));
  EXPECT_TRUE(std::holds_alternative<FilterFltrMartian>(parse(f, "fltr-martian").node));
}

TEST(FilterParser, AsNum) {
  Fixture f;
  Filter flt = parse(f, "AS64500");
  const auto* n = std::get_if<FilterAsNum>(&flt.node);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->asn, 64500u);
  EXPECT_TRUE(n->op.is_none());

  flt = parse(f, "AS64500^+");
  const auto* n2 = std::get_if<FilterAsNum>(&flt.node);
  ASSERT_NE(n2, nullptr);
  EXPECT_EQ(n2->op, net::RangeOp::plus());
  EXPECT_TRUE(f.diag.empty());
}

TEST(FilterParser, AsSetWithRangeOp) {
  Fixture f;
  Filter flt = parse(f, "AS-HANABI^24-32");
  const auto* s = std::get_if<FilterAsSet>(&flt.node);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name, "AS-HANABI");
  EXPECT_EQ(s->op, net::RangeOp::range(24, 32));
}

TEST(FilterParser, HierarchicalAsSetName) {
  Fixture f;
  Filter flt = parse(f, "AS8267:AS-KRAKOW-1014");
  const auto* s = std::get_if<FilterAsSet>(&flt.node);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name, "AS8267:AS-KRAKOW-1014");
}

TEST(FilterParser, RouteSetWithNonStandardRangeOp) {
  // The paper's Appendix B: range operators applied to route-sets are
  // non-standard but supported.
  Fixture f;
  Filter flt = parse(f, "RS-MYROUTES^24");
  const auto* s = std::get_if<FilterRouteSet>(&flt.node);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name, "RS-MYROUTES");
  EXPECT_EQ(s->op, net::RangeOp::exact(24));
  EXPECT_TRUE(f.diag.empty());
}

TEST(FilterParser, FilterSetRef) {
  Fixture f;
  Filter flt = parse(f, "FLTR-BOGONS");
  EXPECT_NE(std::get_if<FilterFilterSet>(&flt.node), nullptr);
}

TEST(FilterParser, PrefixSet) {
  Fixture f;
  Filter flt = parse(f, "{ 192.0.2.0/24^+, 2001:db8::/32^48 }");
  const auto* p = std::get_if<FilterPrefixes>(&flt.node);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->prefixes.size(), 2u);
  EXPECT_EQ(p->prefixes.ranges()[0].prefix.to_string(), "192.0.2.0/24");
  EXPECT_EQ(p->prefixes.ranges()[1].op, net::RangeOp::exact(48));
  EXPECT_TRUE(p->op.is_none());
}

TEST(FilterParser, EmptyPrefixSet) {
  Fixture f;
  Filter flt = parse(f, "{}");
  const auto* p = std::get_if<FilterPrefixes>(&flt.node);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->prefixes.empty());
}

TEST(FilterParser, PrefixSetWithSetLevelOp) {
  Fixture f;
  Filter flt = parse(f, "{ 0.0.0.0/0 }^24-32");
  const auto* p = std::get_if<FilterPrefixes>(&flt.node);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->op, net::RangeOp::range(24, 32));
}

TEST(FilterParser, AsPathRegex) {
  Fixture f;
  Filter flt = parse(f, "<^AS13911 AS6327+$>");
  const auto* r = std::get_if<FilterAsPath>(&flt.node);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(to_string(r->regex), "<^AS13911 AS6327+$>");
  EXPECT_FALSE(uses_skipped_constructs(r->regex));
}

TEST(FilterParser, AsPathRegexWithSkippedConstructs) {
  Fixture f;
  Filter flt = parse(f, "<[AS64496-AS64511]>");
  const auto* r = std::get_if<FilterAsPath>(&flt.node);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(uses_skipped_constructs(r->regex));

  flt = parse(f, "<AS1~*>");
  const auto* r2 = std::get_if<FilterAsPath>(&flt.node);
  ASSERT_NE(r2, nullptr);
  EXPECT_TRUE(uses_skipped_constructs(r2->regex));
}

TEST(FilterParser, CommunityCall) {
  Fixture f;
  Filter flt = parse(f, "community(65535:666)");
  const auto* c = std::get_if<FilterCommunity>(&flt.node);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->method.empty());
  ASSERT_EQ(c->args.size(), 1u);
  EXPECT_EQ(c->args[0], "65535:666");

  flt = parse(f, "community.contains(65535:0, 65535:1)");
  const auto* c2 = std::get_if<FilterCommunity>(&flt.node);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->method, "contains");
  EXPECT_EQ(c2->args.size(), 2u);
}

TEST(FilterParser, BooleanOperators) {
  Fixture f;
  Filter flt = parse(f, "ANY AND NOT {0.0.0.0/0, ::/0}");
  const auto* a = std::get_if<FilterAnd>(&flt.node);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(std::holds_alternative<FilterAny>(a->left->node));
  const auto* n = std::get_if<FilterNot>(&a->right->node);
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(std::holds_alternative<FilterPrefixes>(n->inner->node));
  EXPECT_TRUE(f.diag.empty());
}

TEST(FilterParser, PrecedenceOrBelowAnd) {
  Fixture f;
  // a OR b AND c == a OR (b AND c)
  Filter flt = parse(f, "AS1 OR AS2 AND AS3");
  const auto* o = std::get_if<FilterOr>(&flt.node);
  ASSERT_NE(o, nullptr);
  EXPECT_NE(std::get_if<FilterAsNum>(&o->left->node), nullptr);
  EXPECT_NE(std::get_if<FilterAnd>(&o->right->node), nullptr);
}

TEST(FilterParser, ParenthesesOverridePrecedence) {
  Fixture f;
  Filter flt = parse(f, "(AS1 OR AS2) AND AS3");
  const auto* a = std::get_if<FilterAnd>(&flt.node);
  ASSERT_NE(a, nullptr);
  EXPECT_NE(std::get_if<FilterOr>(&a->left->node), nullptr);
}

TEST(FilterParser, DoubleNegation) {
  Fixture f;
  Filter flt = parse(f, "NOT NOT AS1");
  const auto* n = std::get_if<FilterNot>(&flt.node);
  ASSERT_NE(n, nullptr);
  EXPECT_NE(std::get_if<FilterNot>(&n->inner->node), nullptr);
}

TEST(FilterParser, Example199284Pieces) {
  // Fragments of the AS199284 rule from the paper's Appendix A.
  Fixture f;
  Filter flt = parse(f, "{ 0.0.0.0/0^24 } AND NOT community(65535:666)");
  EXPECT_NE(std::get_if<FilterAnd>(&flt.node), nullptr);

  flt = parse(f, "NOT AS199284^+");
  const auto* n = std::get_if<FilterNot>(&flt.node);
  ASSERT_NE(n, nullptr);
  const auto* inner = std::get_if<FilterAsNum>(&n->inner->node);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->op, net::RangeOp::plus());

  flt = parse(f, "AS-IKS AND <AS-IKS+$>");
  EXPECT_NE(std::get_if<FilterAnd>(&flt.node), nullptr);
  EXPECT_TRUE(f.diag.empty());
}

TEST(FilterParser, BarePrefixFilter) {
  Fixture f;
  Filter flt = parse(f, "192.0.2.0/24^+");
  const auto* p = std::get_if<FilterPrefixes>(&flt.node);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->prefixes.size(), 1u);
  EXPECT_EQ(p->prefixes.ranges()[0].op, net::RangeOp::plus());
}

TEST(FilterParser, ErrorsYieldUnknownWithDiagnostics) {
  Fixture f;
  Filter flt = parse(f, "THIS-IS-NOT-VALID");
  EXPECT_NE(std::get_if<FilterUnknown>(&flt.node), nullptr);
  EXPECT_FALSE(f.diag.empty());
}

TEST(FilterParser, BrokenPrefixListRecovers) {
  Fixture f;
  Filter flt = parse(f, "{ 192.0.2.0/24, , 198.51.100.0/24 }");
  const auto* p = std::get_if<FilterPrefixes>(&flt.node);
  // The broken list is reported but the filter falls back to Unknown since
  // parsing was not clean.
  EXPECT_EQ(p, nullptr);
  EXPECT_NE(std::get_if<FilterUnknown>(&flt.node), nullptr);
  EXPECT_GE(f.diag.all().size(), 1u);
}

TEST(FilterParser, TrailingGarbageYieldsUnknown) {
  Fixture f;
  Filter flt = parse(f, "ANY extra-stuff");
  EXPECT_NE(std::get_if<FilterUnknown>(&flt.node), nullptr);
  EXPECT_FALSE(f.diag.empty());
}

TEST(FilterParser, EmptyFilterIsError) {
  Fixture f;
  Filter flt = parse(f, "   ");
  EXPECT_NE(std::get_if<FilterUnknown>(&flt.node), nullptr);
  EXPECT_EQ(f.diag.all().size(), 1u);
}

TEST(FilterParser, ToStringRoundTripShape) {
  Fixture f;
  Filter flt = parse(f, "(AS1 OR AS-FOO^+) AND NOT {10.0.0.0/8^16-24}");
  // Rendering and reparsing yields the same tree.
  Filter again = parse(f, to_string(flt));
  EXPECT_EQ(flt, again);
}

}  // namespace
}  // namespace rpslyzer::rpsl
