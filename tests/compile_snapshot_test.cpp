// The compiled policy snapshot must be a pure optimization: for every
// route of the synthetic 13-IRR corpus, the snapshot-backed verifier has
// to produce the exact HopCheck sequence of the interpreted evaluator —
// same statuses, same report items, same order. The same contract holds
// for the query engine, and the server must quarantine itself on the
// last-good snapshot when a rebuild fails at the compile.build failpoint.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/server/client.hpp"
#include "rpslyzer/server/server.hpp"
#include "rpslyzer/synth/generator.hpp"
#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer {
namespace {

namespace fp = util::failpoint;

// ---------------------------------------------------------------------------
// Differential verification over the synthesized corpus
// ---------------------------------------------------------------------------

struct Pipeline {
  synth::InternetGenerator generator;
  Rpslyzer lyzer;
  std::vector<bgp::Route> routes;

  Pipeline()
      : generator([] {
          synth::SynthConfig config;
          config.seed = 21;
          config.tier1_count = 4;
          config.tier2_count = 10;
          config.tier3_count = 30;
          config.stub_count = 150;
          config.collectors = 6;
          return config;
        }()),
        lyzer([&] {
          std::vector<std::pair<std::string, std::string>> ordered;
          for (const auto& name : synth::irr_names()) {
            ordered.emplace_back(name, generator.irr_dumps().at(name));
          }
          return Rpslyzer::from_texts(ordered, generator.caida_serial1());
        }()) {
    for (const auto& dump : generator.bgp_dumps()) {
      for (auto& route : bgp::parse_table_dump(dump)) routes.push_back(std::move(route));
    }
  }
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

void expect_same_hops(const std::vector<verify::HopCheck>& got,
                      const std::vector<verify::HopCheck>& want, std::size_t route) {
  ASSERT_EQ(got.size(), want.size()) << "route " << route;
  for (std::size_t h = 0; h < want.size(); ++h) {
    EXPECT_EQ(got[h].from, want[h].from) << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].to, want[h].to) << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].export_result.status, want[h].export_result.status)
        << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].export_result.items, want[h].export_result.items)
        << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].import_result.status, want[h].import_result.status)
        << "route " << route << " hop " << h;
    EXPECT_EQ(got[h].import_result.items, want[h].import_result.items)
        << "route " << route << " hop " << h;
  }
}

TEST(CompiledSnapshot, VerdictsMatchInterpretedForEveryRoute) {
  auto& p = pipeline();
  ASSERT_GT(p.routes.size(), 1000u);

  verify::Verifier interpreted(p.lyzer.index(), p.lyzer.relations());
  verify::Verifier compiled(p.lyzer.snapshot());
  for (std::size_t i = 0; i < p.routes.size(); ++i) {
    expect_same_hops(compiled.verify_route(p.routes[i]),
                     interpreted.verify_route(p.routes[i]), i);
    if (::testing::Test::HasFailure()) break;  // one detailed mismatch is enough
  }
}

TEST(CompiledSnapshot, VerdictsMatchUnderStrictAndPaperOptions) {
  auto& p = pipeline();
  for (const bool relax : {false, true}) {
    verify::VerifyOptions options;
    options.relaxations = relax;
    options.safelists = relax;
    verify::Verifier interpreted(p.lyzer.index(), p.lyzer.relations(), options);
    verify::Verifier compiled(p.lyzer.snapshot(), options);
    // A sample is enough here; the full sweep runs in the default-options test.
    const std::size_t step = std::max<std::size_t>(1, p.routes.size() / 400);
    for (std::size_t i = 0; i < p.routes.size(); i += step) {
      expect_same_hops(compiled.verify_route(p.routes[i]),
                       interpreted.verify_route(p.routes[i]), i);
      if (::testing::Test::HasFailure()) break;
    }
  }
}

TEST(CompiledSnapshot, ReportsBuildMetadata) {
  auto& p = pipeline();
  auto snapshot = p.lyzer.snapshot();
  EXPECT_GT(snapshot->build_id(), 0u);
  EXPECT_GT(snapshot->interned_symbols(), 0u);
  EXPECT_GT(snapshot->trie_nodes(), 0u);
  // Memoized: the same Rpslyzer hands out one snapshot.
  EXPECT_EQ(snapshot.get(), p.lyzer.snapshot().get());
}

TEST(CompiledSnapshot, QueryEngineBackendsAgreeByteForByte) {
  auto& p = pipeline();
  query::QueryEngine on_index(p.lyzer.index());
  query::QueryEngine on_snapshot(*p.lyzer.snapshot());
  std::size_t compared = 0;
  for (const auto& [name, set] : p.lyzer.ir().as_sets) {
    for (const std::string& query :
         {"!i" + name + ",1", "!a" + name, "!a4" + name, "!a6" + name}) {
      EXPECT_EQ(on_snapshot.evaluate(query), on_index.evaluate(query)) << query;
    }
    if (++compared >= 64) break;
  }
  for (const auto& [asn, an] : p.lyzer.ir().aut_nums) {
    const std::string query = "!gAS" + std::to_string(asn);
    EXPECT_EQ(on_snapshot.evaluate(query), on_index.evaluate(query)) << query;
    if (++compared >= 128) break;
  }
  EXPECT_GT(compared, 64u);
}

// ---------------------------------------------------------------------------
// Server integration: the !v verb and compile.build quarantine
// ---------------------------------------------------------------------------

constexpr const char* kServerCorpus =
    "aut-num: AS64500\n"
    "import: from AS64501 accept ANY\n"
    "export: to AS64501 announce AS64500\n\n"
    "aut-num: AS64501\n"
    "import: from AS64500 accept AS64500\n"
    "export: to AS64500 announce ANY\n\n"
    "route: 10.0.0.0/8\norigin: AS64500\n\n"
    "route: 198.51.100.0/24\norigin: AS64502\n";

struct OwnedCorpus {
  util::Diagnostics diag;
  ir::Ir ir;
  irr::Index index;
  relations::AsRelations relations;

  explicit OwnedCorpus(const char* text)
      : ir(irr::parse_dump(text, "TEST", diag)), index(ir) {}
};

std::shared_ptr<const compile::CompiledPolicySnapshot> make_corpus(const char* text) {
  auto owned = std::make_shared<OwnedCorpus>(text);
  return compile::CompiledPolicySnapshot::build(
      std::shared_ptr<const irr::Index>(owned, &owned->index),
      std::shared_ptr<const relations::AsRelations>(owned, &owned->relations));
}

server::ServerConfig test_config() {
  server::ServerConfig config;
  config.port = 0;
  config.worker_threads = 2;
  config.cache_capacity = 64;
  config.idle_timeout = std::chrono::milliseconds(0);
  return config;
}

class CompiledSnapshotFault : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear_all(); }
  void TearDown() override { fp::clear_all(); }
};

TEST_F(CompiledSnapshotFault, VerifyVerbMatchesLocalReport) {
  server::Server daemon(test_config(), [] { return make_corpus(kServerCorpus); });
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  auto client = server::Client::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.has_value());

  // Ground truth: the same snapshot-backed verifier the daemon consults.
  auto snapshot = make_corpus(kServerCorpus);
  verify::Verifier verifier(snapshot);
  bgp::Route route;
  route.prefix = *net::Prefix::parse("10.0.0.0/8");
  route.path = {64501, 64500};
  const std::string want = query::frame_response(verifier.report(route));

  ASSERT_TRUE(client->send_line("!v 10.0.0.0/8 AS64501 AS64500"));
  EXPECT_EQ(client->read_response(), want);
  // Cached on the second ask (same generation, same normalized key).
  ASSERT_TRUE(client->send_line("!v 10.0.0.0/8 AS64501 AS64500"));
  EXPECT_EQ(client->read_response(), want);
  EXPECT_GE(daemon.cache_stats().hits, 1u);

  // Malformed inputs answer F without killing the connection.
  ASSERT_TRUE(client->send_line("!v nonsense AS1 AS2"));
  auto bad_prefix = client->read_response();
  ASSERT_TRUE(bad_prefix.has_value());
  EXPECT_EQ(bad_prefix->front(), 'F');
  ASSERT_TRUE(client->send_line("!v 10.0.0.0/8 AS64500"));
  auto short_path = client->read_response();
  ASSERT_TRUE(short_path.has_value());
  EXPECT_EQ(short_path->front(), 'F');

  client->send_line("!q");
  daemon.stop();
}

TEST_F(CompiledSnapshotFault, CompileFailpointQuarantinesServerOnLastGoodSnapshot) {
  server::Server daemon(test_config(), [] { return make_corpus(kServerCorpus); });
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  auto client = server::Client::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.has_value());

  ASSERT_TRUE(client->send_line("!gAS64500"));
  auto first = client->read_response();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->front(), 'A');

  // Arm the snapshot-build failpoint: the reload's loader throws inside
  // CompiledPolicySnapshot::build, so the daemon must keep generation 1.
  ASSERT_TRUE(fp::set("compile.build", "error"));
  ASSERT_TRUE(client->send_line("!reload"));
  auto refused = client->read_response();
  ASSERT_TRUE(refused.has_value());
  EXPECT_NE(refused->find("F reload failed"), std::string::npos) << *refused;
  EXPECT_NE(refused->find("compile.build"), std::string::npos) << *refused;
  EXPECT_EQ(daemon.generation(), 1u);
  EXPECT_EQ(daemon.health().state, server::Health::kDegraded);

  // Still serving the last-good snapshot, queries and !v included.
  ASSERT_TRUE(client->send_line("!gAS64500"));
  EXPECT_EQ(client->read_response(), first);
  ASSERT_TRUE(client->send_line("!v 10.0.0.0/8 AS64501 AS64500"));
  auto verdict = client->read_response();
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->front(), 'A');

  // Disarm and reload: a fresh snapshot publishes and health recovers.
  fp::clear_all();
  ASSERT_TRUE(client->send_line("!reload"));
  EXPECT_EQ(client->read_response(), "C\n");
  EXPECT_EQ(daemon.generation(), 2u);
  EXPECT_EQ(daemon.health().state, server::Health::kHealthy);

  // !stats carries the published snapshot's identity.
  ASSERT_TRUE(client->send_line("!stats"));
  auto stats = client->read_response();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("snapshot: build-id="), std::string::npos) << *stats;

  client->send_line("!q");
  daemon.stop();
}

}  // namespace
}  // namespace rpslyzer
