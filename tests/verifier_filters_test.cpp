// Verifier coverage for the less common filter and peering constructs:
// filter-set / peering-set references, boolean filters, PeerAS inside
// regexes, fltr-martian, route-set filters with range operators, and the
// prefix-set range-operator skip toggle.

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer::verify {
namespace {

using bgp::Route;

struct World {
  ir::Ir ir;
  irr::Index index;
  relations::AsRelations relations;

  World(std::string_view rpsl, std::string_view serial1, util::Diagnostics& diag)
      : ir(irr::parse_dump(rpsl, "TEST", diag)),
        index(ir),
        relations(relations::AsRelations::parse(serial1, diag)) {}
};

Route route(std::string_view prefix, std::vector<bgp::Asn> path) {
  return Route{*net::Prefix::parse(prefix), std::move(path)};
}

Status import_status(const World& w, const Route& r, std::size_t hop,
                     VerifyOptions options = {}) {
  Verifier v(w.index, w.relations, options);
  auto hops = v.verify_route(r);
  return hops.at(hop).import_result.status;
}

TEST(VerifierFilters, FilterSetReference) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept FLTR-NETS\n\n"
      "filter-set: FLTR-NETS\nfilter: { 10.0.0.0/8^+ }\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("10.1.0.0/16", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("192.0.2.0/24", {2, 1}), 0), Status::kUnverified);
}

TEST(VerifierFilters, FilterSetMpFilterForV6) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nmp-import: afi any.unicast from AS1 accept FLTR-NETS\n\n"
      "filter-set: FLTR-NETS\nfilter: { 10.0.0.0/8^+ }\nmp-filter: { 2001:db8::/32^+ }\n",
      "", diag);
  // IPv6 routes evaluate against mp-filter, IPv4 against filter.
  EXPECT_EQ(import_status(w, route("2001:db8:1::/48", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.1.0.0/16", {2, 1}), 0), Status::kVerified);
}

TEST(VerifierFilters, MissingFilterSetIsUnrecorded) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nimport: from AS1 accept FLTR-GONE\n", "", diag);
  auto r = route("10.0.0.0/8", {2, 1});
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(r);
  EXPECT_EQ(hops[0].import_result.status, Status::kUnrecorded);
  EXPECT_EQ(hops[0].import_result.items[0].reason, Reason::kUnrecordedFilterSet);
}

TEST(VerifierFilters, PeeringSetReference) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from PRNG-UP accept ANY\n\n"
      "peering-set: PRNG-UP\npeering: AS1\npeering: AS5\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 5}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 9}), 0), Status::kUnverified);
}

TEST(VerifierFilters, MissingPeeringSetIsUnrecorded) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nimport: from PRNG-GONE accept ANY\n", "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.0.0.0/8", {2, 1}));
  EXPECT_EQ(hops[0].import_result.status, Status::kUnrecorded);
  EXPECT_EQ(hops[0].import_result.items[0].reason, Reason::kUnrecordedPeeringSet);
}

TEST(VerifierFilters, NotFilterSemantics) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept ANY AND NOT {0.0.0.0/0, 10.0.0.0/8^+}\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("192.0.2.0/24", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.5.0.0/16", {2, 1}), 0), Status::kUnverified);
  EXPECT_EQ(import_status(w, route("0.0.0.0/0", {2, 1}), 0), Status::kUnverified);
}

TEST(VerifierFilters, FltrMartian) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nimport: from AS1 accept NOT fltr-martian\n", "", diag);
  EXPECT_EQ(import_status(w, route("8.8.8.0/24", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("192.168.0.0/16", {2, 1}), 0), Status::kUnverified);
}

TEST(VerifierFilters, RouteSetWithRangeOperator) {
  // The non-standard "route-set followed by a range operator" (Appendix B).
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept RS-NETS^24-32\n\n"
      "route-set: RS-NETS\nmembers: 10.0.0.0/8\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("10.1.2.0/24", {2, 1}), 0), Status::kVerified);
  // The base /8 itself is outside ^24-32.
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kUnverified);
}

TEST(VerifierFilters, PrefixSetRangeOperatorSkipToggle) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nimport: from AS1 accept {10.0.0.0/8}^16\n", "", diag);
  // Paper-faithful mode skips (Appendix B: "we do not handle two rules
  // containing inline prefix sets followed by range operators").
  Verifier faithful(w.index, w.relations);
  auto hops = faithful.verify_route(route("10.7.0.0/16", {2, 1}));
  EXPECT_EQ(hops[0].import_result.status, Status::kSkip);
  EXPECT_EQ(hops[0].import_result.items[0].reason, Reason::kSkipPrefixSetOp);
  // Extension mode evaluates them.
  VerifyOptions extended;
  extended.paper_faithful_skips = false;
  Verifier evaluating(w.index, w.relations, extended);
  EXPECT_EQ(evaluating.verify_route(route("10.7.0.0/16", {2, 1}))[0].import_result.status,
            Status::kVerified);
  EXPECT_EQ(evaluating.verify_route(route("10.0.0.0/8", {2, 1}))[0].import_result.status,
            Status::kUnverified);
}

TEST(VerifierFilters, PeerAsInsideRegex) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nimport: from AS1 accept <^PeerAS+$>\n", "", diag);
  // PeerAS binds to AS1 (the session neighbor): path must be all-AS1.
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1, 3}), 1), Status::kUnverified);
}

TEST(VerifierFilters, AsSetInRegexUsesFlattening) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept <^AS1 AS-CONE+$>\n\n"
      "as-set: AS-CONE\nmembers: AS3, AS-SUB\n\n"
      "as-set: AS-SUB\nmembers: AS4\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1, 3, 4}), 2), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1, 9}), 1), Status::kUnverified);
}

TEST(VerifierFilters, MultiplePeeringsShareFilter) {
  // The AS8323 pattern (Appendix A): several peerings, one filter.
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\n"
      "import: from AS1 action pref=50; from AS5 action pref=60; accept PeerAS\n\n"
      "route: 10.1.0.0/16\norigin: AS1\n\n"
      "route: 10.5.0.0/16\norigin: AS5\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("10.1.0.0/16", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.5.0.0/16", {2, 5}), 0), Status::kVerified);
  // AS1's session does not admit AS5's prefix (PeerAS is per-session). The
  // strict mismatch is softened to Relaxed by the Missing Routes check:
  // the failed filter AS (PeerAS -> AS1) is the path's origin (§5.1.1).
  EXPECT_EQ(import_status(w, route("10.5.0.0/16", {2, 1}), 0), Status::kRelaxed);
  VerifyOptions strict;
  strict.relaxations = false;
  strict.safelists = false;
  EXPECT_EQ(import_status(w, route("10.5.0.0/16", {2, 1}), 0, strict),
            Status::kUnverified);
}

TEST(VerifierFilters, AsExprPeeringAndOrExcept) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\n"
      "import: from (AS1 OR AS3) EXCEPT AS3 accept ANY\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 3}), 0), Status::kUnverified);
}

TEST(VerifierFilters, AsSetPeering) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS-UPSTREAMS accept ANY\n\n"
      "as-set: AS-UPSTREAMS\nmembers: AS1, AS5\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 9}), 0), Status::kUnverified);
  // Mismatch items name the set.
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.0.0.0/8", {2, 9}));
  ASSERT_FALSE(hops[0].import_result.items.empty());
  EXPECT_EQ(hops[0].import_result.items[0].reason, Reason::kMatchRemoteAsSet);
  EXPECT_EQ(hops[0].import_result.items[0].name, "AS-UPSTREAMS");
}

TEST(VerifierFilters, MembersByRefPeering) {
  // An AS joins the upstream set indirectly via member-of + mbrs-by-ref.
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS-CLUB accept ANY\n\n"
      "as-set: AS-CLUB\nmbrs-by-ref: MAINT-CLUB\n\n"
      "aut-num: AS7\nmember-of: AS-CLUB\nmnt-by: MAINT-CLUB\n",
      "", diag);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 7}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 8}), 0), Status::kUnverified);
}

TEST(VerifierFilters, MulticastAfiNeverCoversUnicastRoutes) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nmp-import: afi ipv4.multicast from AS1 accept ANY\n", "", diag);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kUnverified);
}

TEST(VerifierFilters, BarePrefixFilter) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nimport: from AS1 accept 10.0.0.0/8^+\n", "", diag);
  EXPECT_EQ(import_status(w, route("10.9.0.0/16", {2, 1}), 0), Status::kVerified);
  EXPECT_EQ(import_status(w, route("11.0.0.0/8", {2, 1}), 0), Status::kUnverified);
}

TEST(VerifierFilters, OrFilterShortCircuitsToMatch) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept AS-GONE OR ANY\n",
      "", diag);
  // Even though AS-GONE is unrecorded, the OR's right side matches.
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kVerified);
}

TEST(VerifierFilters, AndWithUnrecordedIsUnrecorded) {
  util::Diagnostics diag;
  World w("aut-num: AS2\nimport: from AS1 accept ANY AND AS-GONE\n", "", diag);
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kUnrecorded);
}

TEST(VerifierFilters, AndWithDefiniteMissBeatsUnrecorded) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept {192.0.2.0/24} AND AS-GONE\n",
      "", diag);
  // The prefix set definitively fails, so the rule is a plain mismatch
  // regardless of the unrecorded set.
  EXPECT_EQ(import_status(w, route("10.0.0.0/8", {2, 1}), 0), Status::kUnverified);
}

TEST(VerifierFilters, FilterSetCycleTerminates) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from AS1 accept FLTR-A\n\n"
      "filter-set: FLTR-A\nfilter: FLTR-B\n\n"
      "filter-set: FLTR-B\nfilter: FLTR-A\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.0.0.0/8", {2, 1}));
  // The cycle can never be resolved: Skip, not a hang.
  EXPECT_EQ(hops[0].import_result.status, Status::kSkip);
}

TEST(VerifierFilters, PeeringSetCycleTerminates) {
  util::Diagnostics diag;
  World w(
      "aut-num: AS2\nimport: from PRNG-A accept ANY\n\n"
      "peering-set: PRNG-A\npeering: PRNG-B\n\n"
      "peering-set: PRNG-B\npeering: PRNG-A\n",
      "", diag);
  Verifier v(w.index, w.relations);
  auto hops = v.verify_route(route("10.0.0.0/8", {2, 1}));
  EXPECT_EQ(hops[0].import_result.status, Status::kUnverified);
}

}  // namespace
}  // namespace rpslyzer::verify
