#include "rpslyzer/bgp/route.hpp"

#include <gtest/gtest.h>

namespace rpslyzer::bgp {
namespace {

TEST(BgpRoute, StripPrepends) {
  EXPECT_EQ(strip_prepends({1, 1, 2, 3, 3, 3, 4}), (std::vector<Asn>{1, 2, 3, 4}));
  EXPECT_EQ(strip_prepends({7}), (std::vector<Asn>{7}));
  EXPECT_EQ(strip_prepends({}), (std::vector<Asn>{}));
  // Non-consecutive repeats (poisoning) are kept.
  EXPECT_EQ(strip_prepends({1, 2, 1}), (std::vector<Asn>{1, 2, 1}));
}

TEST(BgpRoute, ParsePath) {
  bool as_set = false;
  EXPECT_EQ(parse_path("3257 1299 6939", as_set), (std::vector<Asn>{3257, 1299, 6939}));
  EXPECT_EQ(parse_path("AS1 AS2", as_set), (std::vector<Asn>{1, 2}));
  EXPECT_EQ(parse_path("1 1 1 2", as_set), (std::vector<Asn>{1, 2}));
  EXPECT_FALSE(parse_path("", as_set));
  EXPECT_FALSE(parse_path("1 x 2", as_set));
  EXPECT_FALSE(as_set);
  EXPECT_FALSE(parse_path("1 {2,3} 4", as_set));
  EXPECT_TRUE(as_set);
}

TEST(BgpRoute, ParseSimpleLine) {
  auto parsed = parse_table_dump_line("103.162.114.0/23|3257 1299 6939 133840 56239 141893");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->issue, RouteIssue::kOk);
  EXPECT_EQ(parsed->route.prefix.to_string(), "103.162.114.0/23");
  EXPECT_EQ(parsed->route.path.size(), 6u);
  EXPECT_EQ(parsed->route.origin(), 141893u);
}

TEST(BgpRoute, ParseTableDump2Line) {
  auto parsed = parse_table_dump_line(
      "TABLE_DUMP2|1687478400|B|192.0.2.1|3257|8.8.8.0/24|3257 15169|IGP|192.0.2.1|0|0||NAG||");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->issue, RouteIssue::kOk);
  EXPECT_EQ(parsed->route.prefix.to_string(), "8.8.8.0/24");
  EXPECT_EQ(parsed->route.path, (std::vector<Asn>{3257, 15169}));
}

TEST(BgpRoute, SingleAsRoutesFlagged) {
  auto parsed = parse_table_dump_line("8.8.8.0/24|15169");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->issue, RouteIssue::kSingleAs);
  // Prepending collapses to single-AS too.
  parsed = parse_table_dump_line("8.8.8.0/24|15169 15169 15169");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->issue, RouteIssue::kSingleAs);
}

TEST(BgpRoute, AsSetRoutesFlagged) {
  auto parsed = parse_table_dump_line("8.8.8.0/24|3257 {15169,15170}");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->issue, RouteIssue::kHasAsSet);
}

TEST(BgpRoute, MalformedLines) {
  EXPECT_EQ(parse_table_dump_line("not-a-prefix|1 2")->issue, RouteIssue::kMalformed);
  EXPECT_EQ(parse_table_dump_line("justoneword")->issue, RouteIssue::kMalformed);
  EXPECT_EQ(parse_table_dump_line("8.8.8.0/24|")->issue, RouteIssue::kMalformed);
  EXPECT_EQ(parse_table_dump_line("TABLE_DUMP2|1|B|x|1")->issue, RouteIssue::kMalformed);
}

TEST(BgpRoute, CommentsAndBlanksSkipped) {
  EXPECT_FALSE(parse_table_dump_line(""));
  EXPECT_FALSE(parse_table_dump_line("# comment"));
  EXPECT_FALSE(parse_table_dump_line("% remark"));
}

TEST(BgpRoute, ParseWholeDumpWithStats) {
  DumpStats stats;
  auto routes = parse_table_dump(
      "# collector rrc00\n"
      "8.8.8.0/24|3257 15169\n"
      "1.1.1.0/24|13335\n"
      "9.9.9.0/24|1 {2,3}\n"
      "bogus|1 2\n"
      "2001:db8::/32|6939 64500\n",
      &stats);
  EXPECT_EQ(stats.total_lines, 5u);
  EXPECT_EQ(stats.routes, 2u);
  EXPECT_EQ(stats.single_as, 1u);
  EXPECT_EQ(stats.with_as_set, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_FALSE(routes[1].prefix.is_v4());
}

}  // namespace
}  // namespace rpslyzer::bgp
