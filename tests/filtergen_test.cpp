#include "rpslyzer/filtergen/filtergen.hpp"

#include <gtest/gtest.h>

#include "rpslyzer/irr/loader.hpp"

namespace rpslyzer::filtergen {
namespace {

struct Fixture {
  util::Diagnostics diag;
  ir::Ir ir;
  irr::Index index;

  Fixture()
      : ir(irr::parse_dump(
            "as-set: AS-CONE\nmembers: AS64500, AS-SUB\n\n"
            "as-set: AS-SUB\nmembers: AS64502\n\n"
            "as-set: AS-DANGLING\nmembers: AS64500, AS-GONE\n\n"
            "route: 10.0.0.0/8\norigin: AS64500\n\n"
            "route: 10.1.0.0/16\norigin: AS64500\n\n"
            "route: 192.0.2.0/24\norigin: AS64502\n\n"
            "route6: 2001:db8::/32\norigin: AS64500\n",
            "TEST", diag)),
        index(ir) {}
};

Fixture& fx() {
  static Fixture f;
  return f;
}

TEST(FilterGen, SingleAsn) {
  auto filter = generate(fx().index, "AS64500");
  ASSERT_TRUE(filter);
  EXPECT_EQ(filter->member_ases, 1u);
  EXPECT_EQ(filter->route_objects, 2u);  // v4 only by default
  ASSERT_EQ(filter->entries.size(), 2u);
  EXPECT_EQ(filter->entries[0].prefix.to_string(), "10.0.0.0/8");
  EXPECT_TRUE(filter->entries[0].exact());
}

TEST(FilterGen, AsSetResolvesRecursively) {
  auto filter = generate(fx().index, "AS-CONE");
  ASSERT_TRUE(filter);
  EXPECT_EQ(filter->member_ases, 2u);
  ASSERT_EQ(filter->entries.size(), 3u);
  EXPECT_EQ(filter->entries[2].prefix.to_string(), "192.0.2.0/24");
}

TEST(FilterGen, Ipv6Family) {
  FilterOptions options;
  options.family = net::Family::kIpv6;
  auto filter = generate(fx().index, "AS-CONE", options);
  ASSERT_TRUE(filter);
  ASSERT_EQ(filter->entries.size(), 1u);
  EXPECT_EQ(filter->entries[0].prefix.to_string(), "2001:db8::/32");
}

TEST(FilterGen, UnknownObject) {
  EXPECT_FALSE(generate(fx().index, "AS-NOPE"));
  EXPECT_FALSE(generate(fx().index, "AS99"));
}

TEST(FilterGen, MissingSubSetsReported) {
  auto filter = generate(fx().index, "AS-DANGLING");
  ASSERT_TRUE(filter);
  ASSERT_EQ(filter->missing_sets.size(), 1u);
  EXPECT_EQ(filter->missing_sets[0], "AS-GONE");
  EXPECT_EQ(filter->entries.size(), 2u);  // AS64500's prefixes still resolve
}

TEST(FilterGen, RangeOperatorAppliesToEntries) {
  FilterOptions options;
  options.range_op = net::RangeOp::range(24, 32);
  auto filter = generate(fx().index, "AS64500", options);
  ASSERT_TRUE(filter);
  // 10.0.0.0/8^24-32 -> ge 24 le 32; 10.1.0.0/16^24-32 likewise.
  for (const auto& e : filter->entries) {
    EXPECT_EQ(e.ge, 24);
    EXPECT_EQ(e.le, 32);
  }
}

TEST(FilterGen, PlusOperator) {
  FilterOptions options;
  options.range_op = net::RangeOp::plus();
  auto filter = generate(fx().index, "AS64500", options);
  ASSERT_TRUE(filter);
  EXPECT_EQ(filter->entries[0].ge, 8);
  EXPECT_EQ(filter->entries[0].le, 32);
}

TEST(FilterGen, Aggregation) {
  // With ^+ the /16 inside the /8 is redundant.
  FilterOptions options;
  options.range_op = net::RangeOp::plus();
  options.aggregate = true;
  auto filter = generate(fx().index, "AS64500", options);
  ASSERT_TRUE(filter);
  ASSERT_EQ(filter->entries.size(), 1u);
  EXPECT_EQ(filter->entries[0].prefix.to_string(), "10.0.0.0/8");

  // Without an operator the exact /16 is NOT covered by the exact /8.
  FilterOptions exact;
  exact.aggregate = true;
  auto unaggregated = generate(fx().index, "AS64500", exact);
  ASSERT_TRUE(unaggregated);
  EXPECT_EQ(unaggregated->entries.size(), 2u);
}

TEST(FilterGen, AggregateFunctionDirectly) {
  std::vector<FilterEntry> entries;
  entries.push_back({*net::Prefix::parse("10.0.0.0/8"), 8, 24});
  entries.push_back({*net::Prefix::parse("10.5.0.0/16"), 16, 24});  // covered
  entries.push_back({*net::Prefix::parse("10.6.0.0/16"), 16, 32});  // le exceeds cover
  entries.push_back({*net::Prefix::parse("11.0.0.0/8"), 0, 0});     // disjoint
  auto out = aggregate(entries);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].prefix.to_string(), "10.0.0.0/8");
  EXPECT_EQ(out[1].prefix.to_string(), "10.6.0.0/16");
  EXPECT_EQ(out[2].prefix.to_string(), "11.0.0.0/8");
}

TEST(FilterGen, CiscoRendering) {
  FilterOptions options;
  options.range_op = net::RangeOp::range(9, 24);
  auto filter = generate(fx().index, "AS64500", options);
  ASSERT_TRUE(filter);
  std::string config = render_cisco_prefix_list(*filter, "CONE-IN");
  EXPECT_NE(config.find("ip prefix-list CONE-IN seq 5 permit 10.0.0.0/8 ge 9 le 24"),
            std::string::npos);
  // Exact entries render without ge/le.
  auto exact = generate(fx().index, "AS64502");
  std::string exact_config = render_cisco_prefix_list(*exact, "X");
  EXPECT_NE(exact_config.find("permit 192.0.2.0/24\n"), std::string::npos);
}

TEST(FilterGen, JuniperRendering) {
  FilterOptions options;
  options.range_op = net::RangeOp::plus();
  auto filter = generate(fx().index, "AS64502", options);
  std::string config = render_juniper_route_filter(*filter, "from-cone");
  EXPECT_NE(config.find("policy-statement from-cone {"), std::string::npos);
  EXPECT_NE(config.find("route-filter 192.0.2.0/24 upto /32;"), std::string::npos);
  auto exact = generate(fx().index, "AS64502");
  EXPECT_NE(render_juniper_route_filter(*exact, "p").find("192.0.2.0/24 exact;"),
            std::string::npos);
}

TEST(FilterGen, BirdRendering) {
  auto filter = generate(fx().index, "AS64500");
  std::string config = render_bird_prefix_set(*filter, "cone_v4");
  EXPECT_EQ(config, "define cone_v4 = [ 10.0.0.0/8, 10.1.0.0/16 ];\n");
  GeneratedFilter empty;
  EXPECT_EQ(render_bird_prefix_set(empty, "e"), "define e = [];\n");
}

TEST(FilterGen, PlainRendering) {
  FilterOptions options;
  options.range_op = net::RangeOp::range(24, 32);
  auto filter = generate(fx().index, "AS64502", options);
  EXPECT_EQ(render_plain(*filter), "192.0.2.0/24^24-32\n");
}

}  // namespace
}  // namespace rpslyzer::filtergen
