#include <gtest/gtest.h>

#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/rpsl/object_parser.hpp"

namespace rpslyzer::rpsl {
namespace {

using namespace rpslyzer::ir;

struct Fixture {
  util::Diagnostics diag;
  ParseContext ctx{&diag, "aut-num:AS64500", "TEST", 1};

  Rule import(std::string_view text) {
    return parse_rule(text, Rule::Direction::kImport, false, ctx);
  }
  Rule mp_import(std::string_view text) {
    return parse_rule(text, Rule::Direction::kImport, true, ctx);
  }
  Rule exprt(std::string_view text) {
    return parse_rule(text, Rule::Direction::kExport, false, ctx);
  }
};

const EntryTerm& term_of(const Entry& e) {
  const auto* t = std::get_if<EntryTerm>(&e.node);
  EXPECT_NE(t, nullptr);
  return *t;
}

TEST(RuleParser, SimpleImport) {
  Fixture f;
  Rule r = f.import("from AS64501 accept ANY");
  EXPECT_TRUE(r.is_import());
  EXPECT_FALSE(r.mp);
  const EntryTerm& term = term_of(r.entry);
  ASSERT_EQ(term.factors.size(), 1u);
  const PolicyFactor& factor = term.factors[0];
  ASSERT_EQ(factor.peerings.size(), 1u);
  const auto* spec = std::get_if<PeeringSpec>(&factor.peerings[0].peering.node);
  ASSERT_NE(spec, nullptr);
  const auto* asn = std::get_if<AsExprAsn>(&spec->as_expr.node);
  ASSERT_NE(asn, nullptr);
  EXPECT_EQ(asn->asn, 64501u);
  EXPECT_TRUE(std::holds_alternative<FilterAny>(factor.filter.node));
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, SimpleExportPaperExample) {
  // "export: to AS4713 announce AS-HANABI" (§2).
  Fixture f;
  Rule r = f.exprt("to AS4713 announce AS-HANABI");
  const PolicyFactor& factor = term_of(r.entry).factors[0];
  const auto* set = std::get_if<FilterAsSet>(&factor.filter.node);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->name, "AS-HANABI");
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, ActionParsing) {
  Fixture f;
  Rule r = f.import("from AS64501 action pref=100; med=50; accept ANY");
  const PolicyFactor& factor = term_of(r.entry).factors[0];
  ASSERT_EQ(factor.peerings.size(), 1u);
  const auto& actions = factor.peerings[0].actions;
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].attribute, "pref");
  EXPECT_EQ(actions[0].op, "=");
  EXPECT_EQ(actions[0].value, "100");
  EXPECT_EQ(actions[1].attribute, "med");
  EXPECT_EQ(actions[1].value, "50");
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, CommunityActions) {
  Fixture f;
  Rule r = f.import(
      "from AS64501 action community .= { 64628:20 }; "
      "community.delete(64628:10, 64628:11); accept ANY");
  const auto& actions = term_of(r.entry).factors[0].peerings[0].actions;
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].attribute, "community");
  EXPECT_EQ(actions[0].op, ".=");
  EXPECT_EQ(actions[0].value, "{64628:20}");
  EXPECT_EQ(actions[1].kind, Action::Kind::kMethodCall);
  EXPECT_EQ(actions[1].method, "delete");
  EXPECT_EQ(actions[1].value, "64628:10, 64628:11");
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, MultiplePeeringsOneFilter) {
  // AS8323's rule from Appendix A: two peering+action pairs, one filter.
  Fixture f;
  Rule r = f.import(
      "from AS8267:AS-Krakow-1014 action pref=50; "
      "from AS8267:AS-Krakow-1015 action pref=50; "
      "accept PeerAS");
  const PolicyFactor& factor = term_of(r.entry).factors[0];
  ASSERT_EQ(factor.peerings.size(), 2u);
  EXPECT_EQ(factor.peerings[0].actions.size(), 1u);
  EXPECT_EQ(factor.peerings[1].actions.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<FilterPeerAs>(factor.filter.node));
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, PeeringWithAsExpression) {
  Fixture f;
  Rule r = f.import("from AS-ANY EXCEPT (AS40027 OR AS63293 OR AS65535) accept ANY");
  const auto* spec =
      std::get_if<PeeringSpec>(&term_of(r.entry).factors[0].peerings[0].peering.node);
  ASSERT_NE(spec, nullptr);
  const auto* except = std::get_if<AsExprExcept>(&spec->as_expr.node);
  ASSERT_NE(except, nullptr);
  EXPECT_TRUE(std::holds_alternative<AsExprAny>(except->left->node));
  EXPECT_TRUE(std::holds_alternative<AsExprOr>(except->right->node));
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, PeeringSetReference) {
  Fixture f;
  Rule r = f.import("from PRNG-EXAMPLE accept ANY");
  const auto* ref =
      std::get_if<PeeringSetRef>(&term_of(r.entry).factors[0].peerings[0].peering.node);
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->name, "PRNG-EXAMPLE");
}

TEST(RuleParser, RouterExpressionsCaptured) {
  Fixture f;
  Rule r = f.import("from AS64501 192.0.2.1 at 192.0.2.2 action pref=10; accept ANY");
  const auto* spec =
      std::get_if<PeeringSpec>(&term_of(r.entry).factors[0].peerings[0].peering.node);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->remote_router, "192.0.2.1");
  EXPECT_EQ(spec->local_router, "192.0.2.2");
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, MpImportWithAfi) {
  Fixture f;
  Rule r = f.mp_import("afi ipv6.unicast from AS64501 accept ANY");
  ASSERT_EQ(r.entry.afis.size(), 1u);
  EXPECT_EQ(r.entry.afis[0], Afi::ipv6_unicast());
  EXPECT_TRUE(r.entry.covers_unicast(net::Family::kIpv6, true));
  EXPECT_FALSE(r.entry.covers_unicast(net::Family::kIpv4, true));
}

TEST(RuleParser, AfiList) {
  Fixture f;
  Rule r = f.mp_import("afi ipv4.unicast, ipv6.unicast from AS64501 accept ANY");
  ASSERT_EQ(r.entry.afis.size(), 2u);
  EXPECT_TRUE(r.entry.covers_unicast(net::Family::kIpv4, true));
  EXPECT_TRUE(r.entry.covers_unicast(net::Family::kIpv6, true));
}

TEST(RuleParser, DefaultAfis) {
  Fixture f;
  // Plain import covers IPv4 only; mp-import without afi covers both.
  Rule plain = f.import("from AS1 accept ANY");
  EXPECT_TRUE(plain.entry.covers_unicast(net::Family::kIpv4, plain.mp));
  EXPECT_FALSE(plain.entry.covers_unicast(net::Family::kIpv6, plain.mp));
  Rule mp = f.mp_import("from AS1 accept ANY");
  EXPECT_TRUE(mp.entry.covers_unicast(net::Family::kIpv4, mp.mp));
  EXPECT_TRUE(mp.entry.covers_unicast(net::Family::kIpv6, mp.mp));
}

TEST(RuleParser, RefineFromPaperSection2) {
  // AS14595's structured rule (§2), flattened to one line.
  Fixture f;
  Rule r = f.mp_import(
      "afi any.unicast from AS13911 accept ANY AND NOT {0.0.0.0/0, ::0/0}; "
      "REFINE afi ipv4.unicast from AS13911 action pref=200; accept <^AS13911 AS6327+$>");
  const auto* refine = std::get_if<EntryRefine>(&r.entry.node);
  ASSERT_NE(refine, nullptr);
  // Left side: afi any.unicast, filter = ANY AND NOT {...}.
  ASSERT_EQ(refine->left->afis.size(), 1u);
  EXPECT_EQ(refine->left->afis[0].ip, Afi::Ip::kAny);
  EXPECT_EQ(refine->left->afis[0].cast, Afi::Cast::kUnicast);
  const EntryTerm& left = term_of(*refine->left);
  ASSERT_EQ(left.factors.size(), 1u);
  EXPECT_NE(std::get_if<FilterAnd>(&left.factors[0].filter.node), nullptr);
  // Right side: ipv4.unicast with an AS-path regex filter and pref action.
  ASSERT_EQ(refine->right->afis.size(), 1u);
  EXPECT_EQ(refine->right->afis[0].ip, Afi::Ip::kIpv4);
  const EntryTerm& right = term_of(*refine->right);
  ASSERT_EQ(right.factors.size(), 1u);
  EXPECT_NE(std::get_if<FilterAsPath>(&right.factors[0].filter.node), nullptr);
  ASSERT_EQ(right.factors[0].peerings.size(), 1u);
  EXPECT_EQ(right.factors[0].peerings[0].actions.size(), 1u);
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, BracedTermWithMultipleFactors) {
  Fixture f;
  Rule r = f.mp_import(
      "afi any { from AS-ANY action pref = 65535; accept community(65535:0); "
      "from AS-ANY action pref = 65435; accept ANY; }");
  const EntryTerm& term = term_of(r.entry);
  ASSERT_EQ(term.factors.size(), 2u);
  EXPECT_NE(std::get_if<FilterCommunity>(&term.factors[0].filter.node), nullptr);
  EXPECT_TRUE(std::holds_alternative<FilterAny>(term.factors[1].filter.node));
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, ChainedRefinesFromAppendixA) {
  // A trimmed version of AS199284's rule: three REFINE stages.
  Fixture f;
  Rule r = f.mp_import(
      "afi any { from AS-ANY action community.delete(64628:10, 64628:11); accept ANY; } "
      "REFINE afi any { from AS-ANY accept NOT AS199284^+; } "
      "REFINE afi ipv4 { from AS-ANY accept NOT fltr-martian; }");
  const auto* r1 = std::get_if<EntryRefine>(&r.entry.node);
  ASSERT_NE(r1, nullptr);
  const auto* r2 = std::get_if<EntryRefine>(&r1->right->node);
  ASSERT_NE(r2, nullptr);  // right-recursive chain
  const EntryTerm& last = term_of(*r2->right);
  EXPECT_NE(std::get_if<FilterNot>(&last.factors[0].filter.node), nullptr);
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, ExceptPolicy) {
  Fixture f;
  Rule r = f.import(
      "from AS1 accept ANY; EXCEPT from AS2 accept AS2");
  const auto* except = std::get_if<EntryExcept>(&r.entry.node);
  ASSERT_NE(except, nullptr);
  EXPECT_EQ(term_of(*except->left).factors.size(), 1u);
  EXPECT_EQ(term_of(*except->right).factors.size(), 1u);
}

TEST(RuleParser, ProtocolQualifiers) {
  Fixture f;
  Rule r = f.import("protocol BGP4 into OSPF from AS64501 accept ANY");
  EXPECT_EQ(r.protocol, "BGP4");
  EXPECT_EQ(r.into, "OSPF");
  EXPECT_EQ(term_of(r.entry).factors.size(), 1u);
  EXPECT_TRUE(f.diag.empty());
}

TEST(RuleParser, MissingAcceptIsDiagnosed) {
  Fixture f;
  Rule r = f.import("from AS64501");
  EXPECT_FALSE(f.diag.empty());
  const PolicyFactor& factor = term_of(r.entry).factors[0];
  EXPECT_NE(std::get_if<FilterUnknown>(&factor.filter.node), nullptr);
}

TEST(RuleParser, GarbageKeywordDiagnosed) {
  // "invalid RPSL keywords in import and export rules" (§4 syntax errors).
  Fixture f;
  f.import("fron AS64501 accept ANY");
  EXPECT_FALSE(f.diag.empty());
}

TEST(RuleParser, TextPreserved) {
  Fixture f;
  Rule r = f.import("from AS64501 accept ANY");
  EXPECT_EQ(r.text, "from AS64501 accept ANY");
}

TEST(ObjectParser, AutNumFull) {
  util::Diagnostics diag;
  auto objects = lex_objects(
      "aut-num: AS64500\n"
      "as-name: EXAMPLE-AS\n"
      "import: from AS64501 accept ANY\n"
      "import: from AS64502 accept AS64502\n"
      "export: to AS64501 announce AS64500\n"
      "mp-export: afi ipv6.unicast to AS64501 announce AS64500\n"
      "member-of: AS-UPSTREAM-CUSTOMERS\n"
      "mnt-by: MAINT-EXAMPLE\n",
      "TEST", diag);
  ASSERT_EQ(objects.size(), 1u);
  ParsedObject parsed = parse_object(objects[0], diag);
  const auto* an = std::get_if<AutNum>(&parsed);
  ASSERT_NE(an, nullptr);
  EXPECT_EQ(an->asn, 64500u);
  EXPECT_EQ(ir::sym_view(an->as_name), "EXAMPLE-AS");
  EXPECT_EQ(an->imports.size(), 2u);
  EXPECT_EQ(an->exports.size(), 2u);
  EXPECT_TRUE(an->exports[1].mp);
  ASSERT_EQ(an->member_of.size(), 1u);
  EXPECT_EQ(ir::sym_view(an->member_of[0]), "AS-UPSTREAM-CUSTOMERS");
  EXPECT_EQ(ir::sym_view(an->source), "TEST");
  EXPECT_TRUE(diag.empty());
}

TEST(ObjectParser, AsSetMembers) {
  util::Diagnostics diag;
  auto objects = lex_objects(
      "as-set: AS-EXAMPLE\n"
      "members: AS64500, AS64501, AS-OTHER, AS64502:AS-CUSTOMERS\n"
      "mbrs-by-ref: MAINT-A, MAINT-B\n",
      "TEST", diag);
  ParsedObject parsed = parse_object(objects[0], diag);
  const auto* set = std::get_if<AsSet>(&parsed);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->members.size(), 4u);
  EXPECT_EQ(set->members[0].kind, AsSetMember::Kind::kAsn);
  EXPECT_EQ(set->members[0].asn, 64500u);
  EXPECT_EQ(set->members[2].kind, AsSetMember::Kind::kSet);
  EXPECT_EQ(ir::sym_view(set->members[2].name), "AS-OTHER");
  EXPECT_EQ(ir::sym_view(set->members[3].name), "AS64502:AS-CUSTOMERS");
  EXPECT_EQ(set->mbrs_by_ref.size(), 2u);
  EXPECT_TRUE(diag.empty());
}

TEST(ObjectParser, AsSetNamedAsAnyIsInvalid) {
  util::Diagnostics diag;
  auto objects = lex_objects("as-set: AS-ANY\nmembers:\n", "TEST", diag);
  ParsedObject parsed = parse_object(objects[0], diag);
  // The object is kept for the census, but flagged.
  EXPECT_NE(std::get_if<AsSet>(&parsed), nullptr);
  EXPECT_EQ(diag.count(util::DiagnosticKind::kInvalidSetName), 1u);
}

TEST(ObjectParser, RouteSetMembers) {
  util::Diagnostics diag;
  auto objects = lex_objects(
      "route-set: RS-EXAMPLE\n"
      "members: 192.0.2.0/24^+, RS-OTHER, AS-FOO^24-32, AS64500, RS-ANY\n"
      "mp-members: 2001:db8::/32^48\n",
      "TEST", diag);
  ParsedObject parsed = parse_object(objects[0], diag);
  const auto* set = std::get_if<RouteSet>(&parsed);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->members.size(), 5u);
  EXPECT_EQ(set->members[0].kind, RouteSetMember::Kind::kPrefix);
  EXPECT_EQ(set->members[1].kind, RouteSetMember::Kind::kRouteSet);
  EXPECT_EQ(set->members[2].kind, RouteSetMember::Kind::kAsSet);
  EXPECT_EQ(set->members[2].op, net::RangeOp::range(24, 32));
  EXPECT_EQ(set->members[3].kind, RouteSetMember::Kind::kAsn);
  EXPECT_EQ(set->members[4].kind, RouteSetMember::Kind::kAny);
  ASSERT_EQ(set->mp_members.size(), 1u);
  EXPECT_EQ(set->mp_members[0].prefix.op, net::RangeOp::exact(48));
  EXPECT_TRUE(diag.empty());
}

TEST(ObjectParser, RouteAndRoute6) {
  util::Diagnostics diag;
  auto objects = lex_objects(
      "route: 192.0.2.0/24\norigin: AS64500\nmember-of: RS-EXAMPLE\n"
      "\n"
      "route6: 2001:db8::/32\norigin: AS64500\n",
      "TEST", diag);
  ASSERT_EQ(objects.size(), 2u);
  ParsedObject p4 = parse_object(objects[0], diag);
  const auto* r4 = std::get_if<RouteObject>(&p4);
  ASSERT_NE(r4, nullptr);
  EXPECT_EQ(r4->prefix.to_string(), "192.0.2.0/24");
  EXPECT_EQ(r4->origin, 64500u);
  EXPECT_EQ(r4->member_of.size(), 1u);
  ParsedObject p6 = parse_object(objects[1], diag);
  const auto* r6 = std::get_if<RouteObject>(&p6);
  ASSERT_NE(r6, nullptr);
  EXPECT_FALSE(r6->prefix.is_v4());
  EXPECT_TRUE(diag.empty());
}

TEST(ObjectParser, RouteFamilyMismatchRejected) {
  util::Diagnostics diag;
  auto objects = lex_objects("route: 2001:db8::/32\norigin: AS64500\n", "TEST", diag);
  ParsedObject parsed = parse_object(objects[0], diag);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(parsed));
  EXPECT_FALSE(diag.empty());
}

TEST(ObjectParser, RouteMissingOriginRejected) {
  util::Diagnostics diag;
  auto objects = lex_objects("route: 192.0.2.0/24\ndescr: no origin\n", "TEST", diag);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(parse_object(objects[0], diag)));
  EXPECT_FALSE(diag.empty());
}

TEST(ObjectParser, PeeringSet) {
  util::Diagnostics diag;
  auto objects = lex_objects(
      "peering-set: PRNG-EXAMPLE\n"
      "peering: AS64500 at 192.0.2.1\n"
      "mp-peering: AS64501\n",
      "TEST", diag);
  ParsedObject parsed = parse_object(objects[0], diag);
  const auto* set = std::get_if<PeeringSet>(&parsed);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->peerings.size(), 1u);
  EXPECT_EQ(set->mp_peerings.size(), 1u);
  EXPECT_TRUE(diag.empty());
}

TEST(ObjectParser, FilterSet) {
  util::Diagnostics diag;
  auto objects = lex_objects(
      "filter-set: FLTR-EXAMPLE\n"
      "filter: { 192.0.2.0/24^+ } AND NOT AS64500\n"
      "mp-filter: ANY\n",
      "TEST", diag);
  ParsedObject parsed = parse_object(objects[0], diag);
  const auto* set = std::get_if<FilterSet>(&parsed);
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->has_filter);
  EXPECT_TRUE(set->has_mp_filter);
  EXPECT_NE(std::get_if<FilterAnd>(&set->filter.node), nullptr);
  EXPECT_TRUE(diag.empty());
}

TEST(ObjectParser, UnmodeledClassesIgnored) {
  util::Diagnostics diag;
  auto objects = lex_objects("person: John Doe\nnic-hdl: JD1\n", "TEST", diag);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(parse_object(objects[0], diag)));
  EXPECT_TRUE(diag.empty());
}

}  // namespace
}  // namespace rpslyzer::rpsl
