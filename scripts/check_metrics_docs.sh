#!/usr/bin/env bash
# check_metrics_docs.sh — every Prometheus metric family minted anywhere in
# src/ must have a row in DESIGN.md's metrics table. A metric that ships
# without documentation is invisible to operators; this check makes adding
# the table row part of adding the metric.
#
# Name extraction is deliberately loose: family names appear as bare string
# literals ("rpslyzer_fleet_edges "), inside HELP/TYPE lines, and with
# histogram sub-series suffixes (_bucket/_sum/_count), so the grep is
# unanchored and the suffixes are stripped back to the family name.
# Filtered out: tokens ending in "_" (comment globs like rpslyzer_fleet_*)
# and single-underscore tokens (library target names like rpslyzer_obs).
#
#   scripts/check_metrics_docs.sh
set -euo pipefail
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DESIGN="$ROOT/DESIGN.md"

test -f "$DESIGN" || { echo "check_metrics_docs: $DESIGN not found"; exit 2; }

minted="$(grep -rhoE 'rpslyzer_[a-z0-9_]+' "$ROOT/src" \
            --include='*.cpp' --include='*.hpp' \
          | grep -v '_$' \
          | grep -E '^rpslyzer(_[a-z0-9]+){2,}$' \
          | sed -E 's/_(bucket|sum|count)$//' \
          | sort -u)"
documented="$(grep -hoE 'rpslyzer_[a-z0-9_]+' "$DESIGN" \
              | sed -E 's/_(bucket|sum|count)$//' | sort -u)"

missing="$(comm -23 <(echo "$minted") <(echo "$documented"))"
if [ -n "$missing" ]; then
  echo "check_metrics_docs: metric families minted in src/ but missing from"
  echo "the DESIGN.md metrics table:"
  echo "$missing" | sed 's/^/  /'
  exit 1
fi

total="$(echo "$minted" | wc -l | tr -d ' ')"
echo "check_metrics_docs ok: $total metric families all documented"
