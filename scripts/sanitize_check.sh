#!/usr/bin/env bash
# Build with -DRPSLYZER_SANITIZE=ON (ASan + UBSan) and run the fault/server
# test set (ctest label "fault", which includes the telemetry suite
# obs_test) plus the snapshot persistence suite (label "persist"): any data
# race turned heap error, leaked connection buffer, leaked socket-owning
# object, or out-of-bounds read off a truncated mmap fails the run. The same set is then re-run
# under a matrix of RPSLYZER_FAILPOINTS environments so the injected error,
# delay, and truncate paths are sanitizer-clean too. Finally, when the
# toolchain has a working TSan runtime, the relaxed-atomic telemetry hot
# paths (obs_test) and the server loop (server_test) are re-run under
# ThreadSanitizer in a second side build.
# Uses side build directories so the normal build stays fast.
#
#   scripts/sanitize_check.sh [build-dir]
set -euo pipefail
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-sanitize}"

# Cheap static gate first: every metric family minted in src/ must be in
# DESIGN.md's metrics table before we spend minutes on sanitizer builds.
"$ROOT/scripts/check_metrics_docs.sh"

cmake -B "$BUILD" -S "$ROOT" -DRPSLYZER_SANITIZE=ON >/dev/null
cmake --build "$BUILD" -j --target \
  server_test query_test irr_index_test fault_injection_test loader_files_test obs_test \
  parallel_loader_test shard_fuzz_test compile_snapshot_test parallel_verify_test \
  persist_test repl_test delta_test delta_fuzz_test arena_interner_test rand_test \
  rpslyzer_cli

run_labeled() {
  local spec="$1" exclude="${2:-}" labels="${3:-fault}"
  echo "== RPSLYZER_FAILPOINTS='${spec}' labels='${labels}' =="
  (cd "$BUILD" && RPSLYZER_FAILPOINTS="$spec" \
     ctest -L "$labels" ${exclude:+-E "$exclude"} --output-on-failure -j4)
}

# Baseline (fault plus the mmap/decode-heavy persist suite — the snapshot
# loader's pointer fixups and bounds checks are exactly what ASan/UBSan
# police — plus the replication suite, whose torn-transfer and digest-
# mismatch failpoint paths juggle partial files and raw byte buffers
# across the edge agent thread), then each action kind. Error actions are limited to sites whose
# callers degrade gracefully (cache bypass); tests that assert exact cache
# hit counts are excluded from that entry since bypassing the cache is its
# intended observable effect. The loader/server error paths are driven
# programmatically by fault_injection_test, where the test controls the
# blast radius.
run_labeled "" "" "fault|persist|repl|delta|parallel"
run_labeled "server.send=delay(2ms);server.dispatch=delay(1ms)"
run_labeled "cache.get=error;cache.put=error" 'Server\.|ResponseCache'
run_labeled "irr.parse=truncate(65536)"

# 100-batch differential-equivalence soak (incremental apply vs full
# recompile, byte-compared after every batch) against the sanitized CLI —
# the delta acceptance bar requires the byte-identity proof to hold under
# ASan/UBSan, not just in the fast build.
"$ROOT/scripts/delta_equiv_check.sh" "$BUILD/tools/rpslyzer"

# Leak + footprint gate: a synthetic load+verify run of the sanitized CLI
# under LeakSanitizer must report zero definite leaks and stay under the
# peak-RSS ceiling (the arena/interner refactor trades copies for pooled
# storage; this is the check that the pools do not merely hide growth).
"$ROOT/scripts/alloc_check.sh" "$BUILD/tools/rpslyzer"

# TSan pass (if the toolchain supports it): the metrics registry, log gate,
# and span recording all lean on relaxed atomics, the sharded ingestion
# pipeline merges per-shard results across a worker pool, and parallel
# verification shares one immutable CompiledPolicySnapshot (and one const
# Verifier) across every worker, so a race-detector run of obs_test's
# multi-threaded tests, the server loop, the parallel loader differential
# suite, and the snapshot-sharing verify tests is the strongest check that
# "lock-cheap" (and "lock-free-by-immutability") did not become "racy".
TSAN_BUILD="${BUILD}-tsan"
tsan_probe="$(mktemp -d)"
printf 'int main(){return 0;}\n' > "$tsan_probe/probe.c"
if cc -fsanitize=thread "$tsan_probe/probe.c" -o "$tsan_probe/probe" 2>/dev/null \
   && "$tsan_probe/probe" 2>/dev/null; then
  echo "== ThreadSanitizer pass =="
  cmake -B "$TSAN_BUILD" -S "$ROOT" -DRPSLYZER_SANITIZE_THREAD=ON >/dev/null
  cmake --build "$TSAN_BUILD" -j --target obs_test server_test parallel_loader_test \
    compile_snapshot_test parallel_verify_test persist_test repl_test \
    delta_test delta_fuzz_test arena_interner_test
  "$TSAN_BUILD/tests/obs_test"
  "$TSAN_BUILD/tests/server_test"
  "$TSAN_BUILD/tests/parallel_loader_test"
  "$TSAN_BUILD/tests/compile_snapshot_test"
  "$TSAN_BUILD/tests/parallel_verify_test"
  # The server-reload persist tests share one mmap'd snapshot across the
  # accept loop and worker threads — the aliasing shared_ptr ownership is
  # the racy-by-construction surface TSan should sign off on.
  "$TSAN_BUILD/tests/persist_test"
  # The replication suite runs an edge agent thread against a live origin
  # event loop: condvar wakeups, atomic status counters, and the activation
  # callback crossing threads are all under the race detector here.
  "$TSAN_BUILD/tests/repl_test"
  # The delta pipeline splits its state behind two mutexes (apply vs
  # publish/stats) and shares immutable previous-generation tables into the
  # next snapshot; the differential suite recompiles under that sharing on
  # every batch, so a TSan pass here signs off the reuse scheme.
  "$TSAN_BUILD/tests/delta_test"
  "$TSAN_BUILD/tests/delta_fuzz_test"
  # The interner's lock-free read path (acquire cell loads against the
  # locked insert's release publication) is precisely the kind of
  # annotation-free synchronization TSan exists to audit.
  "$TSAN_BUILD/tests/arena_interner_test"
else
  echo "== ThreadSanitizer unavailable on this toolchain; skipping TSan pass =="
fi
rm -rf "$tsan_probe"

echo "sanitize check ok"
