#!/usr/bin/env bash
# Build with -DRPSLYZER_SANITIZE=ON (ASan + UBSan) and run the fault/server
# test set (ctest label "fault"): any data race turned heap error, leaked
# connection buffer, or leaked socket-owning object fails the run. The same
# set is then re-run under a matrix of RPSLYZER_FAILPOINTS environments so
# the injected error, delay, and truncate paths are sanitizer-clean too.
# Uses a side build directory so the normal build stays fast.
#
#   scripts/sanitize_check.sh [build-dir]
set -euo pipefail
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-sanitize}"

cmake -B "$BUILD" -S "$ROOT" -DRPSLYZER_SANITIZE=ON >/dev/null
cmake --build "$BUILD" -j --target \
  server_test query_test irr_index_test fault_injection_test loader_files_test

run_labeled() {
  local spec="$1" exclude="${2:-}"
  echo "== RPSLYZER_FAILPOINTS='${spec}' =="
  (cd "$BUILD" && RPSLYZER_FAILPOINTS="$spec" \
     ctest -L fault ${exclude:+-E "$exclude"} --output-on-failure -j4)
}

# Baseline, then each action kind. Error actions are limited to sites whose
# callers degrade gracefully (cache bypass); tests that assert exact cache
# hit counts are excluded from that entry since bypassing the cache is its
# intended observable effect. The loader/server error paths are driven
# programmatically by fault_injection_test, where the test controls the
# blast radius.
run_labeled ""
run_labeled "server.send=delay(2ms);server.dispatch=delay(1ms)"
run_labeled "cache.get=error;cache.put=error" 'Server\.|ResponseCache'
run_labeled "irr.parse=truncate(65536)"

echo "sanitize check ok"
