#!/usr/bin/env bash
# Build with -DRPSLYZER_SANITIZE=ON (ASan + UBSan) and run the tests that
# exercise the threaded query server: any data race turned heap error, leaked
# connection buffer, or leaked socket-owning object fails the run. Uses a
# side build directory so the normal build stays fast.
#
#   scripts/sanitize_check.sh [build-dir]
set -euo pipefail
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-sanitize}"

cmake -B "$BUILD" -S "$ROOT" -DRPSLYZER_SANITIZE=ON >/dev/null
cmake --build "$BUILD" -j --target server_test query_test irr_index_test
(cd "$BUILD" &&
 ctest -R 'Server\.|ResponseCache|LatencyHistogram|QueryEngine' \
       --output-on-failure -j4)
echo "sanitize check ok"
