#!/usr/bin/env bash
# Regenerate the repository's recorded outputs: full test run and every
# table/figure/microbench, as cited by EXPERIMENTS.md.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done
