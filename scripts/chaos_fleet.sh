#!/usr/bin/env bash
# chaos_fleet.sh — replication chaos harness: 1 origin + 3 edges under
# loadgen while edges and the origin are SIGKILLed and restarted.
#
#   scripts/chaos_fleet.sh [<rpslyzer_cli> [<loadgen>]]
#
# Pass/fail criteria (the ISSUE's acceptance bar):
#   * zero wrong answers: every response to the oracle query, on every
#     edge, at every point in the run, byte-matches the known-good framed
#     response (loadgen --expect-file);
#   * an edge SIGKILLed and restarted recovers its last-good snapshot from
#     disk and serves immediately;
#   * edges keep serving last-good through an origin SIGKILL, and converge
#     back (origin-up, matching generation) within 3 poll intervals of the
#     origin returning;
#   * a new generation published under load propagates to every edge;
#   * after the sustained load drains, the origin's `!fleet` totals
#     reconcile exactly with the sum of per-edge `!stats` cache counters
#     (lookups = Σ(hits+misses), hits = Σhits, evaluations = Σmisses)
#     within one heartbeat interval;
#   * a SIGKILLed edge's fleet row goes stale-marked and its counters drop
#     out of the totals and the merged latency histogram instead of
#     poisoning the fleet p99;
#   * (journal phase) an origin applying NRTM churn batches incrementally
#     under oracle load publishes atomically: edges converge batch by
#     batch, a SIGKILL of the origin mid-batch never exposes a torn
#     generation (the byte-exact oracle stays 0 wrong throughout), and the
#     restarted origin catches up the journal before serving.
#
# Not a ctest: this script runs ~30s of wall-clock chaos and is meant for
# manual runs and CI jobs that can afford it. Torn connections against a
# deliberately killed process are expected (availability loss), wrong
# bytes never are (correctness loss).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLI="${1:-$ROOT/build/tools/rpslyzer}"
LOADGEN="${2:-$ROOT/build/tools/loadgen}"
test -x "$CLI" || { echo "chaos_fleet: $CLI not executable (build first)"; exit 2; }
test -x "$LOADGEN" || { echo "chaos_fleet: $LOADGEN not executable"; exit 2; }

POLL_MS=500
DIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$DIR"
}
trap cleanup EXIT

say() { echo "chaos_fleet: $*"; }

# --- corpus + oracle ------------------------------------------------------
"$CLI" generate "$DIR/corpus" 0.2 11 >/dev/null
ASN="$(awk '/^origin:/ {print $2; exit}' "$DIR/corpus"/*.db)"
"$CLI" query "$DIR/corpus" "!g$ASN" > "$DIR/oracle.txt"
grep -q "^A" "$DIR/oracle.txt" || { say "oracle query returned no route set"; exit 2; }
say "oracle: !g$ASN ($(wc -c < "$DIR/oracle.txt") bytes)"

# NB: the port regex is anchored to the start of the listening line — an
# edge's line embeds the ORIGIN's port in "corpus=repl:127.0.0.1:NNN".
port_of() {  # <logfile>
  sed -n 's/^rpslyzerd listening on 127\.0\.0\.1:\([0-9]*\) .*/\1/p' "$1" | head -1
}
wait_listening() {  # <logfile>
  for _ in $(seq 1 200); do
    grep -q "listening" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  say "daemon never came up: $1"; tail -5 "$1"; return 1
}

ask() {  # <port> <query...> — one connection, all framed responses on stdout
  local port="$1"; shift
  local payload=""
  for q in "$@"; do payload="$payload$q"$'\n'; done
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf '%s!q\n' "$payload" >&3
  cat <&3
  exec 3<&- 3>&-
}

start_origin() {  # <port: 0 for ephemeral>
  "$CLI" serve "$DIR/corpus" --publish --port "$1" --threads 2 --stats-ms 0 \
    > "$DIR/origin.log" 2>&1 &
  ORIGIN_PID=$!
  PIDS+=("$ORIGIN_PID")
  wait_listening "$DIR/origin.log"
}

start_edge() {  # <n>
  local n="$1"
  mkdir -p "$DIR/edge$n"
  "$CLI" serve --origin "127.0.0.1:$OPORT" --repl-dir "$DIR/edge$n" \
    --edge-id "edge$n" --poll-ms "$POLL_MS" --heartbeat-ms 300 \
    --port 0 --threads 2 --stats-ms 0 > "$DIR/edge$n.log" 2>&1 &
  EDGE_PID[$n]=$!
  PIDS+=("${EDGE_PID[$n]}")
}

# Burst of oracle-checked load; exits non-zero on any wrong byte. Totals
# accumulate so the final report shows how much was actually checked.
TOTAL_CHECKED=0
burst() {  # <port> <tag>
  local out
  out="$("$LOADGEN" --port "$1" --connections 2 --pipeline 4 --requests 40 \
         --expect-file "$DIR/oracle.txt" --json "!g$ASN" "!iAS-NOPE")" || {
    say "FAIL: loadgen burst against $2 (port $1): $out"; return 1;
  }
  local wrong checked
  wrong="$(echo "$out" | grep -o '"wrong":[0-9]*' | cut -d: -f2)"
  checked="$(echo "$out" | grep -o '"checked":[0-9]*' | cut -d: -f2)"
  TOTAL_CHECKED=$((TOTAL_CHECKED + checked))
  if [ "$wrong" != "0" ]; then
    say "FAIL: $wrong wrong answers from $2"; return 1
  fi
}

# Converge = edge reports origin-up and the origin's current generation.
# Deadline: 3 poll intervals (the acceptance bar), measured from now.
wait_converged() {  # <port> <gen> <tag>
  local deadline=$(( 3 * POLL_MS ))
  local waited=0
  while [ "$waited" -le "$deadline" ]; do
    local page
    page="$(ask "$1" "!repl" 2>/dev/null || true)"
    if echo "$page" | grep -q "origin-up: 1" && echo "$page" | grep -q "^gen: $2$"; then
      say "$3 converged to gen $2 in ${waited}ms"
      return 0
    fi
    sleep 0.1
    waited=$((waited + 100))
  done
  say "FAIL: $3 did not converge to gen $2 within ${deadline}ms"
  ask "$1" "!repl" || true
  return 1
}

# --- phase 0: bring the fleet up -----------------------------------------
declare -A EDGE_PID EPORT
start_origin 0
OPORT="$(port_of "$DIR/origin.log")"
say "origin on :$OPORT"
for n in 1 2 3; do start_edge "$n"; done
for n in 1 2 3; do
  wait_listening "$DIR/edge$n.log"
  EPORT[$n]="$(port_of "$DIR/edge$n.log")"
done
say "edges on :${EPORT[1]} :${EPORT[2]} :${EPORT[3]}"
for n in 1 2 3; do wait_converged "${EPORT[$n]}" 1 "edge$n"; done

# Sustained background load on the two edges that stay up for the whole
# run: they must carry zero wrong answers through every kill below.
"$LOADGEN" --port "${EPORT[1]}" --connections 2 --pipeline 4 --duration-ms 20000 \
  --expect-file "$DIR/oracle.txt" --json "!g$ASN" "!stats" > "$DIR/load1.json" &
LOAD1=$!
"$LOADGEN" --port "${EPORT[3]}" --connections 2 --pipeline 4 --duration-ms 20000 \
  --expect-file "$DIR/oracle.txt" --json "!g$ASN" "!iAS-NOPE" > "$DIR/load3.json" &
LOAD3=$!
PIDS+=("$LOAD1" "$LOAD3")
for n in 1 2 3; do burst "${EPORT[$n]}" "edge$n (fleet up)"; done

# --- phase 1: SIGKILL an edge, restart it --------------------------------
say "phase 1: SIGKILL edge2"
kill -9 "${EDGE_PID[2]}"
wait "${EDGE_PID[2]}" 2>/dev/null || true
burst "${EPORT[1]}" "edge1 (sibling dead)"
burst "${EPORT[3]}" "edge3 (sibling dead)"
: > "$DIR/edge2.log"
start_edge 2                      # same state dir: recovers last-good from disk
wait_listening "$DIR/edge2.log"
EPORT[2]="$(port_of "$DIR/edge2.log")"
wait_converged "${EPORT[2]}" 1 "edge2 (restarted)"
burst "${EPORT[2]}" "edge2 (restarted)"

# --- phase 2: SIGKILL the origin; edges serve last-good ------------------
say "phase 2: SIGKILL origin"
kill -9 "$ORIGIN_PID"
wait "$ORIGIN_PID" 2>/dev/null || true
sleep 1                           # let edges notice (heartbeat + poll fail)
for n in 1 2 3; do burst "${EPORT[$n]}" "edge$n (origin down)"; done
ask "${EPORT[1]}" "!repl" | grep -q "origin-up: 0" ||
  { say "FAIL: edge1 still claims origin-up during outage"; exit 1; }

say "phase 2: restart origin on :$OPORT"
: > "$DIR/origin.log"
start_origin "$OPORT"             # same content -> same checksum -> gen 1 readopted
for n in 1 2 3; do wait_converged "${EPORT[$n]}" 1 "edge$n (origin back)"; done
for n in 1 2 3; do burst "${EPORT[$n]}" "edge$n (origin back)"; done

# --- phase 3: publish a new generation under load ------------------------
say "phase 3: new generation via corpus change + SIGHUP"
printf '\nroute: 203.0.113.0/24\norigin: AS64999\nmnt-by: MAINT-CHAOS\nsource: RADB\n' \
  >> "$DIR/corpus/radb.db"
kill -HUP "$ORIGIN_PID"
for _ in $(seq 1 100); do
  ask "$OPORT" "!repl" | grep -q "^gen: 2$" && break
  sleep 0.1
done
ask "$OPORT" "!repl" | grep -q "^gen: 2$" ||
  { say "FAIL: origin never published generation 2"; exit 1; }
for n in 1 2 3; do wait_converged "${EPORT[$n]}" 2 "edge$n (gen 2)"; done
for n in 1 2 3; do burst "${EPORT[$n]}" "edge$n (gen 2)"; done

# --- wrap up --------------------------------------------------------------
wait "$LOAD1" || { say "FAIL: sustained load on edge1 saw failures/wrong bytes"; \
                   cat "$DIR/load1.json"; exit 1; }
wait "$LOAD3" || { say "FAIL: sustained load on edge3 saw failures/wrong bytes"; \
                   cat "$DIR/load3.json"; exit 1; }
grep -q '"wrong":0' "$DIR/load1.json" && grep -q '"failed":false' "$DIR/load1.json"
grep -q '"wrong":0' "$DIR/load3.json" && grep -q '"failed":false' "$DIR/load3.json"
for f in "$DIR/load1.json" "$DIR/load3.json"; do
  checked="$(grep -o '"checked":[0-9]*' "$f" | cut -d: -f2)"
  TOTAL_CHECKED=$((TOTAL_CHECKED + checked))
done

# --- phase 4: fleet observability reconciliation -------------------------
# The load is quiesced and only admin probes follow, so cache counters are
# frozen; after one more heartbeat the origin's aggregate must equal the
# sum of what each edge reports first-hand.
say "phase 4: reconcile origin !fleet against per-edge !stats"
sleep 1                           # > 3 heartbeat intervals: final beats land
FLEET="$(ask "$OPORT" "!fleet")"
TOTALS_LINE="$(echo "$FLEET" | grep '^totals: ')" ||
  { say "FAIL: origin !fleet has no totals line"; echo "$FLEET"; exit 1; }
fleet_total() { echo "$TOTALS_LINE" | grep -o "$1=[0-9]*" | head -1 | cut -d= -f2; }
SUM_HITS=0; SUM_MISSES=0
for n in 1 2 3; do
  CACHE_LINE="$(ask "${EPORT[$n]}" "!stats" | grep '^cache: ')"
  h="$(echo "$CACHE_LINE" | grep -o 'hits=[0-9]*' | head -1 | cut -d= -f2)"
  m="$(echo "$CACHE_LINE" | grep -o 'misses=[0-9]*' | head -1 | cut -d= -f2)"
  SUM_HITS=$((SUM_HITS + h)); SUM_MISSES=$((SUM_MISSES + m))
done
[ "$(fleet_total hits)" = "$SUM_HITS" ] ||
  { say "FAIL: fleet hits=$(fleet_total hits) != Σ edge hits=$SUM_HITS"; echo "$FLEET"; exit 1; }
[ "$(fleet_total evaluations)" = "$SUM_MISSES" ] ||
  { say "FAIL: fleet evaluations=$(fleet_total evaluations) != Σ edge misses=$SUM_MISSES"; echo "$FLEET"; exit 1; }
[ "$(fleet_total lookups)" = "$((SUM_HITS + SUM_MISSES))" ] ||
  { say "FAIL: fleet lookups=$(fleet_total lookups) != Σ edge lookups=$((SUM_HITS + SUM_MISSES))"; echo "$FLEET"; exit 1; }
say "fleet totals reconcile: lookups=$((SUM_HITS + SUM_MISSES)) hits=$SUM_HITS evaluations=$SUM_MISSES"

say "phase 4: SIGKILL edge2; its fleet row must go stale, not poison p99"
kill -9 "${EDGE_PID[2]}"
wait "${EDGE_PID[2]}" 2>/dev/null || true
sleep 1.6                         # stale threshold: 4 x max(heartbeat, 250ms)
FLEET2="$(ask "$OPORT" "!fleet")"
echo "$FLEET2" | grep -q '^edges: 3 stale=1' ||
  { say "FAIL: dead edge2 not counted stale"; echo "$FLEET2"; exit 1; }
echo "$FLEET2" | grep '^edge: edge2 ' | grep -q 'stale=1' ||
  { say "FAIL: edge2's row is not stale-marked"; echo "$FLEET2"; exit 1; }
TOTALS_LINE="$(echo "$FLEET2" | grep '^totals: ')"
SUM_HITS=0; SUM_MISSES=0
for n in 1 3; do
  CACHE_LINE="$(ask "${EPORT[$n]}" "!stats" | grep '^cache: ')"
  h="$(echo "$CACHE_LINE" | grep -o 'hits=[0-9]*' | head -1 | cut -d= -f2)"
  m="$(echo "$CACHE_LINE" | grep -o 'misses=[0-9]*' | head -1 | cut -d= -f2)"
  SUM_HITS=$((SUM_HITS + h)); SUM_MISSES=$((SUM_MISSES + m))
done
[ "$(fleet_total hits)" = "$SUM_HITS" ] ||
  { say "FAIL: stale edge2 still counted in fleet hits"; echo "$FLEET2"; exit 1; }
echo "$FLEET2" | grep '^fleet: ' | grep -Eq 'p99-us=[0-9]+ samples=[1-9]' ||
  { say "FAIL: fleet p99 line missing or empty after staleness"; echo "$FLEET2"; exit 1; }
say "stale edge excluded: totals now hits=$SUM_HITS evaluations=$SUM_MISSES"

for n in 1 2 3; do kill -TERM "${EDGE_PID[$n]}" 2>/dev/null || true; done
kill -TERM "$ORIGIN_PID" 2>/dev/null || true
for n in 1 2 3; do wait "${EDGE_PID[$n]}" 2>/dev/null || true; done
wait "$ORIGIN_PID" 2>/dev/null || true

# --- phase 5: incremental journal churn under load + mid-batch kill -------
# Fresh mini-fleet: an origin following an NRTM journal directory, two
# edges replicating from it. Churn batches (protected so the oracle AS's
# routes never change) land one file at a time; each must publish
# atomically and propagate. A SIGKILL right after a batch file lands races
# the 50ms poll + apply — whichever side of the apply the kill hits, no
# served response may ever be torn.
say "phase 5: journal churn (protect $ASN)"
"$CLI" journal synth "$DIR/corpus" --out "$DIR/jstage" --batches 5 --ops 24 \
  --seed 7 --protect "$ASN" >/dev/null
mapfile -t BATCH_FILES < <(ls "$DIR/jstage"/batch-*.nrtm | sort)
[ "${#BATCH_FILES[@]}" = 5 ] || { say "FAIL: expected 5 staged batches"; exit 1; }
mkdir -p "$DIR/journal"

start_origin_journal() {  # <port: 0 for ephemeral>
  "$CLI" serve "$DIR/corpus" --journal "$DIR/journal" --journal-poll-ms 50 \
    --publish --port "$1" --threads 2 --stats-ms 0 > "$DIR/jorigin.log" 2>&1 &
  ORIGIN_PID=$!
  PIDS+=("$ORIGIN_PID")
  wait_listening "$DIR/jorigin.log"
}
origin_gen() { ask "$OPORT" "!repl" | sed -n 's/^gen: \([0-9]*\)$/\1/p' | head -1; }
wait_files_done() {  # <count>
  for _ in $(seq 1 100); do
    ask "$OPORT" "!stats" 2>/dev/null | grep -q "files_done=$1" && return 0
    sleep 0.1
  done
  say "FAIL: origin never reached files_done=$1"
  ask "$OPORT" "!stats" || true
  return 1
}
wait_origin_gen() {  # <gen> — the publish after a journal activation
  for _ in $(seq 1 100); do
    [ "$(origin_gen)" = "$1" ] && return 0
    sleep 0.1
  done
  say "FAIL: origin never published gen $1"
  ask "$OPORT" "!repl" || true
  return 1
}

start_origin_journal 0
OPORT="$(port_of "$DIR/jorigin.log")"
say "journal origin on :$OPORT"
for n in 4 5; do start_edge "$n"; done
for n in 4 5; do
  wait_listening "$DIR/edge$n.log"
  EPORT[$n]="$(port_of "$DIR/edge$n.log")"
done
for n in 4 5; do wait_converged "${EPORT[$n]}" "$(origin_gen)" "edge$n (journal fleet)"; done

"$LOADGEN" --port "${EPORT[4]}" --connections 2 --pipeline 4 --duration-ms 8000 \
  --expect-file "$DIR/oracle.txt" --json "!g$ASN" "!stats" > "$DIR/load4.json" &
LOAD4=$!
PIDS+=("$LOAD4")

for k in 0 1 2; do
  mv "${BATCH_FILES[$k]}" "$DIR/journal/"
  wait_files_done $((k + 1))
  wait_origin_gen $((k + 2))       # one journal activation -> one publish
  for n in 4 5; do wait_converged "${EPORT[$n]}" $((k + 2)) "edge$n (journal batch $((k + 1)))"; done
  for n in 4 5; do burst "${EPORT[$n]}" "edge$n (journal batch $((k + 1)))"; done
done
ask "$OPORT" "!stats" | grep -q '^delta: serial=[1-9]' ||
  { say "FAIL: origin !stats has no delta serial line"; ask "$OPORT" "!stats"; exit 1; }

say "phase 5: SIGKILL origin mid-batch"
mv "${BATCH_FILES[3]}" "$DIR/journal/"
sleep 0.06                         # lands inside the poll + apply window
kill -9 "$ORIGIN_PID"
wait "$ORIGIN_PID" 2>/dev/null || true
for n in 4 5; do burst "${EPORT[$n]}" "edge$n (journal origin down)"; done

say "phase 5: restart origin; it must catch the journal up before serving"
: > "$DIR/jorigin.log"
start_origin_journal "$OPORT"
wait_files_done 4
for n in 4 5; do wait_converged "${EPORT[$n]}" "$(origin_gen)" "edge$n (origin caught up)"; done
for n in 4 5; do burst "${EPORT[$n]}" "edge$n (origin caught up)"; done

mv "${BATCH_FILES[4]}" "$DIR/journal/"
wait_files_done 5
wait_origin_gen 2                  # restarted origin: catch-up was gen 1
for n in 4 5; do wait_converged "${EPORT[$n]}" 2 "edge$n (journal final)"; done
for n in 4 5; do burst "${EPORT[$n]}" "edge$n (journal final)"; done

wait "$LOAD4" || { say "FAIL: sustained load on edge4 saw failures/wrong bytes"; \
                   cat "$DIR/load4.json"; exit 1; }
grep -q '"wrong":0' "$DIR/load4.json" && grep -q '"failed":false' "$DIR/load4.json"
checked="$(grep -o '"checked":[0-9]*' "$DIR/load4.json" | cut -d: -f2)"
TOTAL_CHECKED=$((TOTAL_CHECKED + checked))

for n in 4 5; do kill -TERM "${EDGE_PID[$n]}" 2>/dev/null || true; done
kill -TERM "$ORIGIN_PID" 2>/dev/null || true
for n in 4 5; do wait "${EDGE_PID[$n]}" 2>/dev/null || true; done
wait "$ORIGIN_PID" 2>/dev/null || true

say "ok: $TOTAL_CHECKED oracle responses checked, 0 wrong"
