#!/usr/bin/env bash
# Leak + footprint gate for the zero-copy hot paths: generate a synthetic
# corpus, then run the CLI's load (parallel sharded ingestion) and verify
# (parse → compile → verify) paths under LeakSanitizer and require
#
#   1. zero definite leaks — the arena/interner refactor moved parse-IR
#      ownership from per-object std::strings into pooled storage, and a
#      "leak" of a pool is exactly what LSan's definite-leak report would
#      catch (the process-lifetime global symbol table is reachable through
#      a static, so it does not trip this);
#   2. peak RSS under a ceiling — pooled storage must not merely hide
#      growth from the allocator, so the footprint of the whole run is
#      bounded too (generous ceiling: this is a regression tripwire for
#      runaway duplication, not a tight budget).
#
# Usage: scripts/alloc_check.sh <path-to-sanitized-rpslyzer-cli> [ceiling-kb]
# The binary must be an ASan build (-DRPSLYZER_SANITIZE=ON); LSan rides on
# ASan. On hosts whose kernel blocks ptrace-based leak detection the LSan
# run degrades to the RSS check alone (with a warning), never to silence.
set -euo pipefail
CLI="$1"
CEILING_KB="${2:-4194304}"   # 4 GiB default: synthetic corpus is ~100 MB
DIR="$(mktemp -d)"
cleanup() { rm -rf "$DIR"; }
trap cleanup EXIT

"$CLI" generate "$DIR" 0.1 7 >/dev/null

# Peak child RSS via getrusage(RUSAGE_CHILDREN) — portable to hosts
# without GNU time. Writes the child's ru_maxrss (KiB on Linux) to the
# given file and propagates the child's exit status.
measure_rss() {
  local rss_file="$1"; shift
  python3 - "$rss_file" "$@" <<'PYEOF'
import resource, subprocess, sys
rc = subprocess.call(sys.argv[2:])
with open(sys.argv[1], "w") as f:
    f.write(str(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss))
sys.exit(rc)
PYEOF
}

run_gated() {
  local name="$1"; shift
  local rss_out="$DIR/rss-$name.txt" log="$DIR/lsan-$name.txt"
  local status=0
  # detect_leaks=1 is the default under ASan on Linux, but be explicit: a
  # future default flip must not silently disable the gate.
  ASAN_OPTIONS="detect_leaks=1:exitcode=23" \
    measure_rss "$rss_out" "$CLI" "$@" >"$log" 2>&1 || status=$?
  if [ "$status" -eq 23 ] || grep -q "Direct leak" "$log"; then
    echo "alloc check FAILED: definite leaks in '$name'" >&2
    grep -A4 "Direct leak" "$log" >&2 || cat "$log" >&2
    return 1
  elif [ "$status" -ne 0 ]; then
    if grep -qi "LeakSanitizer.*ptrace\|tracer" "$log"; then
      echo "warning: LSan cannot ptrace on this host; leak gate skipped for '$name'" >&2
    else
      echo "alloc check FAILED: '$name' exited $status" >&2
      cat "$log" >&2
      return 1
    fi
  fi
  local rss_kb
  rss_kb="$(cat "$rss_out" 2>/dev/null || echo "")"
  echo "$name: peak RSS ${rss_kb} KiB (ceiling ${CEILING_KB})"
  if [ -n "$rss_kb" ] && [ "$rss_kb" -gt "$CEILING_KB" ]; then
    echo "alloc check FAILED: '$name' peak RSS ${rss_kb} KiB > ceiling ${CEILING_KB} KiB" >&2
    return 1
  fi
}

run_gated load load "$DIR" --threads 2 --shard-kb 64
run_gated verify verify "$DIR"

echo "alloc check ok"
