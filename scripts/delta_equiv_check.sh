#!/usr/bin/env bash
# delta_equiv_check.sh — the delta pipeline's correctness spine, as a soak:
# apply N seeded churn batches through the incremental pipeline and, after
# every batch, recompile the same corpus from scratch and require the two
# snapshots to answer identically (`rpslyzer journal apply --verify-full`
# probes flattenings, origin/route-set lookups, and full !v verdict reports
# on both sides, then compares content digests). Any divergence — an
# under-approximated dirty set, a stale reused table, a missed reverse
# dependency — fails the batch that introduced it, with the first
# mismatching probe printed.
#
#   scripts/delta_equiv_check.sh [<rpslyzer_cli>]
#
# Tunables (env): DELTA_EQUIV_BATCHES (default 100), DELTA_EQUIV_OPS (8),
# DELTA_EQUIV_SCALE (0.04), DELTA_EQUIV_SEED (29). sanitize_check.sh runs
# this against the ASan/UBSan build so the ≥100-batch byte-identity bar is
# met under sanitizers, not just in the fast build.
set -euo pipefail
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLI="${1:-$ROOT/build/tools/rpslyzer}"
test -x "$CLI" || { echo "delta_equiv_check: $CLI not executable (build first)"; exit 2; }

BATCHES="${DELTA_EQUIV_BATCHES:-100}"
OPS="${DELTA_EQUIV_OPS:-8}"
SCALE="${DELTA_EQUIV_SCALE:-0.04}"
SEED="${DELTA_EQUIV_SEED:-29}"

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

echo "delta_equiv_check: corpus scale=$SCALE, $BATCHES batches x $OPS ops (seed $SEED)"
"$CLI" generate "$DIR/corpus" "$SCALE" 13 >/dev/null
"$CLI" journal synth "$DIR/corpus" --out "$DIR/journal" \
  --batches "$BATCHES" --ops "$OPS" --seed "$SEED" >/dev/null
"$CLI" journal apply "$DIR/corpus" --journal "$DIR/journal" --verify-full \
  | tail -3
echo "delta_equiv_check ok: $BATCHES batches byte-identical to full recompiles"
